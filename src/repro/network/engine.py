"""Event-driven fluid fabric simulator on the simcore kernel.

:class:`FabricEngine` moves the flow-level fabric onto the single
deterministic clock the rest of the reproduction runs on
(:class:`repro.simcore.Simulator`).  Where :meth:`Fabric.complete`
is a batch loop — every flow starts at t=0 and nothing can change
mid-transfer — the engine maintains an *active-flow set* that evolves
over simulated time:

* flows carry a ``start_time_s`` and arrive on the clock;
* rate allocation re-runs only on events (flow arrival, flow
  completion, capacity change, path reassignment), never per tick;
* external processes on the same simulator — the ECMP controller's
  five-second polling rounds, fault injectors, tenant job loops — can
  retarget or throttle flows *while they are in flight*.

Rate allocation is **incremental max-min**: directed-hop lists are
cached per flow, link member sets are maintained across events, and
each event re-solves only the connected component of links touched by
the changed flow (tracked with a union-find over flows) instead of the
whole fabric.  Max-min allocations are separable by component, so the
restricted solve returns exactly the rates a global solve would.  The
union-find only ever merges; it is rebuilt from the live flow set when
the active population has halved, so long multi-tenant runs do not
degrade to one permanent super-component.  :class:`SolverStats` counts
the work (solver calls, link visits) so the saving vs the epoch-global
baseline is measurable — see ``benchmarks/test_bench_fabric_engine.py``.

The progressive-filling loop itself lives in
:mod:`repro.network.solver`, with two bit-identical backends.  Under
the ``python`` backend the engine behaves exactly as it historically
did: dict-shaped component solves, one deadline timeout per flow.
Under the ``vector`` backend the whole fluid core is array-shaped —
per-flow ``remaining``/``rate``/absolute-``deadline`` numpy arrays,
cached compiled per-component incidence matrices (patched in place as
flows finish), one engine-level deadline event at the minimum of the
deadline array — and every float is still produced by the same
element-wise operation sequence, so finish times remain ``==`` across
backends (the validation harness pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from ..simcore import Event, SimulationError, Simulator
from .fabric import DONE_BITS as _DONE_BITS
from .fabric import Fabric, FabricRun, LinkDir
from .flows import Flow, FlowPath
from .routing import RoutingError
from .solver import (
    CompiledIncidence,
    IncidenceIndex,
    SolverStats,
    compile_component,
    fill_rates_python,
    progressive_fill_vector,
    resolve_backend,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - vector backend then unselectable
    np = None

__all__ = ["FabricEngine", "SolverStats"]


@dataclass
class _FlowState:
    """Book-keeping for one in-flight flow.

    Under the vector backend the fluid quantities (``remaining_bits``,
    ``rate_gbps``) live in the engine's arrays and ``row`` is the
    flow's index into them; the fields here then only hold the
    arrival-time values.
    """

    flow: Flow
    remaining_bits: float
    rate_gbps: float = 0.0
    generation: int = 0
    done: Optional[Event] = None
    hops: List[LinkDir] = field(default_factory=list)
    row: int = -1


class _VecFluid:
    """Array-of-flows fluid state (vector backend).

    One row per submitted flow, assigned in arrival order so row order
    matches the python backend's dict iteration order everywhere it is
    observable (completion detection, finish-dict insertion).  Rows
    are retired in place and compacted away once dead rows dominate.
    """

    __slots__ = ("rem", "rate", "deadline", "alive", "synced", "fids",
                 "n", "n_alive")

    def __init__(self, capacity: int = 64):
        self.rem = np.zeros(capacity, dtype=np.float64)
        self.rate = np.zeros(capacity, dtype=np.float64)
        self.deadline = np.full(capacity, np.inf, dtype=np.float64)
        self.alive = np.zeros(capacity, dtype=bool)
        #: row's ``flow.rate_gbps`` attribute has been written at least
        #: once by :meth:`FabricEngine._apply_rates` (see there).
        self.synced = np.zeros(capacity, dtype=bool)
        self.fids: List[int] = []
        self.n = 0
        self.n_alive = 0

    def _grow(self) -> None:
        cap = self.rem.shape[0] * 2
        for name in ("rem", "rate", "deadline", "alive", "synced"):
            old = getattr(self, name)
            fill = np.inf if name == "deadline" else 0
            grown = np.full(cap, fill, dtype=old.dtype)
            grown[:old.shape[0]] = old
            setattr(self, name, grown)

    def add(self, fid: int, remaining_bits: float) -> int:
        if self.n == self.rem.shape[0]:
            self._grow()
        row = self.n
        self.n += 1
        self.rem[row] = remaining_bits
        self.rate[row] = 0.0
        self.deadline[row] = np.inf
        self.alive[row] = True
        self.synced[row] = False
        self.fids.append(fid)
        self.n_alive += 1
        return row

    def retire(self, row: int) -> None:
        self.alive[row] = False
        self.rate[row] = 0.0
        self.deadline[row] = np.inf
        self.n_alive -= 1


@dataclass
class _CompEntry:
    """One cached compiled component (vector backend).

    ``rows``/``flows`` are aligned with ``inc``'s row order: the
    flow's fluid-array row and its :class:`Flow` object, resolved once
    at compile time so per-solve scatter and attribute sync never go
    through dict lookups.
    """

    inc: CompiledIncidence
    l2g: Any
    rows: Any
    flows: List[Flow]


class FabricEngine:
    """Event-driven max-min fluid simulator over a :class:`Fabric`.

    The engine can share its :class:`~repro.simcore.Simulator` with any
    number of other processes (tenant job loops, controllers, fault
    injectors); all of them then observe one fabric on one clock.

    ``capacity_factors`` statically scales directed links (as in
    :meth:`Fabric.max_min_rates`); with ``pfc_spreading`` the PFC
    backpressure multipliers are instead re-derived from the *current*
    active-flow loads at every solve, so a tenant's storm throttles
    exactly the links it is storming while it is storming them.

    ``solver`` picks the max-min backend ("python", "vector", "auto");
    it defaults to the owning fabric's setting and is resolved once at
    construction, so one engine never mixes fluid representations
    mid-run.
    """

    def __init__(self, fabric: Fabric, sim: Optional[Simulator] = None,
                 capacity_factors: Optional[Dict[LinkDir, float]] = None,
                 pfc_spreading: bool = False,
                 congestion=None,
                 stats: Optional[SolverStats] = None,
                 solver: Optional[str] = None):
        self.fabric = fabric
        self.sim = sim or Simulator()
        self.stats = stats or SolverStats()
        self.pfc_spreading = pfc_spreading
        self.solver = resolve_backend(
            solver if solver is not None else fabric.solver)
        if self.solver == "vector":
            self._vec: Optional[_VecFluid] = _VecFluid()
            self._index = IncidenceIndex()
        else:
            self._vec = None
            self._index = None
        self._comp_cache: Dict[int, _CompEntry] = {}
        self._vec_gen = 0
        if pfc_spreading:
            from .congestion import CongestionModel
            self._congestion = congestion or CongestionModel()
        else:
            self._congestion = congestion

        self._clock = self.sim.now
        self._states: Dict[int, _FlowState] = {}
        self._paths: Dict[int, FlowPath] = {}
        self._flows_seen: Dict[int, Flow] = {}
        self._finish: Dict[int, float] = {}
        self._last_finish = 0.0
        self._members: Dict[LinkDir, Set[int]] = {}
        self._static_factors: Dict[LinkDir, float] = dict(
            capacity_factors or {})
        self._pfc_factors: Dict[LinkDir, float] = {}
        self._dirty: Set[LinkDir] = set()
        self._solve_pending = False
        self._topo_version = fabric.topology.version
        #: per-flow mid-flight reroute counts (failover bookkeeping) —
        #: the flap-dampening contract is "at most one reroute per flow
        #: per flap", which tests assert against this map.
        self.reroutes: Dict[int, int] = {}
        #: flows whose path died with no survivor, keyed by flow id.
        self.stranded: Dict[int, RoutingError] = {}
        self._stranded_handlers: List[
            Callable[[Flow, RoutingError], None]] = []
        # Union-find over flow ids; links point at one member flow so a
        # dirty link resolves to its component root in O(alpha).
        self._dsu: Dict[int, int] = {}
        self._link_owner: Dict[LinkDir, int] = {}
        self._dsu_peak = 0

    # -- public interface -------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def is_active(self, flow_id: int) -> bool:
        return flow_id in self._states

    def active_flows(self) -> List[Flow]:
        return [state.flow for state in self._states.values()]

    def rate_of(self, flow_id: int) -> float:
        state = self._states.get(flow_id)
        if state is None:
            return 0.0
        if self._vec is not None:
            return float(self._vec.rate[state.row])
        return state.rate_gbps

    def finish_time(self, flow_id: int) -> Optional[float]:
        return self._finish.get(flow_id)

    def path_of(self, flow_id: int) -> Optional[FlowPath]:
        return self._paths.get(flow_id)

    def submit(self, flow: Flow, path: Optional[FlowPath] = None,
               start_time_s: Optional[float] = None) -> Event:
        """Schedule *flow* on the fabric; returns its completion event.

        The flow arrives at ``max(sim.now, start_time_s)`` (defaulting
        to ``flow.start_time_s``); its path is resolved at arrival time
        unless one is given.  Flow ids may be resubmitted after their
        previous transfer completed (stable QPs re-used per iteration).
        """
        if flow.flow_id in self._states:
            raise SimulationError(
                f"flow {flow.flow_id} is already in flight")
        start = flow.start_time_s if start_time_s is None else start_time_s
        start = max(start, self.sim.now)
        done = self.sim.event(name=f"flow-{flow.flow_id}-done")
        state = _FlowState(flow=flow, remaining_bits=float(flow.size_bits),
                           done=done)
        timeout = self.sim.timeout(start - self.sim.now)
        timeout.add_callback(
            lambda _event, state=state, path=path:
            self._on_arrival(state, path))
        return done

    def submit_many(self, flows: Iterable[Flow],
                    paths: Optional[Dict[int, FlowPath]] = None,
                    start_time_s: Optional[float] = None) -> Event:
        """Submit several flows; returns an all-of completion event."""
        events = [
            self.submit(flow,
                        path=paths.get(flow.flow_id) if paths else None,
                        start_time_s=start_time_s)
            for flow in flows
        ]
        return self.sim.all_of(events)

    def reassign_path(self, flow: Flow,
                      path: Optional[FlowPath] = None) -> bool:
        """Retarget an in-flight flow onto its (re-hashed) current path.

        Returns True when the directed-hop list actually changed; the
        touched component is re-solved, so co-bottlenecked flows speed
        up or slow down mid-transfer.
        """
        state = self._states.get(flow.flow_id)
        if state is None:
            return False
        self._advance_to(self.sim.now)
        state = self._states.get(flow.flow_id)
        if state is None:
            return False
        new_path = path if path is not None \
            else self.fabric.router.path(flow)
        if not self._move_flow(state, new_path):
            return False
        self._request_solve()
        return True

    def _move_flow(self, state: _FlowState, new_path: FlowPath) -> bool:
        """Swap an in-flight flow onto *new_path*; True if hops changed."""
        fid = state.flow.flow_id
        new_hops = self.fabric.directed_hops(new_path)
        self._paths[fid] = new_path
        if new_hops == state.hops:
            return False
        if self._vec is not None:
            # The flow's component changes shape: invalidate its
            # compiled incidence both under its old root and (after
            # re-registration may have merged roots) its new one.
            self._comp_cache.pop(self._find(fid), None)
        for hop in state.hops:
            members = self._members.get(hop)
            if members is not None:
                members.discard(fid)
            self._dirty.add(hop)
        for hop in new_hops:
            self._register_hop(fid, hop)
            self._dirty.add(hop)
        self.stats.link_visits += len(new_hops)
        state.hops = new_hops
        if self._vec is not None:
            self._index.register_flow(fid, new_hops)
            self._comp_cache.pop(self._find(fid), None)
        return True

    def on_stranded(self, handler: Callable[[Flow, RoutingError], None]
                    ) -> None:
        """Register a handler for flows that lose every path.

        Without handlers a stranded flow raises its (Partition)
        RoutingError out of the simulation — the fail-fast default.
        With handlers the error is recorded in :attr:`stranded` and
        each handler is invoked; handlers typically :meth:`cancel` the
        flow and degrade the collective (ring repair) or fail the job.
        """
        self._stranded_handlers.append(handler)

    def cancel(self, flow_id: int, value=None) -> bool:
        """Abort an in-flight flow (QP torn down mid-transfer).

        The flow's completion event fires with *value* (default None,
        distinguishing cancellation from a finish-time float) so
        collective waves waiting on it unblock; no finish time is
        recorded.  Returns False if the flow was not in flight.
        """
        self._advance_to(self.sim.now)
        state = self._states.pop(flow_id, None)
        if state is None:
            return False
        state.generation += 1
        if self._vec is not None:
            self._retire_row(flow_id, state)
        for hop in state.hops:
            members = self._members.get(hop)
            if members is not None:
                members.discard(flow_id)
            self._dirty.add(hop)
        self.stranded.pop(flow_id, None)
        state.done.succeed(value)
        self._maybe_rebuild_dsu()
        self._request_solve()
        return True

    def retarget(self, flows: Iterable[Flow]) -> int:
        """Re-hash every flow's path; returns how many actually moved.

        Flows with no surviving path are skipped — stranding is the
        failover path's job, not the polling controller's.
        """
        moved = 0
        for flow in flows:
            try:
                moved += 1 if self.reassign_path(flow) else 0
            except RoutingError:
                continue
        return moved

    def set_capacity_factor(self, link_id: int, factor: float,
                            at: Optional[float] = None) -> None:
        """Scale a link's effective capacity (both directions) by
        *factor* — e.g. a degraded optic, or a dead link at 0.0 —
        either immediately or at simulated time *at*."""
        if factor < 0:
            raise ValueError(f"negative capacity factor: {factor}")

        def apply(_event=None):
            self._advance_to(self.sim.now)
            for forward in (True, False):
                hop = (link_id, forward)
                if factor == 1.0:
                    self._static_factors.pop(hop, None)
                else:
                    self._static_factors[hop] = factor
                if self._members.get(hop):
                    self._dirty.add(hop)
            self._request_solve()

        if at is None or at <= self.sim.now:
            apply()
        else:
            self.sim.timeout(at - self.sim.now).add_callback(apply)

    def notify_topology_changed(self) -> None:
        """Tell the engine the topology was mutated externally (failed
        link, degraded capacity, rewire).  The next solve — requested
        here — sees the version bump and re-reads every occupied link's
        capacity, so in-flight flows re-allocate immediately instead of
        at their next natural event."""
        self._advance_to(self.sim.now)
        self._request_solve()

    def run(self, until: Optional[float] = None) -> FabricRun:
        """Drive the simulator and return the completed transfers.

        Raises :class:`SimulationError` when the event queue drains
        while flows are still active — every such flow is starved
        (rate 0, e.g. a zeroed capacity factor on its path) and is
        named in the message.
        """
        self.sim.run(until)
        if until is None and self._states:
            starved = sorted(
                fid for fid in self._states
                if self.rate_of(fid) <= 0)
            detail = ""
            if self.stranded:
                detail = ("; stranded (no surviving path): "
                          f"{sorted(self.stranded)}")
            raise SimulationError(
                "fabric engine idle with unfinished flows; starved "
                f"flows (rate 0): {starved or sorted(self._states)}"
                + detail)
        flows = [self._flows_seen[fid] for fid in self._flows_seen
                 if self._flows_seen[fid].size_bits > 0]
        loads = self.fabric._loads_for(flows, self._paths) if flows else {}
        return FabricRun(
            total_time_s=self._last_finish,
            finish_times_s=dict(self._finish),
            paths=dict(self._paths),
            link_loads=loads,
        )

    # -- event handlers ----------------------------------------------------
    def _on_arrival(self, state: _FlowState,
                    path: Optional[FlowPath]) -> None:
        self.stats.events += 1
        self._advance_to(self.sim.now)
        flow = state.flow
        fid = flow.flow_id
        if fid in self._states:
            raise SimulationError(f"flow {fid} arrived twice")
        self._flows_seen[fid] = flow
        if state.remaining_bits <= _DONE_BITS:
            # Zero-size transfers finish the instant they start.
            self._paths.setdefault(
                fid, path or FlowPath(flow_id=fid,
                                      devices=[flow.src_host]))
            self._finish[fid] = self._clock
            self._last_finish = max(self._last_finish, self._clock)
            state.done.succeed(self._clock)
            return
        if path is None:
            path = self.fabric.router.path(flow)
        self._paths[fid] = path
        state.hops = self.fabric.directed_hops(path)
        self.stats.link_visits += len(state.hops)
        self._states[fid] = state
        self._dsu_peak = max(self._dsu_peak, len(self._states))
        for hop in state.hops:
            self._register_hop(fid, hop)
            self._dirty.add(hop)
        if self._vec is not None:
            state.row = self._vec.add(fid, state.remaining_bits)
            self._index.register_flow(fid, state.hops)
            # A resubmitted flow id inherits its old union-find root,
            # so its arrival can grow a component without triggering a
            # union — invalidate the compiled incidence explicitly.
            self._comp_cache.pop(self._find(fid), None)
        self._request_solve()

    def _on_deadline(self, fid: int, generation: int) -> None:
        state = self._states.get(fid)
        if state is None or state.generation != generation:
            return  # stale deadline from a superseded allocation
        self.stats.events += 1
        self._advance_to(self.sim.now)
        state = self._states.get(fid)
        if state is not None and state.rate_gbps > 0:
            delay = state.remaining_bits / (state.rate_gbps * 1e9)
            if self.sim.now + delay == self.sim.now:
                # The residue is below the clock's float resolution —
                # a timeout cannot advance time, so finish the flow now
                # (the untransferred remainder is sub-resolution bits).
                self._complete(fid)
            else:
                # Float residue kept the flow fractionally alive;
                # finish it on a fresh sub-resolution deadline.
                self._schedule_deadline(state)

    def _request_solve(self) -> None:
        if self._solve_pending:
            return
        self._solve_pending = True
        # A zero-delay timeout runs after every already-queued event at
        # this timestamp: simultaneous arrivals/completions coalesce
        # into a single rate solve, exactly like one batch epoch.
        self.sim.timeout(0.0).add_callback(self._on_solve)

    def _on_solve(self, _event: Event) -> None:
        self._solve_pending = False
        self._advance_to(self.sim.now)
        self._solve()

    # -- failover ----------------------------------------------------------
    def _failover(self) -> None:
        """Reroute every active flow whose path crosses a dead link.

        Runs inside the version-bump branch of :meth:`_solve`, so one
        topology mutation triggers at most one reroute per affected
        flow — a link that flaps back up leaves the rerouted flows
        where they are (their new paths are healthy), which is what
        keeps a flap from becoming a reroute storm.  Flows with no
        surviving path are stranded: their (Partition)RoutingError is
        raised unless an :meth:`on_stranded` handler is registered.
        """
        links = self.fabric.topology.links
        for fid in sorted(self._states):
            state = self._states.get(fid)
            if state is None:
                continue  # cancelled by a stranded handler mid-scan
            if all(links[hop[0]].healthy for hop in state.hops):
                continue
            try:
                new_path = self.fabric.router.path(state.flow)
            except RoutingError as exc:
                self._strand(state, exc)
                continue
            self.stranded.pop(fid, None)
            if self._move_flow(state, new_path):
                self.reroutes[fid] = self.reroutes.get(fid, 0) + 1

    def _strand(self, state: _FlowState, exc: RoutingError) -> None:
        fid = state.flow.flow_id
        self.stranded[fid] = exc
        if not self._stranded_handlers:
            raise exc
        for handler in list(self._stranded_handlers):
            handler(state.flow, exc)

    # -- fluid bookkeeping -------------------------------------------------
    def _advance_to(self, now: float) -> None:
        if self._vec is not None:
            self._advance_to_vector(now)
            return
        elapsed = now - self._clock
        if elapsed < 0:
            raise SimulationError(
                f"fabric engine clock moved backwards: {now} < "
                f"{self._clock}")
        if elapsed > 0:
            for state in self._states.values():
                if state.rate_gbps > 0:
                    state.remaining_bits -= \
                        state.rate_gbps * 1e9 * elapsed
            self._clock = now
        done = [fid for fid, state in self._states.items()
                if state.remaining_bits <= _DONE_BITS]
        for fid in done:
            self._complete(fid)

    def _advance_to_vector(self, now: float) -> None:
        elapsed = now - self._clock
        if elapsed < 0:
            raise SimulationError(
                f"fabric engine clock moved backwards: {now} < "
                f"{self._clock}")
        if elapsed <= 0:
            # Residues only move when time does, so zero-elapsed
            # advances can never surface a completion (the python loop
            # scans anyway and finds nothing).
            return
        vec = self._vec
        n = vec.n
        if n:
            # Same per-flow update as the reference: rate*1e9*elapsed,
            # left to right.  Rows at rate 0 subtract an exact 0.0,
            # which is a bitwise no-op, so no rate>0 mask is needed.
            vec.rem[:n] -= vec.rate[:n] * 1e9 * elapsed
        self._clock = now
        if vec.n_alive:
            done = vec.alive[:n] & (vec.rem[:n] <= _DONE_BITS)
            rows = np.flatnonzero(done)
            if rows.size:
                # Row order is arrival order — the same order the
                # python backend's dict scan completes them in.
                fids = [vec.fids[row] for row in rows.tolist()]
                for fid in fids:
                    self._complete(fid)

    def _complete(self, fid: int) -> None:
        state = self._states.pop(fid)
        state.generation += 1
        if self._vec is not None:
            self._retire_row(fid, state)
        for hop in state.hops:
            members = self._members.get(hop)
            if members is not None:
                members.discard(fid)
            self._dirty.add(hop)
        self._finish[fid] = self._clock
        self._last_finish = max(self._last_finish, self._clock)
        state.done.succeed(self._clock)
        self._maybe_rebuild_dsu()
        self._request_solve()

    def _retire_row(self, fid: int, state: _FlowState) -> None:
        """Patch the vector structures for a finished/cancelled flow."""
        vec = self._vec
        vec.retire(state.row)
        root = self._find(fid)
        entry = self._comp_cache.get(root)
        if entry is not None and entry.inc.retire(fid):
            if entry.inc.n_alive * 2 < entry.inc.n_rows:
                # Mostly-dead incidence: recompiling on next demand is
                # cheaper than dragging the dead columns through every
                # solve.
                self._comp_cache.pop(root, None)
        self._index.drop_flow(fid)
        if vec.n > 256 and vec.n - vec.n_alive > 2 * vec.n_alive:
            self._compact_rows()

    def _compact_rows(self) -> None:
        """Rebuild the fluid arrays with live rows only.

        Triggered when dead rows outnumber live ones 2:1; separate
        from the union-find rebuild because steady-state populations
        (arrivals balancing completions) never halve the active count
        but do accrete dead rows without bound.
        """
        vec = self._vec
        keep = np.flatnonzero(vec.alive[:vec.n])
        n = int(keep.size)
        fresh = _VecFluid(capacity=max(64, 2 * n))
        fresh.rem[:n] = vec.rem[keep]
        fresh.rate[:n] = vec.rate[keep]
        fresh.deadline[:n] = vec.deadline[keep]
        fresh.alive[:n] = True
        fresh.synced[:n] = vec.synced[keep]
        fresh.fids = [vec.fids[row] for row in keep.tolist()]
        fresh.n = n
        fresh.n_alive = n
        for row, fid in enumerate(fresh.fids):
            self._states[fid].row = row
        self._vec = fresh
        # Cached components index into the old row space.
        self._comp_cache.clear()

    def _schedule_deadline(self, state: _FlowState) -> None:
        state.generation += 1
        delay = state.remaining_bits / (state.rate_gbps * 1e9)
        self.sim.timeout(delay).add_callback(
            lambda _event, fid=state.flow.flow_id,
            generation=state.generation:
            self._on_deadline(fid, generation))

    # -- component tracking ------------------------------------------------
    def _register_hop(self, fid: int, hop: LinkDir) -> None:
        self._members.setdefault(hop, set()).add(fid)
        owner = self._link_owner.get(hop)
        if owner is None:
            self._link_owner[hop] = fid
        else:
            self._union(fid, owner)

    def _find(self, fid: int) -> int:
        dsu = self._dsu
        root = fid
        while dsu.get(root, root) != root:
            root = dsu[root]
        while fid != root:
            parent = dsu.get(fid, root)
            dsu[fid] = root
            fid = parent
        return root

    def _union(self, a: int, b: int) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._dsu[rb] = ra
            if self._comp_cache:
                # Every structural component merge funnels through
                # here, so popping both roots keeps the compiled
                # incidence cache consistent.
                self._comp_cache.pop(ra, None)
                self._comp_cache.pop(rb, None)

    def _maybe_rebuild_dsu(self) -> None:
        """Re-derive components from the live flow set once it has
        halved — union-find only merges, so without this a long run
        would converge on one permanent super-component."""
        if len(self._states) * 2 > self._dsu_peak:
            return
        self._dsu = {}
        self._link_owner = {}
        for hop, members in self._members.items():
            for fid in members:
                owner = self._link_owner.get(hop)
                if owner is None:
                    self._link_owner[hop] = fid
                else:
                    self._union(fid, owner)
        self._dsu_peak = len(self._states)
        # Roots were re-keyed wholesale; compiled components are keyed
        # by root, so none of them can be trusted any more.
        self._comp_cache.clear()

    # -- rate allocation ---------------------------------------------------
    def _refresh_pfc_factors(self) -> None:
        flows = [state.flow for state in self._states.values()]
        if flows:
            loads = self.fabric._loads_for(flows, self._paths)
            factors = self._congestion.pfc_capacity_factors(
                loads, self.fabric.topology)
        else:
            factors = {}
        for hop in set(factors) | set(self._pfc_factors):
            if factors.get(hop, 1.0) != self._pfc_factors.get(hop, 1.0) \
                    and self._members.get(hop):
                self._dirty.add(hop)
        self._pfc_factors = factors

    def _effective_capacity(self, hop: LinkDir) -> float:
        """Effective directed capacity: health × static × PFC factors.

        One helper for both backends — a dead link carries nothing, so
        flows still pinned to it (stranded, or mid-failover) starve
        rather than silently riding a failed optic.
        """
        link = self.fabric.topology.links[hop[0]]
        if not link.healthy:
            return 0.0
        return (link.capacity_gbps
                * self._static_factors.get(hop, 1.0)
                * self._pfc_factors.get(hop, 1.0))

    def _solve(self) -> None:
        stats = self.stats
        topo = self.fabric.topology
        if topo.version != self._topo_version:
            # Links were failed/rewired/rescaled under us: treat every
            # occupied link as touched (capacities must be re-read),
            # and reroute any flow whose path crosses a dead link.
            self._topo_version = topo.version
            for hop, members in self._members.items():
                if members:
                    self._dirty.add(hop)
            self._failover()
        if self.pfc_spreading:
            self._refresh_pfc_factors()
        if self._vec is not None:
            self._solve_vector()
            return
        roots: Set[int] = set()
        for hop in self._dirty:
            if self._members.get(hop):
                roots.add(self._find(self._link_owner[hop]))
        self._dirty.clear()
        if not roots:
            return
        stats.solves += 1
        stats.components_solved += len(roots)

        comp_flows = [fid for fid in self._states
                      if self._find(fid) in roots]
        remaining: Dict[LinkDir, float] = {}
        for hop, members in self._members.items():
            if not members or self._find(self._link_owner[hop]) not in roots:
                continue
            remaining[hop] = self._effective_capacity(hop)
            stats.link_visits += 1
        stats.flows_resolved += len(comp_flows)

        # Progressive filling restricted to the touched component(s);
        # max-min allocations are separable by connected component, so
        # this equals the global solve on these flows.
        states = self._states
        hops_of = {fid: states[fid].hops for fid in comp_flows}
        rates = fill_rates_python(
            remaining, self._members, hops_of,
            self.fabric.host_line_rate_gbps, stats)

        for fid, rate in rates.items():
            state = states[fid]
            state.flow.rate_gbps = rate
            if rate == state.rate_gbps:
                continue  # untouched: the scheduled deadline stands
            state.rate_gbps = rate
            if rate > 0:
                self._schedule_deadline(state)
            else:
                state.generation += 1  # starved: cancel any deadline

    # -- vector backend ----------------------------------------------------
    def _solve_vector(self) -> None:
        stats = self.stats
        index = self._index
        roots: Set[int] = set()
        for hop in self._dirty:
            # The python path re-reads link state per solve; the
            # vector path refreshes exactly the dirtied columns, so
            # the persistent capacity array is always current by the
            # time a component gathers from it.
            index.set_capacity(hop, self._effective_capacity(hop))
            if self._members.get(hop):
                roots.add(self._find(self._link_owner[hop]))
        self._dirty.clear()
        if not roots:
            self._arm_deadline()
            return
        stats.solves += 1
        stats.components_solved += len(roots)
        missing = [root for root in roots
                   if root not in self._comp_cache]
        if missing:
            self._compile_components(missing)
        line_rate = self.fabric.host_line_rate_gbps
        now = self.sim.now
        for root in sorted(roots):
            entry = self._comp_cache[root]
            remaining = index.gather_capacity(entry.l2g)
            stats.link_visits += int(remaining.shape[0])
            stats.flows_resolved += entry.inc.n_alive
            rates = progressive_fill_vector(
                entry.inc, remaining, line_rate, stats)
            self._apply_rates(entry, rates, now)
        self._arm_deadline()

    def _compile_components(self, roots: List[int]) -> None:
        """Compile the incidence problems for *roots* in one pass.

        A single O(active flows) grouping scan covers every missing
        root — compiles are rare (component topology changed), solves
        are not, so all per-flow python cost lives here.
        """
        groups: Dict[int, List[int]] = {root: [] for root in roots}
        for fid in self._states:
            root = self._find(fid)
            if root in groups:
                groups[root].append(fid)
        states = self._states
        for root, fids in groups.items():
            inc, l2g = compile_component(fids, self._index)
            rows = np.fromiter((states[fid].row for fid in fids),
                               dtype=np.int64, count=len(fids))
            flows = [states[fid].flow for fid in fids]
            self._comp_cache[root] = _CompEntry(
                inc=inc, l2g=l2g, rows=rows, flows=flows)
            # Memberships re-materialized into solver structures —
            # the same ruler the dict paths count with.
            self.stats.link_visits += inc.nnz

    def _apply_rates(self, entry: _CompEntry, rates, now: float) -> None:
        """Scatter one component's solved rates into the fluid arrays.

        Deadlines move only where the rate actually changed (the
        python path's ``rate == state.rate_gbps: continue``), and are
        computed with the same expression — ``now + rem/(rate*1e9)``
        — so they land on the same bits the per-flow timeouts would.
        """
        inc = entry.inc
        vec = self._vec
        alive_idx = np.flatnonzero(inc.alive)
        arows = entry.rows[alive_idx]
        new = rates[alive_idx]
        changed = new != vec.rate[arows]
        if changed.any():
            ch_rows = arows[changed]
            ch_new = new[changed]
            vec.rate[ch_rows] = ch_new
            vec.deadline[ch_rows] = np.inf  # starved: cancel deadline
            pos = ch_new > 0
            if pos.any():
                pos_rows = ch_rows[pos]
                vec.deadline[pos_rows] = now + \
                    vec.rem[pos_rows] / (ch_new[pos] * 1e9)
        # Attribute sync.  The python apply loop writes
        # ``flow.rate_gbps`` unconditionally on every covering solve;
        # an external reader (job sims, telemetry) can only tell that
        # apart from changed-only sync on a row whose attribute was
        # never written — a reused Flow object carrying a stale rate
        # from an earlier run.  Writing every row once on its first
        # covering solve (``synced``) and thereafter only on change
        # leaves the attribute equal to the python path's at every
        # observation point, without the O(component) python loop.
        need = changed | ~vec.synced[arows]
        if need.any():
            vec.synced[arows[need]] = True
            flows = entry.flows
            for i, value in zip(alive_idx[need].tolist(),
                                new[need].tolist()):
                flows[i].rate_gbps = value

    def _arm_deadline(self) -> None:
        """(Re-)aim the single engine-level deadline event.

        The vector backend keeps one absolute deadline per flow and
        schedules exactly one event at their minimum — the same fire
        time as the earliest of the python backend's per-flow timeouts
        (min(now_i + d_i) is the earliest scheduled time, and
        ``timeout_at`` lands on the stored bits without re-rounding).
        A generation counter staleness-checks old firings, mirroring
        the per-flow generation check.
        """
        self._vec_gen += 1
        vec = self._vec
        n = vec.n
        if n == 0:
            return
        dmin = vec.deadline[:n].min()
        if dmin == np.inf:
            return
        generation = self._vec_gen
        self.sim.timeout_at(float(dmin)).add_callback(
            lambda _event, generation=generation:
            self._on_vec_deadline(generation))

    def _on_vec_deadline(self, generation: int) -> None:
        if generation != self._vec_gen:
            return  # stale deadline from a superseded arming
        self.stats.events += 1
        now = self.sim.now
        self._advance_to(now)
        vec = self._vec
        n = vec.n
        if n:
            expired = vec.alive[:n] & (vec.deadline[:n] <= now)
            rows = np.flatnonzero(expired)
            if rows.size:
                # Float residue kept these flows fractionally alive
                # past their deadlines — the python backend's stall
                # branch, vectorized: re-aim from the surviving
                # residue, completing the flows whose residual delay
                # is below the clock resolution.
                target = now + \
                    vec.rem[rows] / (vec.rate[rows] * 1e9)
                done = target == now
                done_fids = [vec.fids[row]
                             for row in rows[done].tolist()]
                live_rows = rows[~done]
                vec.deadline[live_rows] = target[~done]
                for fid in done_fids:
                    self._complete(fid)
        self._arm_deadline()

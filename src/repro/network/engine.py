"""Event-driven fluid fabric simulator on the simcore kernel.

:class:`FabricEngine` moves the flow-level fabric onto the single
deterministic clock the rest of the reproduction runs on
(:class:`repro.simcore.Simulator`).  Where :meth:`Fabric.complete`
is a batch loop — every flow starts at t=0 and nothing can change
mid-transfer — the engine maintains an *active-flow set* that evolves
over simulated time:

* flows carry a ``start_time_s`` and arrive on the clock;
* rate allocation re-runs only on events (flow arrival, flow
  completion, capacity change, path reassignment), never per tick;
* external processes on the same simulator — the ECMP controller's
  five-second polling rounds, fault injectors, tenant job loops — can
  retarget or throttle flows *while they are in flight*.

Rate allocation is **incremental max-min**: directed-hop lists are
cached per flow, link member sets are maintained across events, and
each event re-solves only the connected component of links touched by
the changed flow (tracked with a union-find over flows) instead of the
whole fabric.  Max-min allocations are separable by component, so the
restricted solve returns exactly the rates a global solve would.  The
union-find only ever merges; it is rebuilt from the live flow set when
the active population has halved, so long multi-tenant runs do not
degrade to one permanent super-component.  :class:`SolverStats` counts
the work (solver calls, link visits) so the saving vs the epoch-global
baseline is measurable — see ``benchmarks/test_bench_fabric_engine.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from ..simcore import Event, SimulationError, Simulator
from .fabric import DONE_BITS as _DONE_BITS
from .fabric import Fabric, FabricRun, LinkDir
from .flows import Flow, FlowPath
from .routing import RoutingError

__all__ = ["FabricEngine", "SolverStats"]



@dataclass
class SolverStats:
    """Work counters for the (incremental) max-min rate solver.

    ``link_visits`` counts every per-link unit of solver work: a
    (flow, hop) membership registration, a capacity read, or one
    fair-share evaluation inside the progressive-filling loop.  The
    epoch-global batch loop and the incremental engine count with the
    same ruler, so their totals are directly comparable.
    """

    events: int = 0
    solves: int = 0
    link_visits: int = 0
    flows_resolved: int = 0
    components_solved: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "events": self.events,
            "solves": self.solves,
            "link_visits": self.link_visits,
            "flows_resolved": self.flows_resolved,
            "components_solved": self.components_solved,
        }


@dataclass
class _FlowState:
    """Book-keeping for one in-flight flow."""

    flow: Flow
    remaining_bits: float
    rate_gbps: float = 0.0
    generation: int = 0
    done: Optional[Event] = None
    hops: List[LinkDir] = field(default_factory=list)


class FabricEngine:
    """Event-driven max-min fluid simulator over a :class:`Fabric`.

    The engine can share its :class:`~repro.simcore.Simulator` with any
    number of other processes (tenant job loops, controllers, fault
    injectors); all of them then observe one fabric on one clock.

    ``capacity_factors`` statically scales directed links (as in
    :meth:`Fabric.max_min_rates`); with ``pfc_spreading`` the PFC
    backpressure multipliers are instead re-derived from the *current*
    active-flow loads at every solve, so a tenant's storm throttles
    exactly the links it is storming while it is storming them.
    """

    def __init__(self, fabric: Fabric, sim: Optional[Simulator] = None,
                 capacity_factors: Optional[Dict[LinkDir, float]] = None,
                 pfc_spreading: bool = False,
                 congestion=None,
                 stats: Optional[SolverStats] = None):
        self.fabric = fabric
        self.sim = sim or Simulator()
        self.stats = stats or SolverStats()
        self.pfc_spreading = pfc_spreading
        if pfc_spreading:
            from .congestion import CongestionModel
            self._congestion = congestion or CongestionModel()
        else:
            self._congestion = congestion

        self._clock = self.sim.now
        self._states: Dict[int, _FlowState] = {}
        self._paths: Dict[int, FlowPath] = {}
        self._flows_seen: Dict[int, Flow] = {}
        self._finish: Dict[int, float] = {}
        self._last_finish = 0.0
        self._members: Dict[LinkDir, Set[int]] = {}
        self._static_factors: Dict[LinkDir, float] = dict(
            capacity_factors or {})
        self._pfc_factors: Dict[LinkDir, float] = {}
        self._dirty: Set[LinkDir] = set()
        self._solve_pending = False
        self._topo_version = fabric.topology.version
        #: per-flow mid-flight reroute counts (failover bookkeeping) —
        #: the flap-dampening contract is "at most one reroute per flow
        #: per flap", which tests assert against this map.
        self.reroutes: Dict[int, int] = {}
        #: flows whose path died with no survivor, keyed by flow id.
        self.stranded: Dict[int, RoutingError] = {}
        self._stranded_handlers: List[
            Callable[[Flow, RoutingError], None]] = []
        # Union-find over flow ids; links point at one member flow so a
        # dirty link resolves to its component root in O(alpha).
        self._dsu: Dict[int, int] = {}
        self._link_owner: Dict[LinkDir, int] = {}
        self._dsu_peak = 0

    # -- public interface -------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def is_active(self, flow_id: int) -> bool:
        return flow_id in self._states

    def active_flows(self) -> List[Flow]:
        return [state.flow for state in self._states.values()]

    def rate_of(self, flow_id: int) -> float:
        state = self._states.get(flow_id)
        return state.rate_gbps if state is not None else 0.0

    def finish_time(self, flow_id: int) -> Optional[float]:
        return self._finish.get(flow_id)

    def path_of(self, flow_id: int) -> Optional[FlowPath]:
        return self._paths.get(flow_id)

    def submit(self, flow: Flow, path: Optional[FlowPath] = None,
               start_time_s: Optional[float] = None) -> Event:
        """Schedule *flow* on the fabric; returns its completion event.

        The flow arrives at ``max(sim.now, start_time_s)`` (defaulting
        to ``flow.start_time_s``); its path is resolved at arrival time
        unless one is given.  Flow ids may be resubmitted after their
        previous transfer completed (stable QPs re-used per iteration).
        """
        if flow.flow_id in self._states:
            raise SimulationError(
                f"flow {flow.flow_id} is already in flight")
        start = flow.start_time_s if start_time_s is None else start_time_s
        start = max(start, self.sim.now)
        done = self.sim.event(name=f"flow-{flow.flow_id}-done")
        state = _FlowState(flow=flow, remaining_bits=float(flow.size_bits),
                           done=done)
        timeout = self.sim.timeout(start - self.sim.now)
        timeout.add_callback(
            lambda _event, state=state, path=path:
            self._on_arrival(state, path))
        return done

    def submit_many(self, flows: Iterable[Flow],
                    paths: Optional[Dict[int, FlowPath]] = None,
                    start_time_s: Optional[float] = None) -> Event:
        """Submit several flows; returns an all-of completion event."""
        events = [
            self.submit(flow,
                        path=paths.get(flow.flow_id) if paths else None,
                        start_time_s=start_time_s)
            for flow in flows
        ]
        return self.sim.all_of(events)

    def reassign_path(self, flow: Flow,
                      path: Optional[FlowPath] = None) -> bool:
        """Retarget an in-flight flow onto its (re-hashed) current path.

        Returns True when the directed-hop list actually changed; the
        touched component is re-solved, so co-bottlenecked flows speed
        up or slow down mid-transfer.
        """
        state = self._states.get(flow.flow_id)
        if state is None:
            return False
        self._advance_to(self.sim.now)
        state = self._states.get(flow.flow_id)
        if state is None:
            return False
        new_path = path if path is not None \
            else self.fabric.router.path(flow)
        if not self._move_flow(state, new_path):
            return False
        self._request_solve()
        return True

    def _move_flow(self, state: _FlowState, new_path: FlowPath) -> bool:
        """Swap an in-flight flow onto *new_path*; True if hops changed."""
        fid = state.flow.flow_id
        new_hops = self.fabric.directed_hops(new_path)
        self._paths[fid] = new_path
        if new_hops == state.hops:
            return False
        for hop in state.hops:
            members = self._members.get(hop)
            if members is not None:
                members.discard(fid)
            self._dirty.add(hop)
        for hop in new_hops:
            self._register_hop(fid, hop)
            self._dirty.add(hop)
        self.stats.link_visits += len(new_hops)
        state.hops = new_hops
        return True

    def on_stranded(self, handler: Callable[[Flow, RoutingError], None]
                    ) -> None:
        """Register a handler for flows that lose every path.

        Without handlers a stranded flow raises its (Partition)
        RoutingError out of the simulation — the fail-fast default.
        With handlers the error is recorded in :attr:`stranded` and
        each handler is invoked; handlers typically :meth:`cancel` the
        flow and degrade the collective (ring repair) or fail the job.
        """
        self._stranded_handlers.append(handler)

    def cancel(self, flow_id: int, value=None) -> bool:
        """Abort an in-flight flow (QP torn down mid-transfer).

        The flow's completion event fires with *value* (default None,
        distinguishing cancellation from a finish-time float) so
        collective waves waiting on it unblock; no finish time is
        recorded.  Returns False if the flow was not in flight.
        """
        self._advance_to(self.sim.now)
        state = self._states.pop(flow_id, None)
        if state is None:
            return False
        state.generation += 1
        for hop in state.hops:
            members = self._members.get(hop)
            if members is not None:
                members.discard(flow_id)
            self._dirty.add(hop)
        self.stranded.pop(flow_id, None)
        state.done.succeed(value)
        self._maybe_rebuild_dsu()
        self._request_solve()
        return True

    def retarget(self, flows: Iterable[Flow]) -> int:
        """Re-hash every flow's path; returns how many actually moved.

        Flows with no surviving path are skipped — stranding is the
        failover path's job, not the polling controller's.
        """
        moved = 0
        for flow in flows:
            try:
                moved += 1 if self.reassign_path(flow) else 0
            except RoutingError:
                continue
        return moved

    def set_capacity_factor(self, link_id: int, factor: float,
                            at: Optional[float] = None) -> None:
        """Scale a link's effective capacity (both directions) by
        *factor* — e.g. a degraded optic, or a dead link at 0.0 —
        either immediately or at simulated time *at*."""
        if factor < 0:
            raise ValueError(f"negative capacity factor: {factor}")

        def apply(_event=None):
            self._advance_to(self.sim.now)
            for forward in (True, False):
                hop = (link_id, forward)
                if factor == 1.0:
                    self._static_factors.pop(hop, None)
                else:
                    self._static_factors[hop] = factor
                if self._members.get(hop):
                    self._dirty.add(hop)
            self._request_solve()

        if at is None or at <= self.sim.now:
            apply()
        else:
            self.sim.timeout(at - self.sim.now).add_callback(apply)

    def notify_topology_changed(self) -> None:
        """Tell the engine the topology was mutated externally (failed
        link, degraded capacity, rewire).  The next solve — requested
        here — sees the version bump and re-reads every occupied link's
        capacity, so in-flight flows re-allocate immediately instead of
        at their next natural event."""
        self._advance_to(self.sim.now)
        self._request_solve()

    def run(self, until: Optional[float] = None) -> FabricRun:
        """Drive the simulator and return the completed transfers.

        Raises :class:`SimulationError` when the event queue drains
        while flows are still active — every such flow is starved
        (rate 0, e.g. a zeroed capacity factor on its path) and is
        named in the message.
        """
        self.sim.run(until)
        if until is None and self._states:
            starved = sorted(
                fid for fid, state in self._states.items()
                if state.rate_gbps <= 0)
            detail = ""
            if self.stranded:
                detail = ("; stranded (no surviving path): "
                          f"{sorted(self.stranded)}")
            raise SimulationError(
                "fabric engine idle with unfinished flows; starved "
                f"flows (rate 0): {starved or sorted(self._states)}"
                + detail)
        flows = [self._flows_seen[fid] for fid in self._flows_seen
                 if self._flows_seen[fid].size_bits > 0]
        loads = self.fabric._loads_for(flows, self._paths) if flows else {}
        return FabricRun(
            total_time_s=self._last_finish,
            finish_times_s=dict(self._finish),
            paths=dict(self._paths),
            link_loads=loads,
        )

    # -- event handlers ----------------------------------------------------
    def _on_arrival(self, state: _FlowState,
                    path: Optional[FlowPath]) -> None:
        self.stats.events += 1
        self._advance_to(self.sim.now)
        flow = state.flow
        fid = flow.flow_id
        if fid in self._states:
            raise SimulationError(f"flow {fid} arrived twice")
        self._flows_seen[fid] = flow
        if state.remaining_bits <= _DONE_BITS:
            # Zero-size transfers finish the instant they start.
            self._paths.setdefault(
                fid, path or FlowPath(flow_id=fid,
                                      devices=[flow.src_host]))
            self._finish[fid] = self._clock
            self._last_finish = max(self._last_finish, self._clock)
            state.done.succeed(self._clock)
            return
        if path is None:
            path = self.fabric.router.path(flow)
        self._paths[fid] = path
        state.hops = self.fabric.directed_hops(path)
        self.stats.link_visits += len(state.hops)
        self._states[fid] = state
        self._dsu_peak = max(self._dsu_peak, len(self._states))
        for hop in state.hops:
            self._register_hop(fid, hop)
            self._dirty.add(hop)
        self._request_solve()

    def _on_deadline(self, fid: int, generation: int) -> None:
        state = self._states.get(fid)
        if state is None or state.generation != generation:
            return  # stale deadline from a superseded allocation
        self.stats.events += 1
        self._advance_to(self.sim.now)
        state = self._states.get(fid)
        if state is not None and state.rate_gbps > 0:
            delay = state.remaining_bits / (state.rate_gbps * 1e9)
            if self.sim.now + delay == self.sim.now:
                # The residue is below the clock's float resolution —
                # a timeout cannot advance time, so finish the flow now
                # (the untransferred remainder is sub-resolution bits).
                self._complete(fid)
            else:
                # Float residue kept the flow fractionally alive;
                # finish it on a fresh sub-resolution deadline.
                self._schedule_deadline(state)

    def _request_solve(self) -> None:
        if self._solve_pending:
            return
        self._solve_pending = True
        # A zero-delay timeout runs after every already-queued event at
        # this timestamp: simultaneous arrivals/completions coalesce
        # into a single rate solve, exactly like one batch epoch.
        self.sim.timeout(0.0).add_callback(self._on_solve)

    def _on_solve(self, _event: Event) -> None:
        self._solve_pending = False
        self._advance_to(self.sim.now)
        self._solve()

    # -- failover ----------------------------------------------------------
    def _failover(self) -> None:
        """Reroute every active flow whose path crosses a dead link.

        Runs inside the version-bump branch of :meth:`_solve`, so one
        topology mutation triggers at most one reroute per affected
        flow — a link that flaps back up leaves the rerouted flows
        where they are (their new paths are healthy), which is what
        keeps a flap from becoming a reroute storm.  Flows with no
        surviving path are stranded: their (Partition)RoutingError is
        raised unless an :meth:`on_stranded` handler is registered.
        """
        links = self.fabric.topology.links
        for fid in sorted(self._states):
            state = self._states.get(fid)
            if state is None:
                continue  # cancelled by a stranded handler mid-scan
            if all(links[hop[0]].healthy for hop in state.hops):
                continue
            try:
                new_path = self.fabric.router.path(state.flow)
            except RoutingError as exc:
                self._strand(state, exc)
                continue
            self.stranded.pop(fid, None)
            if self._move_flow(state, new_path):
                self.reroutes[fid] = self.reroutes.get(fid, 0) + 1

    def _strand(self, state: _FlowState, exc: RoutingError) -> None:
        fid = state.flow.flow_id
        self.stranded[fid] = exc
        if not self._stranded_handlers:
            raise exc
        for handler in list(self._stranded_handlers):
            handler(state.flow, exc)

    # -- fluid bookkeeping -------------------------------------------------
    def _advance_to(self, now: float) -> None:
        elapsed = now - self._clock
        if elapsed < 0:
            raise SimulationError(
                f"fabric engine clock moved backwards: {now} < "
                f"{self._clock}")
        if elapsed > 0:
            for state in self._states.values():
                if state.rate_gbps > 0:
                    state.remaining_bits -= \
                        state.rate_gbps * 1e9 * elapsed
            self._clock = now
        done = [fid for fid, state in self._states.items()
                if state.remaining_bits <= _DONE_BITS]
        for fid in done:
            self._complete(fid)

    def _complete(self, fid: int) -> None:
        state = self._states.pop(fid)
        state.generation += 1
        for hop in state.hops:
            members = self._members.get(hop)
            if members is not None:
                members.discard(fid)
            self._dirty.add(hop)
        self._finish[fid] = self._clock
        self._last_finish = max(self._last_finish, self._clock)
        state.done.succeed(self._clock)
        self._maybe_rebuild_dsu()
        self._request_solve()

    def _schedule_deadline(self, state: _FlowState) -> None:
        state.generation += 1
        delay = state.remaining_bits / (state.rate_gbps * 1e9)
        self.sim.timeout(delay).add_callback(
            lambda _event, fid=state.flow.flow_id,
            generation=state.generation:
            self._on_deadline(fid, generation))

    # -- component tracking ------------------------------------------------
    def _register_hop(self, fid: int, hop: LinkDir) -> None:
        self._members.setdefault(hop, set()).add(fid)
        owner = self._link_owner.get(hop)
        if owner is None:
            self._link_owner[hop] = fid
        else:
            self._union(fid, owner)

    def _find(self, fid: int) -> int:
        dsu = self._dsu
        root = fid
        while dsu.get(root, root) != root:
            root = dsu[root]
        while fid != root:
            parent = dsu.get(fid, root)
            dsu[fid] = root
            fid = parent
        return root

    def _union(self, a: int, b: int) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._dsu[rb] = ra

    def _maybe_rebuild_dsu(self) -> None:
        """Re-derive components from the live flow set once it has
        halved — union-find only merges, so without this a long run
        would converge on one permanent super-component."""
        if len(self._states) * 2 > self._dsu_peak:
            return
        self._dsu = {}
        self._link_owner = {}
        for hop, members in self._members.items():
            for fid in members:
                owner = self._link_owner.get(hop)
                if owner is None:
                    self._link_owner[hop] = fid
                else:
                    self._union(fid, owner)
        self._dsu_peak = len(self._states)

    # -- rate allocation ---------------------------------------------------
    def _refresh_pfc_factors(self) -> None:
        flows = [state.flow for state in self._states.values()]
        if flows:
            loads = self.fabric._loads_for(flows, self._paths)
            factors = self._congestion.pfc_capacity_factors(
                loads, self.fabric.topology)
        else:
            factors = {}
        for hop in set(factors) | set(self._pfc_factors):
            if factors.get(hop, 1.0) != self._pfc_factors.get(hop, 1.0) \
                    and self._members.get(hop):
                self._dirty.add(hop)
        self._pfc_factors = factors

    def _solve(self) -> None:
        stats = self.stats
        topo = self.fabric.topology
        if topo.version != self._topo_version:
            # Links were failed/rewired/rescaled under us: treat every
            # occupied link as touched (capacities must be re-read),
            # and reroute any flow whose path crosses a dead link.
            self._topo_version = topo.version
            for hop, members in self._members.items():
                if members:
                    self._dirty.add(hop)
            self._failover()
        if self.pfc_spreading:
            self._refresh_pfc_factors()
        roots: Set[int] = set()
        for hop in self._dirty:
            if self._members.get(hop):
                roots.add(self._find(self._link_owner[hop]))
        self._dirty.clear()
        if not roots:
            return
        stats.solves += 1
        stats.components_solved += len(roots)

        comp_flows = [fid for fid in self._states
                      if self._find(fid) in roots]
        comp_links: List[LinkDir] = []
        remaining: Dict[LinkDir, float] = {}
        for hop, members in self._members.items():
            if not members or self._find(self._link_owner[hop]) not in roots:
                continue
            link = topo.links[hop[0]]
            # A dead link carries nothing: flows still pinned to it
            # (stranded, or mid-failover) starve rather than silently
            # riding a failed optic.
            remaining[hop] = 0.0 if not link.healthy else (
                link.capacity_gbps
                * self._static_factors.get(hop, 1.0)
                * self._pfc_factors.get(hop, 1.0))
            comp_links.append(hop)
            stats.link_visits += 1
        stats.flows_resolved += len(comp_flows)

        # Progressive filling restricted to the touched component(s);
        # max-min allocations are separable by connected component, so
        # this equals the global solve on these flows.
        line_rate = self.fabric.host_line_rate_gbps
        members = self._members
        states = self._states
        rates: Dict[int, float] = {}
        unfrozen = set(comp_flows)
        # Same incremental-count filling as the batch solver: member
        # sets in the component are all-active at solve start, counts
        # decrement as flows freeze, drained links drop off the scan.
        active_count = {hop: len(members[hop]) for hop in comp_links}
        scan = comp_links
        while unfrozen:
            bottleneck_share = line_rate
            tied: List[LinkDir] = []
            live = []
            for hop in scan:
                count = active_count[hop]
                if not count:
                    continue
                live.append(hop)
                share = remaining[hop] / count
                if share < bottleneck_share:
                    bottleneck_share = share
                    tied = [hop]
                elif tied and share == bottleneck_share:
                    tied.append(hop)
            scan = live
            stats.link_visits += len(live)
            if not tied:
                for fid in unfrozen:
                    rates[fid] = line_rate
                    for hop in states[fid].hops:
                        remaining[hop] -= line_rate
                break
            # Water-filling tie groups, exactly as in the batch solver.
            frozen_now = set()
            for hop in tied:
                frozen_now |= members[hop]
            frozen_now &= unfrozen
            for fid in frozen_now:
                rates[fid] = bottleneck_share
                for hop in states[fid].hops:
                    remaining[hop] -= bottleneck_share
                    active_count[hop] -= 1
            unfrozen -= frozen_now

        for fid, rate in rates.items():
            state = states[fid]
            state.flow.rate_gbps = rate
            if rate == state.rate_gbps:
                continue  # untouched: the scheduled deadline stands
            state.rate_gbps = rate
            if rate > 0:
                self._schedule_deadline(state)
            else:
                state.generation += 1  # starved: cancel any deadline

"""DCQCN congestion-control dynamics at a shared bottleneck.

Astral's RoCE fabric runs DCQCN: switches ECN-mark packets as queues
build (the :class:`~repro.network.congestion.CongestionModel`
thresholds), receivers reflect marks as CNP packets, and senders react
by cutting rate and then recovering in fast-recovery / additive /
hyper-additive stages.  The monitoring system collects the resulting
CNP counters (Figure 8, physical layer), and the offline config checker
verifies DCQCN parameters are consistent across rented hosts (§5).

This module simulates the classic DCQCN sender state machine for a set
of flows sharing one bottleneck, in discrete time.  It serves two
roles: it generates realistic CNP/rate telemetry for the monitoring
substrate, and it validates the fluid max-min approximation the fabric
uses (DCQCN converges to an approximately fair share).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["DcqcnParams", "DcqcnFlowState", "BottleneckSim",
           "BottleneckResult"]


@dataclass(frozen=True)
class DcqcnParams:
    """Sender/switch parameters (the knobs `verify_configs` audits)."""

    line_rate_gbps: float = 200.0
    # -- switch marking (RED on queue depth) --
    kmin_bytes: float = 150e3
    kmax_bytes: float = 1.5e6
    pmax: float = 0.8
    # -- sender reaction --
    g: float = 1.0 / 16.0          # alpha EWMA gain
    rate_ai_gbps: float = 5.0      # additive increase step
    rate_hai_gbps: float = 25.0    # hyper increase step
    fast_recovery_rounds: int = 5
    min_rate_gbps: float = 0.1
    #: sender reaction timer (one state-machine update per interval).
    timer_s: float = 55e-6

    def mark_probability(self, queue_bytes: float) -> float:
        if queue_bytes <= self.kmin_bytes:
            return 0.0
        if queue_bytes >= self.kmax_bytes:
            return 1.0
        return self.pmax * (queue_bytes - self.kmin_bytes) \
            / (self.kmax_bytes - self.kmin_bytes)


@dataclass
class DcqcnFlowState:
    """Per-flow DCQCN sender state."""

    rate_gbps: float
    target_gbps: float
    alpha: float = 1.0
    recovery_round: int = 0
    increase_round: int = 0
    cnp_count: int = 0

    def on_cnp(self, params: DcqcnParams) -> None:
        """Rate cut on congestion notification."""
        self.cnp_count += 1
        self.target_gbps = self.rate_gbps
        self.rate_gbps = max(
            params.min_rate_gbps,
            self.rate_gbps * (1.0 - self.alpha / 2.0))
        self.alpha = (1.0 - params.g) * self.alpha + params.g
        self.recovery_round = 0
        self.increase_round = 0

    def on_timer(self, params: DcqcnParams) -> None:
        """Rate recovery when no CNP arrived this interval."""
        self.alpha = (1.0 - params.g) * self.alpha
        if self.recovery_round < params.fast_recovery_rounds:
            self.recovery_round += 1
        else:
            self.increase_round += 1
            if self.increase_round <= params.fast_recovery_rounds:
                self.target_gbps += params.rate_ai_gbps
            else:
                self.target_gbps += params.rate_hai_gbps
        self.target_gbps = min(self.target_gbps,
                               params.line_rate_gbps)
        self.rate_gbps = min(
            params.line_rate_gbps,
            (self.rate_gbps + self.target_gbps) / 2.0)


@dataclass
class BottleneckResult:
    """Outcome of a bottleneck simulation."""

    times_s: np.ndarray
    rates_gbps: np.ndarray          # (steps, flows)
    queue_bytes: np.ndarray
    cnp_counts: List[int]

    @property
    def final_rates(self) -> np.ndarray:
        return self.rates_gbps[-1]

    def fairness_index(self) -> float:
        """Jain's fairness index of the final rates."""
        rates = self.final_rates
        if not len(rates):
            return 1.0
        return float((np.sum(rates) ** 2)
                     / (len(rates) * np.sum(rates ** 2)))

    def mean_utilization(self, capacity_gbps: float,
                         tail_frac: float = 0.5) -> float:
        start = int(len(self.times_s) * (1.0 - tail_frac))
        offered = np.sum(self.rates_gbps[start:], axis=1)
        return float(np.mean(np.minimum(offered, capacity_gbps))
                     / capacity_gbps)


class BottleneckSim:
    """N DCQCN flows through one switch queue of fixed capacity."""

    def __init__(self, n_flows: int, capacity_gbps: float,
                 params: DcqcnParams | None = None, seed: int = 0):
        if n_flows < 1:
            raise ValueError("need at least one flow")
        if capacity_gbps <= 0:
            raise ValueError("capacity must be positive")
        self.params = params or DcqcnParams()
        self.capacity_gbps = capacity_gbps
        self.flows = [
            DcqcnFlowState(rate_gbps=self.params.line_rate_gbps,
                           target_gbps=self.params.line_rate_gbps)
            for _ in range(n_flows)
        ]
        self._rng = np.random.default_rng(seed)

    def run(self, duration_s: float = 0.05) -> BottleneckResult:
        params = self.params
        dt = params.timer_s
        steps = max(2, int(duration_s / dt))
        times = np.arange(steps) * dt
        rates = np.zeros((steps, len(self.flows)))
        queue_series = np.zeros(steps)
        queue = 0.0

        for step in range(steps):
            offered = sum(flow.rate_gbps for flow in self.flows)
            # Queue integrates offered minus drained bytes.
            queue += (offered - self.capacity_gbps) * 1e9 / 8 * dt
            queue = max(0.0, queue)
            mark_p = params.mark_probability(queue)
            for index, flow in enumerate(self.flows):
                # A CNP is generated if any of the flow's packets this
                # interval was marked: P = 1 - (1 - p)^n_packets.
                packets = max(1.0, flow.rate_gbps * 1e9 / 8 * dt
                              / 4096.0)
                cnp_p = 1.0 - (1.0 - mark_p) ** packets \
                    if mark_p > 0 else 0.0
                if cnp_p > 0 and self._rng.random() < cnp_p:
                    flow.on_cnp(params)
                else:
                    flow.on_timer(params)
                rates[step, index] = flow.rate_gbps
            queue_series[step] = queue

        return BottleneckResult(
            times_s=times,
            rates_gbps=rates,
            queue_bytes=queue_series,
            cnp_counts=[flow.cnp_count for flow in self.flows],
        )

"""Flow abstractions shared by the fabric simulator and monitoring.

A :class:`Flow` is one RDMA stream between two GPUs: it carries a QP
number and a five-tuple.  The five-tuple is what the Astral monitoring
system uses to join application-layer QP metadata with network-layer
path telemetry (§3.2), so it is preserved verbatim here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from .ecmp import FiveTuple

__all__ = ["Flow", "FlowPath", "make_flow", "reset_flow_ids"]

_flow_counter = itertools.count()


def reset_flow_ids() -> None:
    """Reset the global flow id counter (for reproducible tests)."""
    global _flow_counter
    _flow_counter = itertools.count()


@dataclass
class Flow:
    """One RDMA flow between a source and destination GPU.

    ``size_bits`` is the message size (demand); the fabric fills in
    ``rate_gbps`` after allocation.  ``job`` and ``collective`` tag the
    flow for monitoring and for the controller's reassignment rounds.
    """

    flow_id: int
    src_host: str
    dst_host: str
    rail: int
    five_tuple: FiveTuple
    size_bits: float
    qp: int = 0
    job: str = ""
    collective: str = ""
    rate_gbps: float = 0.0
    #: when the transfer starts on the shared simulation clock; the
    #: batch :meth:`Fabric.complete` path leaves this at 0.0 so every
    #: flow starts together, while the event-driven
    #: :class:`~repro.network.engine.FabricEngine` honours it.
    start_time_s: float = 0.0

    @property
    def src_ip(self) -> str:
        return self.five_tuple.src_ip

    @property
    def dst_ip(self) -> str:
        return self.five_tuple.dst_ip

    def completion_time_s(self) -> float:
        """Seconds to transfer at the allocated rate (inf if unallocated)."""
        if self.rate_gbps <= 0:
            return float("inf")
        return self.size_bits / (self.rate_gbps * 1e9)


@dataclass
class FlowPath:
    """The resolved hop-by-hop route of a flow.

    ``link_ids`` are traversal order from source host to destination
    host; ``devices`` is the device sequence (len(link_ids) + 1).  The
    network-layer collectors (sFlow reconstruction, INT pingmesh)
    consume exactly this structure.
    """

    flow_id: int
    devices: List[str] = field(default_factory=list)
    link_ids: List[int] = field(default_factory=list)

    @property
    def hops(self) -> int:
        return len(self.link_ids)

    @property
    def switch_hops(self) -> int:
        """Number of intermediate switches on the path."""
        return max(0, len(self.devices) - 2)


def make_flow(src_host: str, dst_host: str, rail: int, size_bits: float,
              src_port: Optional[int] = None, qp: Optional[int] = None,
              job: str = "", collective: str = "",
              dst_rail: Optional[int] = None) -> Flow:
    """Create a flow with monitoring-compatible identifiers.

    The source "IP" encodes host + rail (one NIC per rail), matching how
    the monitoring join keys work; the default source port is derived
    deterministically from the flow id so repeated runs are stable.
    ``dst_rail`` defaults to the source rail (same-rail traffic dominates
    under PXN); cross-rail flows through the Core tier may differ.
    """
    flow_id = next(_flow_counter)
    port = src_port if src_port is not None else 49152 + (flow_id % 16384)
    five_tuple = FiveTuple(
        src_ip=f"{src_host}.nic{rail}",
        dst_ip=f"{dst_host}.nic{rail if dst_rail is None else dst_rail}",
        src_port=port,
    )
    return Flow(
        flow_id=flow_id,
        src_host=src_host,
        dst_host=dst_host,
        rail=rail,
        five_tuple=five_tuple,
        size_bits=size_bits,
        qp=qp if qp is not None else 1000 + flow_id,
        job=job,
        collective=collective,
    )

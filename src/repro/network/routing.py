"""Per-hop ECMP routing over a topology graph.

Routing is destination-based up-down shortest path, as in production
datacenter fabrics: every device holds a set of equal-cost next hops
toward each destination, and the switch hashes the flow's five-tuple to
pick one.  All switches share one hash function (operational reality in
Astral's fleet), which is what makes *hash polarization* emerge on
multi-hop paths — the phenomenon principles P1/P2 are designed to limit
and the optimized ECMP controller corrects.

Implementation notes:

* Next-hop sets come from a BFS from the destination over healthy links.
  Hosts never transit traffic, so BFS does not expand through them.
* Rail binding: on rail-aware fabrics the first hop must use the flow's
  source rail and the last hop the destination rail.  The BFS is seeded
  only through destination links whose ToR matches the destination rail,
  and the source host filters its candidate links by source rail.
* Results are memoized per (destination, rail) and invalidated whenever
  the topology's version counter changes (link failures, rewiring).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..topology.elements import Device, DeviceKind, Link, Topology
from .ecmp import EcmpHasher
from .flows import Flow, FlowPath

__all__ = ["EcmpRouter", "RoutingError", "PartitionError"]


class RoutingError(RuntimeError):
    """Raised when no route exists for a flow."""


class PartitionError(RoutingError):
    """No surviving path: the source is cut off from the destination.

    Unlike a plain :class:`RoutingError` (which can also mean a
    rail-binding dead end on an otherwise connected fabric), a
    partition is structural — every path is severed by failed links.
    ``cut`` names the failed link ids on the frontier of the source's
    connected component, i.e. the cut set whose repair would reconnect
    the flow.
    """

    def __init__(self, src: str, dst: str, rail: Optional[int],
                 cut: Tuple[int, ...], flow_id: Optional[int] = None):
        self.src = src
        self.dst = dst
        self.rail = rail
        self.cut = tuple(sorted(cut))
        self.flow_id = flow_id
        super().__init__(
            f"{dst} partitioned from {src}"
            + (f" on rail {rail}" if rail is not None else "")
            + (f" (flow {flow_id})" if flow_id is not None else "")
            + f"; cut links: {list(self.cut)}")


def _rail_of(device: Device) -> Optional[int]:
    return device.rail


class EcmpRouter:
    """Destination-based ECMP router with per-hop hashing."""

    def __init__(self, topology: Topology,
                 hasher: Optional[EcmpHasher] = None):
        self.topology = topology
        self.hasher = hasher or EcmpHasher()
        self._dist_cache: Dict[Tuple[str, Optional[int]],
                               Dict[str, int]] = {}
        self._cache_version = topology.version

    # -- distance maps -----------------------------------------------------
    def _invalidate_if_stale(self) -> None:
        if self._cache_version != self.topology.version:
            self._dist_cache.clear()
            self._cache_version = self.topology.version

    def distances_to(self, dst_host: str, dst_rail: Optional[int]
                     ) -> Dict[str, int]:
        """Hop counts from every device to *dst_host* via *dst_rail*."""
        self._invalidate_if_stale()
        key = (dst_host, dst_rail)
        cached = self._dist_cache.get(key)
        if cached is not None:
            return cached

        topo = self.topology
        dist: Dict[str, int] = {dst_host: 0}
        frontier: deque[str] = deque()
        # Seed only through the destination's rail-matching ToR links.
        for link, neighbor in topo.neighbors(dst_host):
            neighbor_rail = _rail_of(neighbor)
            if (dst_rail is not None and neighbor_rail is not None
                    and neighbor_rail != dst_rail):
                continue
            if neighbor.name not in dist:
                dist[neighbor.name] = 1
                frontier.append(neighbor.name)
        while frontier:
            current = frontier.popleft()
            device = topo.devices[current]
            if device.kind is DeviceKind.HOST:
                continue  # hosts never transit traffic
            next_hops = dist[current] + 1
            for link, neighbor in topo.neighbors(current):
                if neighbor.name not in dist:
                    dist[neighbor.name] = next_hops
                    frontier.append(neighbor.name)
        self._dist_cache[key] = dist
        return dist

    # -- next hops and path walks -------------------------------------------
    def next_hop_links(self, device: str, flow: Flow) -> List[Link]:
        """Equal-cost candidate links from *device* toward the flow's dst.

        At the source host the candidate set is restricted to the flow's
        source rail and the equal-cost criterion is "minimal distance
        among rail-matching neighbours" — the cached distance map is
        rail-agnostic at the source, so a plain ``dist - 1`` descent
        would wrongly assume the host may inject on any rail.
        """
        topo = self.topology
        dst_rail = self._dst_rail(flow)
        dist = self.distances_to(flow.dst_host, dst_rail)

        if device == flow.src_host:
            rail_neighbors = []
            for link, neighbor in topo.neighbors(device):
                neighbor_rail = _rail_of(neighbor)
                if neighbor_rail is not None and neighbor_rail != flow.rail:
                    continue
                neighbor_dist = dist.get(neighbor.name)
                if neighbor_dist is not None:
                    rail_neighbors.append((neighbor_dist, link))
            if not rail_neighbors:
                return []
            best = min(d for d, _ in rail_neighbors)
            candidates = [link for d, link in rail_neighbors if d == best]
            candidates.sort(key=lambda link: link.link_id)
            return candidates

        here = dist.get(device)
        if here is None:
            return []
        candidates = []
        for link, neighbor in topo.neighbors(device):
            if dist.get(neighbor.name, float("inf")) == here - 1:
                candidates.append(link)
        candidates.sort(key=lambda link: link.link_id)
        return candidates

    def partition_cut(self, src: str, dst: str,
                      src_rail: Optional[int] = None
                      ) -> Optional[Tuple[int, ...]]:
        """The failed-link cut isolating *src* from *dst*, if any.

        Floods from *src* over healthy links (hosts do not transit; the
        first hop honours *src_rail* when given, mirroring the router's
        rail binding).  Returns None when *dst* is still reachable, else
        the sorted ids of unhealthy links on the reachable component's
        frontier — the cut whose repair would reconnect the pair.
        """
        topo = self.topology
        reached: Set[str] = {src}
        frontier: deque[str] = deque()
        for link, neighbor in topo.neighbors(src):
            neighbor_rail = _rail_of(neighbor)
            if (src_rail is not None and neighbor_rail is not None
                    and neighbor_rail != src_rail):
                continue
            if neighbor.name not in reached:
                reached.add(neighbor.name)
                frontier.append(neighbor.name)
        while frontier:
            current = frontier.popleft()
            if current == dst:
                return None
            if topo.devices[current].kind is DeviceKind.HOST:
                continue
            for link, neighbor in topo.neighbors(current):
                if neighbor.name not in reached:
                    reached.add(neighbor.name)
                    frontier.append(neighbor.name)
        if dst in reached:
            return None
        cut = {
            link.link_id
            for device in reached
            for link in topo.links_of(device)
            if not link.healthy
        }
        return tuple(sorted(cut))

    def _no_route(self, device: str, flow: Flow) -> RoutingError:
        """Classify a routing dead end: partition vs rail dead end."""
        cut = self.partition_cut(flow.src_host, flow.dst_host,
                                 src_rail=flow.rail)
        if cut is not None:
            return PartitionError(flow.src_host, flow.dst_host,
                                  flow.rail, cut, flow_id=flow.flow_id)
        return RoutingError(
            f"no route from {device} to {flow.dst_host} "
            f"(flow {flow.flow_id}, rail {flow.rail})")

    def path(self, flow: Flow, max_hops: int = 16) -> FlowPath:
        """Walk the flow hop by hop, hashing at each device.

        Raises :class:`PartitionError` when the destination is cut off
        entirely, :class:`RoutingError` for any other dead end.
        """
        device = flow.src_host
        route = FlowPath(flow_id=flow.flow_id, devices=[device])
        for _ in range(max_hops):
            if device == flow.dst_host:
                return route
            candidates = self.next_hop_links(device, flow)
            if not candidates:
                raise self._no_route(device, flow)
            index = self.hasher.select(flow.five_tuple, len(candidates),
                                       salt=device)
            link = candidates[index]
            device = link.other(device)
            route.devices.append(device)
            route.link_ids.append(link.link_id)
        raise RoutingError(
            f"path exceeded {max_hops} hops for flow {flow.flow_id}")

    def reachable(self, flow: Flow) -> bool:
        if flow.src_host == flow.dst_host:
            return True
        return bool(self.next_hop_links(flow.src_host, flow))

    def min_hops(self, flow: Flow) -> int:
        """Shortest hop count for the flow (link count, not switches)."""
        if flow.src_host == flow.dst_host:
            return 0
        dist = self.distances_to(flow.dst_host, self._dst_rail(flow))
        candidates = self.next_hop_links(flow.src_host, flow)
        if not candidates:
            raise RoutingError(
                f"{flow.dst_host} unreachable from {flow.src_host} "
                f"on rail {flow.rail}")
        first = candidates[0]
        return dist[first.other(flow.src_host)] + 1

    @staticmethod
    def _dst_rail(flow: Flow) -> Optional[int]:
        # The destination NIC rail is encoded in the five-tuple dst ip
        # ("<host>.nic<rail>"), written by flows.make_flow.
        dst_ip = flow.five_tuple.dst_ip
        marker = ".nic"
        if marker in dst_ip:
            try:
                return int(dst_ip.rsplit(marker, 1)[1])
            except ValueError:
                return None
        return None

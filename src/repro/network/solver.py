"""Max-min fair-share solver core: one kernel, two backends.

This module owns the progressive-filling loop that used to exist twice
— nearly copy-pasted — in :meth:`Fabric.max_min_rates` and
:meth:`FabricEngine._solve`.  Both call sites are now thin adapters
over the two interchangeable backends defined here:

* ``python`` — the reference implementation, a dict-shaped loop that is
  byte-for-byte the historical algorithm;
* ``vector`` — a numpy kernel over a flow×link CSR-style incidence
  representation (row = flow, column = directed link), with vectorized
  share computation, batched bottleneck-group freezing via boolean
  masks, and scatter-subtract of frozen rates.

**Bit-identity contract.**  The two backends return *identical floats*,
not merely close ones, because the solve is scan-order independent and
the vector kernel performs exactly the element-wise operations of the
reference:

* the bottleneck share is a pure ``min`` over per-link divisions
  ``remaining / count`` — comparison only, no rounding, so any scan
  order finds the same value;
* the tied bottleneck group is *every* live link whose share equals
  that minimum (and the minimum is strictly below the line rate), so
  tie detection is order-preserving equality, never an accumulated
  reduction;
* frozen flows subtract the same share once per (flow, hop)
  membership; the kernel uses ``np.subtract.at`` — the unbuffered
  scatter that applies per duplicate index — which reproduces the
  reference's repeated per-flow subtractions bit-for-bit.  A
  reassociated update (``remaining -= k * share``) would not.

The validation harness pins this contract on every fuzz profile
(``repro.validation.differential.check_solver_backends``), on top of
the engine-vs-batch and flat-vs-folded ``==`` differentials that both
backends must keep exact.

**Work accounting.**  :class:`SolverStats.link_visits` counts with one
ruler across paths and backends:

* +1 per (flow, hop) membership materialized into solver structures —
  the batch path rebuilds them every solve, the engine registers them
  once per flow arrival/reroute (and re-materializes per component
  compile under the vector backend);
* +1 per link capacity loaded into a solve's ``remaining`` vector;
* +1 per live link per progressive-filling iteration.

The per-hop subtractions of the freeze step are deliberately uncounted
on both paths (they are proportional to the memberships already
counted at materialization).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = [
    "BACKENDS",
    "HAVE_NUMPY",
    "CompiledIncidence",
    "IncidenceIndex",
    "SolverStats",
    "available_backends",
    "compile_component",
    "default_backend",
    "fill_rates_python",
    "progressive_fill_vector",
    "resolve_backend",
    "set_default_backend",
    "solve_incidence_vector",
    "use_backend",
]

HAVE_NUMPY = _np is not None

#: The selectable backends.  "auto" is accepted wherever a backend name
#: is, and resolves to vector-when-numpy-is-available.
BACKENDS = ("python", "vector")

#: Environment override for the process-wide default backend.
ENV_VAR = "REPRO_SOLVER"

#: A directed link traversal; opaque to the solver (any hashable).
Hop = Hashable


@dataclass
class SolverStats:
    """Work counters for the max-min rate solver.

    ``link_visits`` counts every per-link unit of solver work — a
    (flow, hop) membership materialization, a capacity load, or one
    fair-share evaluation inside the progressive-filling loop.  The
    epoch-global batch path and the incremental engine count with the
    same ruler (see the module docstring), so their totals are
    directly comparable.
    """

    events: int = 0
    solves: int = 0
    link_visits: int = 0
    flows_resolved: int = 0
    components_solved: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "events": self.events,
            "solves": self.solves,
            "link_visits": self.link_visits,
            "flows_resolved": self.flows_resolved,
            "components_solved": self.components_solved,
        }


# --------------------------------------------------------------------------
# Backend selection
# --------------------------------------------------------------------------

_default_override: Optional[str] = None


class SolverUnavailable(RuntimeError):
    """Requested a backend whose dependencies are missing."""


def available_backends() -> Tuple[str, ...]:
    return BACKENDS if HAVE_NUMPY else ("python",)


def _validate(name: str) -> str:
    if name == "auto":
        return "vector" if HAVE_NUMPY else "python"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown solver backend {name!r}; expected one of "
            f"{('auto',) + BACKENDS}")
    if name == "vector" and not HAVE_NUMPY:
        raise SolverUnavailable(
            "solver backend 'vector' requires numpy, which is not "
            "importable in this environment")
    return name


def default_backend() -> str:
    """The process-wide default backend.

    Priority: :func:`set_default_backend` override, then the
    ``REPRO_SOLVER`` environment variable, then ``vector`` when numpy
    is importable (the hot path should be fast by default), else
    ``python``.
    """
    if _default_override is not None:
        return _default_override
    env = os.environ.get(ENV_VAR)
    if env:
        return _validate(env)
    return "vector" if HAVE_NUMPY else "python"


def set_default_backend(name: Optional[str]) -> None:
    """Set (or, with ``None``, reset) the process-wide default."""
    global _default_override
    _default_override = _validate(name) if name is not None else None


def resolve_backend(name: Optional[str]) -> str:
    """Resolve an explicit/``"auto"``/``None`` request to a backend."""
    if name is None:
        return default_backend()
    return _validate(name)


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[None]:
    """Scoped default backend (no-op when *name* is ``None``).

    This is how the CLI / farm runners thread ``--solver`` down to
    every :class:`~repro.network.fabric.Fabric` a scenario constructs
    without widening each constructor call.
    """
    if name is None:
        yield
        return
    global _default_override
    previous = _default_override
    _default_override = _validate(name)
    try:
        yield
    finally:
        _default_override = previous


# --------------------------------------------------------------------------
# Python reference backend
# --------------------------------------------------------------------------

def fill_rates_python(remaining: Dict[Hop, float],
                      members: Mapping[Hop, Any],
                      hops_of: Mapping[int, Sequence[Hop]],
                      line_rate: float,
                      stats: Optional[SolverStats] = None
                      ) -> Dict[int, float]:
    """Progressive filling over dict-shaped state (the reference).

    ``remaining`` maps each directed link to its unconsumed capacity
    and defines the scan order (insertion order); it is consumed in
    place.  ``members`` maps each of those links to the set of flow
    ids crossing it; ``hops_of`` maps every flow being solved to its
    hop list.  The source line-rate cap is modelled as a virtual
    per-flow link.  Returns the max-min rate per flow id.

    Repeatedly: find the tightest link (smallest fair share among its
    unfrozen flows), freeze every flow crossing a link tied at that
    share, remove the consumed capacity, continue.  Active (unfrozen)
    member counts are maintained incrementally and fully-frozen links
    are pruned from the scan list, so each iteration costs
    O(live links) instead of O(total memberships).
    """
    rates: Dict[int, float] = {}
    unfrozen = set(hops_of)
    active_count = {hop: len(members[hop]) for hop in remaining}
    scan: List[Hop] = list(remaining)
    while unfrozen:
        bottleneck_share = line_rate
        tied: List[Hop] = []
        live = []
        for hop in scan:
            count = active_count[hop]
            if not count:
                continue
            live.append(hop)
            share = remaining[hop] / count
            if share < bottleneck_share:
                bottleneck_share = share
                tied = [hop]
            elif tied and share == bottleneck_share:
                tied.append(hop)
        scan = live
        if stats is not None:
            stats.link_visits += len(live)
        if not tied:
            # Every remaining flow is line-rate limited.
            for fid in unfrozen:
                rates[fid] = line_rate
                for hop in hops_of[fid]:
                    remaining[hop] -= line_rate
            break
        # Water-filling: every link tied at the bottleneck share
        # saturates together (freezing one tied link leaves the
        # others' shares unchanged), so symmetric workloads freeze
        # whole tie groups per iteration instead of one link each.
        frozen_now = set()
        for hop in tied:
            frozen_now |= members[hop]
        frozen_now &= unfrozen
        for fid in frozen_now:
            rates[fid] = bottleneck_share
            for hop in hops_of[fid]:
                remaining[hop] -= bottleneck_share
                active_count[hop] -= 1
        unfrozen -= frozen_now
    return rates


# --------------------------------------------------------------------------
# Vector backend: incidence representation
# --------------------------------------------------------------------------

def _concat_ranges(starts, lens):
    """Concatenate ``arange(starts[i], starts[i]+lens[i])`` ranges."""
    total = int(lens.sum())
    if total == 0:
        return _np.empty(0, dtype=_np.int64)
    offsets = _np.cumsum(lens) - lens
    return _np.repeat(starts - offsets, lens) + _np.arange(total)


class CompiledIncidence:
    """A flow×link incidence matrix in CSR form, both directions.

    Rows are flows (in the order of ``fids``), columns are directed
    links local to this problem.  ``indptr``/``mem_cols`` is the
    row-major CSR; a column-major view (``link -> member rows``) is
    derived once at construction so tie-group freezing can expand
    bottleneck links to their member flows without scanning.

    The engine retires rows in place as flows complete
    (:meth:`retire` flips ``alive`` and patches ``base_count``), so a
    compiled component survives arbitrarily many completion events
    without recompiling.
    """

    __slots__ = ("fids", "indptr", "mem_cols", "n_links", "row_lens",
                 "l_indptr", "l_lens", "l_rows", "base_count", "alive",
                 "n_alive", "row_of")

    def __init__(self, fids: Sequence[int], indptr, mem_cols,
                 n_links: int):
        np_ = _np
        self.fids = list(fids)
        self.indptr = np_.asarray(indptr, dtype=np_.int64)
        self.mem_cols = np_.asarray(mem_cols, dtype=np_.int64)
        self.n_links = int(n_links)
        n = len(self.fids)
        self.row_lens = self.indptr[1:] - self.indptr[:-1]
        counts = np_.bincount(self.mem_cols, minlength=self.n_links
                              ).astype(np_.int64)
        self.l_lens = counts
        l_indptr = np_.zeros(self.n_links + 1, dtype=np_.int64)
        np_.cumsum(counts, out=l_indptr[1:])
        self.l_indptr = l_indptr
        mem_rows = np_.repeat(np_.arange(n, dtype=np_.int64),
                              self.row_lens)
        order = np_.argsort(self.mem_cols, kind="stable")
        self.l_rows = mem_rows[order]
        self.base_count = counts.copy()
        self.alive = np_.ones(n, dtype=bool)
        self.n_alive = n
        self.row_of = {fid: row for row, fid in enumerate(self.fids)}

    @property
    def n_rows(self) -> int:
        return len(self.fids)

    @property
    def nnz(self) -> int:
        return int(self.mem_cols.shape[0])

    # Tie groups and freeze sets are usually a handful of entries, so
    # the CSR expanders take a sliced python loop below a small-N
    # threshold — same values, a fraction of the fixed numpy-call
    # overhead — and the vectorized range concat above it.
    _SMALL_N = 64

    def row_members(self, rows):
        """Concatenated membership indices of *rows* (into mem_cols)."""
        return _concat_ranges(self.indptr[rows], self.row_lens[rows])

    def rows_cols(self, rows):
        """Concatenated member columns of *rows*."""
        indptr = self.indptr
        if 0 < rows.shape[0] <= self._SMALL_N:
            mem = self.mem_cols
            return _np.concatenate(
                [mem[indptr[row]:indptr[row + 1]]
                 for row in rows.tolist()])
        return self.mem_cols[
            _concat_ranges(indptr[rows], self.row_lens[rows])]

    def link_rows(self, cols):
        """Concatenated member rows of links *cols*."""
        indptr = self.l_indptr
        if 0 < cols.shape[0] <= self._SMALL_N:
            rows = self.l_rows
            return _np.concatenate(
                [rows[indptr[col]:indptr[col + 1]]
                 for col in cols.tolist()])
        return self.l_rows[
            _concat_ranges(indptr[cols], self.l_lens[cols])]

    def retire(self, fid: int) -> bool:
        """Mark *fid*'s row dead and drop its memberships from the
        active counts.  Returns False when the flow is not a live row
        of this problem."""
        row = self.row_of.get(fid)
        if row is None or not self.alive[row]:
            return False
        self.alive[row] = False
        self.n_alive -= 1
        cols = self.mem_cols[self.indptr[row]:self.indptr[row + 1]]
        _np.subtract.at(self.base_count, cols, 1)
        return True

    def alive_fids(self) -> List[int]:
        return [self.fids[row]
                for row in _np.flatnonzero(self.alive)]


def progressive_fill_vector(inc: CompiledIncidence, remaining,
                            line_rate: float,
                            stats: Optional[SolverStats] = None):
    """The vector kernel: progressive filling over compiled arrays.

    *remaining* is the per-link unconsumed capacity (float64, consumed
    in place — pass a copy).  Returns the rate per row (dead rows stay
    at 0.0).  Every operation is element-wise or an order-independent
    comparison min, so the result is bit-identical to
    :func:`fill_rates_python` on the same problem — see the module
    docstring for why.
    """
    np_ = _np
    n = inc.n_rows
    rates = np_.zeros(n, dtype=np_.float64)
    if inc.n_alive == 0:
        return rates
    unfrozen = inc.alive.copy()
    n_unfrozen = int(inc.n_alive)
    counts = inc.base_count.copy()
    scan = np_.arange(inc.n_links, dtype=np_.int64)
    while n_unfrozen:
        live_counts = counts[scan]
        live = live_counts > 0
        scan = scan[live]
        if stats is not None:
            stats.link_visits += int(scan.size)
        if scan.size:
            shares = remaining[scan] / live_counts[live]
            min_share = shares.min()
        else:
            min_share = line_rate
        if not (min_share < line_rate):
            # Every remaining flow is line-rate limited.  (The
            # reference also drains `remaining` here; the dict is
            # dead state after the break on both paths, so the
            # kernel skips mirroring that final subtraction.)
            rates[unfrozen] = line_rate
            break
        tied = scan[shares == min_share]
        cand = inc.link_rows(tied)
        cand = cand[unfrozen[cand]]
        # A flow crossing several tied links must freeze (and
        # subtract) exactly once — same dedupe as the reference's
        # frozen_now set union (inlined sorted-unique: ``np.unique``'s
        # wrapper chain costs more than the whole small array).
        cand.sort(kind="stable")
        if cand.shape[0] > 1:
            keep = np_.empty(cand.shape[0], dtype=bool)
            keep[0] = True
            np_.not_equal(cand[1:], cand[:-1], out=keep[1:])
            rows = cand[keep]
        else:
            rows = cand
        rates[rows] = min_share
        unfrozen[rows] = False
        n_unfrozen -= int(rows.size)
        cols = inc.rows_cols(rows)
        np_.subtract.at(remaining, cols, min_share)
        np_.subtract.at(counts, cols, 1)
    return rates


def solve_incidence_vector(hops_of: Mapping[int, Sequence[Hop]],
                           remaining: Mapping[Hop, float],
                           line_rate: float,
                           stats: Optional[SolverStats] = None
                           ) -> Dict[int, float]:
    """One-shot vector solve from dict-shaped inputs (batch adapter).

    *remaining* defines the link universe and initial capacities (its
    insertion order becomes the column order); *hops_of* the flows.
    The input dict is not consumed.  Returns the rate per flow id,
    bit-identical to :func:`fill_rates_python` on the same problem.
    """
    np_ = _np
    col_of: Dict[Hop, int] = {}
    for hop in remaining:
        col_of[hop] = len(col_of)
    fids = []
    mem_cols: List[int] = []
    indptr = [0]
    for fid, hops in hops_of.items():
        fids.append(fid)
        for hop in hops:
            mem_cols.append(col_of[hop])
        indptr.append(len(mem_cols))
    inc = CompiledIncidence(fids, indptr, mem_cols, len(col_of))
    capacity = np_.fromiter(remaining.values(), dtype=np_.float64,
                            count=len(col_of))
    rates = progressive_fill_vector(inc, capacity, line_rate, stats)
    out = rates.tolist()
    return {fid: out[row] for row, fid in enumerate(fids)}


# --------------------------------------------------------------------------
# Persistent incidence index (engine adapter support)
# --------------------------------------------------------------------------

class IncidenceIndex:
    """Persistent flow/link column universe for an incremental solver.

    Directed links get stable integer columns on first occupancy; the
    per-column effective capacity is patched in place as links fail,
    degrade, or change PFC factors (the engine patches exactly its
    dirty links).  Per-flow column arrays are registered once per
    arrival/reroute, so compiling a component is a pure array
    concatenation plus one ``np.unique`` — no per-membership python.
    """

    def __init__(self) -> None:
        np_ = _np
        self._col_of: Dict[Hop, int] = {}
        self._capacity = np_.zeros(64, dtype=np_.float64)
        self._flow_cols: Dict[int, Any] = {}

    @property
    def n_cols(self) -> int:
        return len(self._col_of)

    def ensure_col(self, hop: Hop) -> int:
        col = self._col_of.get(hop)
        if col is None:
            col = len(self._col_of)
            self._col_of[hop] = col
            if col >= self._capacity.shape[0]:
                grown = _np.zeros(2 * self._capacity.shape[0],
                                  dtype=_np.float64)
                grown[:self._capacity.shape[0]] = self._capacity
                self._capacity = grown
        return col

    def col(self, hop: Hop) -> Optional[int]:
        return self._col_of.get(hop)

    def set_capacity(self, hop: Hop, value: float) -> None:
        self._capacity[self.ensure_col(hop)] = value

    def register_flow(self, fid: int, hops: Sequence[Hop]) -> None:
        self._flow_cols[fid] = _np.fromiter(
            (self.ensure_col(hop) for hop in hops),
            dtype=_np.int64, count=len(hops))

    def drop_flow(self, fid: int) -> None:
        self._flow_cols.pop(fid, None)

    def flow_cols(self, fid: int):
        return self._flow_cols[fid]

    def gather_capacity(self, cols):
        """Fresh per-solve ``remaining`` vector for local columns."""
        return self._capacity[cols]


def compile_component(fids: Sequence[int],
                      index: IncidenceIndex
                      ) -> Tuple[CompiledIncidence, Any]:
    """Compile one component's flows into a local incidence problem.

    Returns ``(inc, l2g)``: the compiled incidence over local columns
    plus the local→global column map used to gather capacities per
    solve.  Local column order is ascending global column id — the
    solve result is scan-order independent, so this changes nothing
    observable.
    """
    np_ = _np
    fids = list(fids)
    col_arrays = [index.flow_cols(fid) for fid in fids]
    lens = np_.fromiter((arr.shape[0] for arr in col_arrays),
                        dtype=np_.int64, count=len(col_arrays))
    indptr = np_.zeros(len(fids) + 1, dtype=np_.int64)
    np_.cumsum(lens, out=indptr[1:])
    if col_arrays:
        all_cols = np_.concatenate(col_arrays)
    else:
        all_cols = np_.empty(0, dtype=np_.int64)
    l2g, local = np_.unique(all_cols, return_inverse=True)
    inc = CompiledIncidence(fids, indptr, local.astype(np_.int64),
                            int(l2g.shape[0]))
    return inc, l2g

"""Queue, ECN, and PFC models over flow-level link loads.

The fabric simulator produces per-link offered loads; this module turns
them into the switch-internal signals the Astral monitoring system
collects: queue depth, ECN mark counters (polled every five seconds by
the controller, §2.1 footnote), PFC pause counters (Figure 9d), and
INT-observable per-hop forwarding latency (Figure 9c).

The queue model is deliberately coarse — a fluid approximation of a
shared-buffer ASIC:

* while offered load stays within capacity the queue is essentially
  empty (fluid model) and the hop latency is the base forwarding latency
  (~0.6 us in the paper's case);
* once offered load exceeds capacity the queue fills, linearly in the
  overload up to the buffer limit, which at 400G and a 16 MB-class
  buffer yields the hundreds of microseconds the paper's INT heatmap
  shows (179/266 us at the congested hops of Figure 9c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .fabric import LinkDir, LinkLoad

__all__ = ["CongestionConfig", "LinkCongestion", "CongestionModel"]


@dataclass(frozen=True)
class CongestionConfig:
    """Switch buffer/marking parameters (DCQCN-style defaults)."""

    buffer_bytes: float = 16e6          # shared-buffer class ASIC
    ecn_onset_util: float = 1.0         # queue builds only past capacity
    queue_growth_span: float = 0.5      # util 1.5 => buffer full
    ecn_kmin_frac: float = 0.05         # ECN marking starts (queue frac)
    ecn_kmax_frac: float = 0.60         # marking probability reaches pmax
    ecn_pmax: float = 0.8
    pfc_threshold_frac: float = 0.85    # pause upstream beyond this fill
    base_hop_latency_us: float = 0.6
    poll_interval_s: float = 5.0        # controller's ECN polling period
    avg_packet_bytes: float = 4096.0    # RoCE MTU-class packets


@dataclass
class LinkCongestion:
    """Derived congestion state of one link direction."""

    link_dir: LinkDir
    utilization: float
    queue_fill_frac: float
    queue_bytes: float
    hop_latency_us: float
    ecn_marks_per_poll: float
    pfc_pause_events: float

    @property
    def congested(self) -> bool:
        return self.ecn_marks_per_poll > 0


class CongestionModel:
    """Map link loads to queue/ECN/PFC/latency observables."""

    def __init__(self, config: CongestionConfig | None = None):
        self.config = config or CongestionConfig()

    def queue_fill(self, utilization: float) -> float:
        """Fraction of buffer occupied at a given offered utilization.

        Zero at or below the onset (capacity, by default); grows
        linearly with the overload and saturates once the overload
        reaches ``queue_growth_span``.
        """
        cfg = self.config
        if utilization <= cfg.ecn_onset_util:
            return 0.0
        return min(
            1.0,
            (utilization - cfg.ecn_onset_util) / cfg.queue_growth_span,
        )

    def evaluate(self, load: LinkLoad) -> LinkCongestion:
        cfg = self.config
        util = load.utilization
        fill = self.queue_fill(util)
        queue_bytes = fill * cfg.buffer_bytes

        # Hop latency = base forwarding latency + queueing delay at the
        # link's drain rate.
        drain_gbps = max(load.capacity_gbps, 1e-9)
        queue_delay_us = queue_bytes * 8 / (drain_gbps * 1e9) * 1e6
        latency_us = cfg.base_hop_latency_us + queue_delay_us

        # ECN: RED-style ramp between kmin and kmax on the queue fill.
        if fill <= cfg.ecn_kmin_frac:
            mark_prob = 0.0
        elif fill >= cfg.ecn_kmax_frac:
            mark_prob = cfg.ecn_pmax
        else:
            mark_prob = cfg.ecn_pmax * (fill - cfg.ecn_kmin_frac) \
                / (cfg.ecn_kmax_frac - cfg.ecn_kmin_frac)
        packets_per_poll = (load.carried_gbps * 1e9 / 8
                            / cfg.avg_packet_bytes) * cfg.poll_interval_s
        ecn_marks = mark_prob * packets_per_poll

        # PFC: pause events accumulate once the fill crosses the XOFF
        # threshold, scaling with how far past it the queue sits.
        if fill > cfg.pfc_threshold_frac:
            pfc = (fill - cfg.pfc_threshold_frac) \
                / (1.0 - cfg.pfc_threshold_frac) * 1000.0
        else:
            pfc = 0.0

        return LinkCongestion(
            link_dir=load.link_dir,
            utilization=util,
            queue_fill_frac=fill,
            queue_bytes=queue_bytes,
            hop_latency_us=latency_us,
            ecn_marks_per_poll=ecn_marks,
            pfc_pause_events=pfc,
        )

    def evaluate_all(self, loads: Dict[LinkDir, LinkLoad]
                     ) -> Dict[LinkDir, LinkCongestion]:
        return {key: self.evaluate(load) for key, load in loads.items()}

    def total_ecn_marks(self, loads: Dict[LinkDir, LinkLoad]) -> float:
        return sum(
            self.evaluate(load).ecn_marks_per_poll
            for load in loads.values()
        )

    def pfc_capacity_factors(self, loads: Dict[LinkDir, LinkLoad],
                             topology, rounds: int = 3,
                             damping: float = 0.5
                             ) -> Dict[LinkDir, float]:
        """Effective-capacity multipliers from PFC backpressure.

        PFC is lossless flow control: when a queue crosses the XOFF
        threshold, the device pauses its *upstream* senders, which in
        turn back their own queues up — congestion spreading, the §5
        PCIe-incident mechanism ("eventually triggered PFC and caused
        congestion spreading, severely affecting training efficiency").

        The fluid approximation: a hop whose queue is pausing reduces
        the effective capacity of every hop that feeds its sender, by
        ``damping x pause fraction``; the propagation is iterated a few
        rounds so pauses cascade over multiple tiers.  Returns per-hop
        multipliers in (0, 1]; hops absent from the map are unaffected.
        """
        cfg = self.config
        factors: Dict[LinkDir, float] = {}
        # Pause fraction per hop from its own queue state.
        pause: Dict[str, float] = {}   # device -> strongest pause seen
        for key, load in loads.items():
            fill = self.queue_fill(load.utilization)
            if fill > cfg.pfc_threshold_frac:
                frac = (fill - cfg.pfc_threshold_frac) \
                    / (1.0 - cfg.pfc_threshold_frac)
                link = topology.links[key[0]]
                upstream = link.a.device if key[1] else link.b.device
                pause[upstream] = max(pause.get(upstream, 0.0), frac)

        for _ in range(rounds):
            if not pause:
                break
            new_pause: Dict[str, float] = {}
            for key, load in loads.items():
                link = topology.links[key[0]]
                downstream = link.b.device if key[1] else link.a.device
                frac = pause.get(downstream)
                if frac is None:
                    continue
                factor = max(0.05, 1.0 - damping * frac)
                factors[key] = min(factors.get(key, 1.0), factor)
                # The throttled hop may itself start pausing its own
                # upstream if it was already highly utilized.
                effective_util = load.utilization / factor
                fill = self.queue_fill(effective_util)
                if fill > cfg.pfc_threshold_frac:
                    upstream = link.a.device if key[1] \
                        else link.b.device
                    spread = damping * (fill - cfg.pfc_threshold_frac) \
                        / (1.0 - cfg.pfc_threshold_frac)
                    if spread > new_pause.get(upstream, 0.0):
                        new_pause[upstream] = spread
            pause = new_pause
        return factors

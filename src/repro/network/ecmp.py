"""ECMP hashing with the hash-linearity property.

Commodity switching ASICs hash a flow's five-tuple to pick among
equal-cost next hops.  The paper's optimized ECMP (§2.1 footnote 1)
exploits *hash linearity* [50, 51]: for CRC-style hashes,
``H(x ^ d) == H(x) ^ H0(d)`` for a fixed-length perturbation ``d``, so a
sender can steer a flow onto a chosen path index purely by picking its
UDP source port.  This module provides:

* :class:`FiveTuple` — the flow key shared with the monitoring system
  (it is the join key between QP metadata and network-layer telemetry).
* :func:`crc16` — a bitwise CRC-16/CCITT, linear over GF(2).
* :class:`EcmpHasher` — per-switch hash that maps a five-tuple to an
  index among ``n`` candidate next hops.  All switches in a fabric
  share one hash function by default, which is precisely what produces
  the hash polarization the paper observes on multi-hop paths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

__all__ = ["FiveTuple", "crc16", "EcmpHasher"]

_CRC16_POLY = 0x1021  # CRC-16/CCITT


def _crc16_table(poly: int):
    """Per-byte CRC remainders (the classic byte-at-a-time table)."""
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ poly) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


_CRC16_TABLE = _crc16_table(_CRC16_POLY)


def crc16(data: bytes, seed: int = 0) -> int:
    """CRC-16/CCITT, table-driven.  Linear over GF(2) in the message
    bits; value-identical to the bitwise definition (the table folds
    the 8 shift/xor steps per byte into one lookup)."""
    crc = seed & 0xFFFF
    table = _CRC16_TABLE
    for byte in data:
        crc = ((crc << 8) & 0xFF00) ^ table[(crc >> 8) ^ byte]
    return crc


@dataclass(frozen=True)
class FiveTuple:
    """RoCEv2 flow key: (src ip, dst ip, src port, dst port, protocol).

    In production the IPs identify NIC ports; here they are the device
    names, which the monitoring layers use as join keys all the same.
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int = 4791  # RoCEv2 UDP destination port
    protocol: int = 17    # UDP

    def with_src_port(self, port: int) -> "FiveTuple":
        if not 0 <= port <= 0xFFFF:
            raise ValueError(f"port out of range: {port}")
        return replace(self, src_port=port)

    def pack(self) -> bytes:
        """Serialize for hashing. Stable across runs (no PYTHONHASHSEED)."""
        return b"|".join((
            self.src_ip.encode(),
            self.dst_ip.encode(),
            self.src_port.to_bytes(2, "big"),
            self.dst_port.to_bytes(2, "big"),
            bytes([self.protocol]),
        ))


class EcmpHasher:
    """Hash a flow onto one of ``n`` equal-cost next hops.

    ``per_device_salt`` models the per-switch hash seed commodity ASICs
    expose: every hop folds its device identity into the hash, so
    consecutive hops make (statistically) independent choices.  With the
    salt *disabled*, every switch computes the identical hash value and
    ECMP degenerates — ``h % 2 == 0`` at one tier forces ``h % 4`` into
    ``{0, 2}`` at the next — which is exactly the *hash polarization*
    pathology the paper's architecture principles aim to limit; the
    disabled mode exists for that ablation.
    """

    def __init__(self, seed: int = 0, per_device_salt: bool = True):
        self.seed = seed
        self.per_device_salt = per_device_salt

    def hash(self, flow: FiveTuple, salt: str = "") -> int:
        payload = flow.pack()
        if salt and self.per_device_salt:
            payload += b"@" + salt.encode()
        return crc16(payload, seed=self.seed)

    def select(self, flow: FiveTuple, n_choices: int,
               salt: str = "") -> int:
        if n_choices <= 0:
            raise ValueError("no next hops to select among")
        return self.hash(flow, salt=salt) % n_choices

    def port_for_index(self, flow: FiveTuple, n_choices: int,
                       target_index: int,
                       candidate_ports: Iterable[int] | None = None,
                       salt: str = "") -> int:
        """Find a UDP source port steering *flow* to *target_index*.

        This is the sender-side half of the optimized ECMP scheme: the
        hash is simulated for candidate ports until one lands on the
        desired index.  With a 16-bit CRC and small ``n_choices`` this
        terminates almost immediately.
        """
        if not 0 <= target_index < n_choices:
            raise ValueError(
                f"target index {target_index} out of range 0..{n_choices-1}")
        ports = candidate_ports if candidate_ports is not None \
            else range(49152, 65536)
        for port in ports:
            if self.select(flow.with_src_port(port), n_choices,
                           salt=salt) == target_index:
                return port
        raise ValueError(
            f"no candidate source port reaches index {target_index}")

"""Air-cooling airflow model (paper §2.2, Figure 5).

The paper's Optimization #1 rests on a fluid-dynamics argument: with a
constant airflow capacity, air velocity is inversely proportional to the
duct cross-sectional area.  The original *side* intake (air entering
from both sides of the rack row) produces a high outlet velocity that
starves nearby racks of cool air, yielding an inter-rack temperature
spread of about 1 degC; switching to *bottom-up* intake through the much
larger floor cross-section moderates the velocity and flattens the
distribution to about 0.11 degC.

This module models a rack row as heat sources sharing an air supply.
Each rack receives a delivered-airflow fraction that dips near the air
outlet; the dip amplitude scales with the square of the duct velocity,
which is where the cross-section enters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "IntakeGeometry",
    "AirflowConfig",
    "delivered_fractions",
    "rack_temperatures",
    "temperature_spread",
]

_AIR_DENSITY = 1.2          # kg/m^3
_AIR_HEAT_CAPACITY = 1005.0  # J/(kg K)


class IntakeGeometry(enum.Enum):
    """Where cool air enters the rack row."""

    SIDE = "side"          # traditional: both sides of the row
    BOTTOM_UP = "bottom"   # optimized: vertical bottom-up


@dataclass(frozen=True)
class AirflowConfig:
    """Physical parameters of the row's air loop."""

    geometry: IntakeGeometry = IntakeGeometry.SIDE
    #: total cool-air volume per rack, m^3/s (constant across geometries:
    #: "when airflow capacity is constant in fluid dynamics").
    airflow_per_rack_m3s: float = 1.1
    #: effective duct cross-section, m^2; the bottom plenum is much
    #: larger than the side inlets.
    cross_section_m2: float = 0.5
    supply_air_c: float = 25.0
    #: empirical starvation coefficient (maps squared velocity to the
    #: worst-case delivered-airflow deficit).
    starvation_coeff: float = 0.0135

    @classmethod
    def side(cls) -> "AirflowConfig":
        return cls(geometry=IntakeGeometry.SIDE, cross_section_m2=0.5)

    @classmethod
    def bottom_up(cls) -> "AirflowConfig":
        return cls(geometry=IntakeGeometry.BOTTOM_UP,
                   cross_section_m2=1.5)

    @property
    def duct_velocity_ms(self) -> float:
        """v = Q / A — the inverse-proportionality the paper invokes."""
        return self.airflow_per_rack_m3s / self.cross_section_m2

    @property
    def starvation_amplitude(self) -> float:
        """Worst-case fractional airflow deficit near the outlet."""
        return self.starvation_coeff * self.duct_velocity_ms ** 2


def delivered_fractions(n_racks: int, config: AirflowConfig) -> np.ndarray:
    """Fraction of nominal airflow actually reaching each rack.

    The deficit is a Gaussian bump centred on the air outlet (the middle
    of the row for side intake); its amplitude is the geometry-dependent
    starvation amplitude.  Bottom-up intake distributes through the
    floor, so the same functional form applies with a far smaller
    amplitude (velocity is 3x lower => deficit is ~9x smaller).
    """
    if n_racks < 1:
        raise ValueError("need at least one rack")
    positions = np.linspace(0.0, 1.0, n_racks)
    outlet = 0.5
    width = 0.18
    deficit = config.starvation_amplitude \
        * np.exp(-((positions - outlet) ** 2) / (2 * width ** 2))
    return 1.0 - deficit


def rack_temperatures(loads_watts: np.ndarray,
                      config: AirflowConfig) -> np.ndarray:
    """Steady-state exhaust temperature of each rack (degC).

    delta-T = Q / (rho * cp * V_delivered); starved racks run hotter.
    """
    loads_watts = np.asarray(loads_watts, dtype=float)
    fractions = delivered_fractions(len(loads_watts), config)
    delivered = config.airflow_per_rack_m3s * fractions
    delta = loads_watts / (_AIR_DENSITY * _AIR_HEAT_CAPACITY * delivered)
    return config.supply_air_c + delta


def temperature_spread(loads_watts: np.ndarray,
                       config: AirflowConfig) -> float:
    """Max-min inter-rack temperature variation (the Figure 5 metric)."""
    temps = rack_temperatures(loads_watts, config)
    return float(np.max(temps) - np.min(temps))

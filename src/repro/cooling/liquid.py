"""Cold-plate liquid cooling (paper §2.2, Optimization #2).

The paper selects cold plates over immersion for supply-chain maturity,
serviceability, and compatibility with existing air-cooled facilities
(§5, cooling system selection).  A cold-plate loop extracts heat from
the highest-power components (GPUs) directly into the coolant, with a
much better coefficient of performance than moving the same heat with
air.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ColdPlateLoop", "ImmersionCooling"]


@dataclass(frozen=True)
class ColdPlateLoop:
    """A cold-plate liquid loop.

    ``cop`` is the heat moved per unit of pumping/chilling power;
    ``max_extraction_frac`` bounds how much of a server's heat the
    plates can capture (the rest — DIMMs, NICs, VRMs — stays on air).
    """

    cop: float = 13.0
    max_extraction_frac: float = 0.75
    coolant_supply_c: float = 32.0  # warm-water loop

    def cooling_power_watts(self, heat_watts: float) -> float:
        if heat_watts < 0:
            raise ValueError("heat load cannot be negative")
        return heat_watts / self.cop

    def extractable_watts(self, server_heat_watts: float) -> float:
        return server_heat_watts * self.max_extraction_frac


@dataclass(frozen=True)
class ImmersionCooling:
    """Immersion cooling — modelled for the paper's comparison only.

    Slightly better COP than cold plates, but the paper rejects it over
    material compatibility, corrosion, toxicity, and ecosystem maturity;
    those are captured as qualitative flags used in documentation and
    the selection example.
    """

    cop: float = 14.0
    max_extraction_frac: float = 1.0
    mature_ecosystem: bool = False
    easy_maintenance: bool = False
    compatible_with_air_cooled_fleet: bool = False

    def cooling_power_watts(self, heat_watts: float) -> float:
        if heat_watts < 0:
            raise ValueError("heat load cannot be negative")
        return heat_watts / self.cop

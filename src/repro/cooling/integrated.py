"""Air-liquid integrated cooling system (paper §2.2, Optimization #2).

Air cooling handles overall heat dissipation while cold plates target
the localized high-power components.  Because the liquid-to-air power
ratio depends on the workload (GPU- vs CPU-intensive) and is hard to
predict over a ~10-year facility life, Astral integrates both into one
system sharing a primary cold source that provides **100% of the
cooling capacity** to either side — otherwise the plant could not adapt
to shifting workload patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .liquid import ColdPlateLoop

__all__ = ["AirCoolingPlant", "IntegratedCoolingSystem"]


@dataclass(frozen=True)
class AirCoolingPlant:
    """The air side: CRAH/fan-wall plant with its effective COP."""

    cop: float = 6.5

    def cooling_power_watts(self, heat_watts: float) -> float:
        if heat_watts < 0:
            raise ValueError("heat load cannot be negative")
        return heat_watts / self.cop


@dataclass(frozen=True)
class IntegratedCoolingSystem:
    """Unified air + liquid system with a shared primary cold source."""

    air: AirCoolingPlant = field(default_factory=AirCoolingPlant)
    liquid: ColdPlateLoop = field(default_factory=ColdPlateLoop)
    #: the shared primary cold source is sized for the full load on
    #: either side (1.0 = 100% capacity each way).
    primary_source_capacity_frac: float = 1.0

    def split_heat(self, it_watts: float, liquid_ratio: float
                   ) -> tuple[float, float]:
        """(liquid_watts, air_watts) for a workload's power ratio."""
        if not 0.0 <= liquid_ratio <= 1.0:
            raise ValueError(f"liquid ratio out of range: {liquid_ratio}")
        max_liquid = self.liquid.extractable_watts(it_watts)
        liquid_watts = min(it_watts * liquid_ratio, max_liquid)
        return liquid_watts, it_watts - liquid_watts

    def cooling_power_watts(self, it_watts: float,
                            liquid_ratio: float = 0.70) -> float:
        """Plant power to remove *it_watts* of heat at the given split."""
        liquid_watts, air_watts = self.split_heat(it_watts, liquid_ratio)
        return (self.liquid.cooling_power_watts(liquid_watts)
                + self.air.cooling_power_watts(air_watts))

    def can_adapt(self, liquid_ratio: float) -> bool:
        """Can the plant serve this split without re-engineering?

        With the shared primary source at 100% capacity, any split in
        [0, 1] is servable; an undersized source could not follow
        workload shifts — the paper's stated failure mode.
        """
        if not 0.0 <= liquid_ratio <= 1.0:
            return False
        demand_frac = max(liquid_ratio, 1.0 - liquid_ratio)
        return demand_frac <= self.primary_source_capacity_frac + 1e-9

    def effective_cop(self, it_watts: float,
                      liquid_ratio: float = 0.70) -> float:
        power = self.cooling_power_watts(it_watts, liquid_ratio)
        return it_watts / power if power > 0 else float("inf")

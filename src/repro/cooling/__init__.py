"""Cooling substrate: airflow, cold plates, integrated system, legacy."""

from .airflow import (
    AirflowConfig,
    IntakeGeometry,
    delivered_fractions,
    rack_temperatures,
    temperature_spread,
)
from .integrated import AirCoolingPlant, IntegratedCoolingSystem
from .legacy import COOLING_GENERATIONS, CoolingGeneration
from .liquid import ColdPlateLoop, ImmersionCooling

__all__ = [
    "AirCoolingPlant",
    "AirflowConfig",
    "COOLING_GENERATIONS",
    "ColdPlateLoop",
    "CoolingGeneration",
    "ImmersionCooling",
    "IntakeGeometry",
    "IntegratedCoolingSystem",
    "delivered_fractions",
    "rack_temperatures",
    "temperature_spread",
]

"""Historical cooling generations of the operator's datacenters (§5).

The paper recounts three pre-LLM cooling upgrades — direct-expansion air
conditioning (2006), centralized chilled water (2010), and distributed
air-cooling air handling units (2018) — before the Astral air-liquid
integrated system.  These feed the PUE-evolution comparison (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["CoolingGeneration", "COOLING_GENERATIONS"]


@dataclass(frozen=True)
class CoolingGeneration:
    """One generation of the cooling plant."""

    year: int
    name: str
    cop: float
    description: str

    def cooling_power_watts(self, heat_watts: float) -> float:
        if heat_watts < 0:
            raise ValueError("heat load cannot be negative")
        return heat_watts / self.cop


COOLING_GENERATIONS: List[CoolingGeneration] = [
    CoolingGeneration(
        year=2006, name="direct-expansion", cop=2.6,
        description="Direct expansion air conditioning system"),
    CoolingGeneration(
        year=2010, name="chilled-water", cop=3.6,
        description="Centralized chilled water system"),
    CoolingGeneration(
        year=2018, name="distributed-ahu", cop=5.0,
        description="Distributed air-cooling air handling units"),
]

"""Serving-kind twin stack: a diurnal day you can walk through.

The serving pipeline (:mod:`repro.serving.run`) is a deterministic
batch computation over a whole day, so the twin wraps it differently
from the cluster kind: the day's report is computed once up front,
:meth:`advance_to` moves a bucket cursor through it, and snapshots
surface the per-bucket view (arrival rate, replicas, serving vs
training megawatts, day-level TTFT percentiles).  The one operator
action that makes sense here — ``set-power-cap`` — changes the
contract fraction and recomputes the day from the current scenario,
exactly what the capacity desk does when the contract is renegotiated
mid-day.
"""

from __future__ import annotations

from typing import Any, Dict

from ..monitoring.telemetry import IterationReport, TelemetryStore
from ..network.flows import reset_flow_ids
from .actions import ActionError
from .config import TwinConfig

__all__ = ["ServingDayStack"]


class ServingDayStack:
    """Protocol twin of ``_ClusterStack`` for ``kind="serving"``."""

    def __init__(self, config: TwinConfig):
        from ..serving import ServingScenario
        self.config = config
        self.scenario = ServingScenario.from_params(
            dict(config.scenario_params()))
        self.t_s = 0.0
        self.report: Dict[str, Any] = {}
        self._recompute()

    def _recompute(self) -> None:
        """Run the day.  Flow ids reset first so the computation is a
        pure function of the scenario — sessions sharing a worker
        process cannot skew each other's streams."""
        from ..network.solver import use_backend
        from ..serving import ServingRun
        reset_flow_ids()
        with use_backend(self.config.solver):
            self.report = ServingRun(
                self.scenario,
                solver=self.config.solver).run().to_dict()

    # -- session protocol ------------------------------------------------
    def validate(self, action: Dict[str, Any]) -> None:
        if action["kind"] != "set-power-cap":
            raise ActionError(
                f"serving sessions accept only 'set-power-cap', "
                f"got {action['kind']!r}")
        if "frac" not in action:
            raise ActionError(
                "serving set-power-cap needs 'frac' (the contract "
                "fraction), not an explicit host schedule")

    def apply(self, action: Dict[str, Any]) -> Dict[str, Any]:
        self.validate(action)
        import dataclasses
        self.scenario = dataclasses.replace(
            self.scenario, power_cap_frac=action["frac"])
        self._recompute()
        return {"kind": "set-power-cap", "frac": action["frac"],
                "contract_mw": self.report["power"]["contract_mw"]}

    def advance_to(self, t: float) -> None:
        self.t_s = t

    def _bucket_index(self) -> int:
        buckets = self.report["autoscale"]["buckets"]
        bucket_s = float(self.report["trace"]["bucket_s"])
        if not buckets or bucket_s <= 0:
            return 0
        return min(int(self.t_s // bucket_s), len(buckets) - 1)

    def collect(self, store: TelemetryStore) -> Dict[str, Any]:
        index = self._bucket_index()
        bucket = self.report["autoscale"]["buckets"][index]
        power = self.report["power"]
        slo = self.report["slo"]
        store.add(IterationReport(
            time_s=self.t_s, job="serving-day", iteration=index,
            iteration_time_s=float(self.report["trace"]["bucket_s"]),
            completed=True))
        return {
            "kind": "serving",
            "t_s": self.t_s,
            "bucket": index,
            "rate_per_s": bucket["rate_per_s"],
            "replicas_per_pair": bucket["replicas_per_pair"],
            "serving_hosts": bucket["serving_hosts"],
            "train_hosts_allowed": bucket["train_hosts_allowed"],
            "power": {
                "serving_mw": power["serving_mw"][index],
                "training_mw": power["training_mw"][index],
                "total_mw": power["total_mw"][index],
                "contract_mw": power["contract_mw"],
            },
            "ttft": {
                "p50_s": slo["ttft_p50_s"],
                "p95_s": slo["ttft_p95_s"],
                "p99_s": slo["ttft_p99_s"],
                "slo_s": slo["slo_ttft_s"],
                "goodput_fraction": slo["goodput_fraction"],
            },
        }

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "t_s": self.t_s,
            "scenario": self.scenario.to_params(),
            "report": self.report,
        }

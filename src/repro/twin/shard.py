"""Session sharding across worker processes.

A live :class:`~repro.twin.session.TwinSession` cannot be pickled —
it is a web of generators pinned to a DES clock — so instead of
shipping sessions around, each session is *pinned* to one worker
process for its whole life.  A :class:`ShardPool` keeps ``N``
single-worker pools (the same ``ProcessPoolExecutor`` machinery the
farm executor builds on); a session's shard is a stable hash of its
id, and every command for that session is executed in its shard via
the module-level :func:`shard_call` entry point, against a
process-global session table.

Commands and results are JSON-pure dicts, so the parent never holds
live simulation state — which is also what makes the digest-isolation
guarantee easy to reason about: two sessions interact only if they
share a worker, and the only process-global state the stacks touch
(flow-id counters) is reset at every entry that mints flows.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List

from .actions import ActionError
from .config import TwinConfig
from .session import TwinSession

__all__ = ["ShardPool", "shard_call", "shard_of"]

#: process-global session table of one shard worker.
_SESSIONS: Dict[str, TwinSession] = {}


class _NotFound(Exception):
    pass


def _session(session_id: str) -> TwinSession:
    session = _SESSIONS.get(session_id)
    if session is None:
        raise _NotFound(f"no session {session_id!r} in this shard")
    return session


def _dispatch(payload: Dict[str, Any]) -> Any:
    op = payload["op"]
    session_id = payload.get("id", "")
    if op == "create":
        if session_id in _SESSIONS:
            raise ActionError(f"session {session_id!r} already exists")
        config = TwinConfig.from_params(payload["config"])
        session = TwinSession(config, session_id=session_id)
        _SESSIONS[session_id] = session
        return session.info()
    if op == "delete":
        _SESSIONS.pop(session_id, None)
        return {"deleted": session_id}
    session = _session(session_id)
    if op == "info":
        return session.info()
    if op == "submit":
        return session.submit(payload["action"])
    if op == "advance":
        steps = int(payload.get("steps", 1))
        if steps < 1:
            raise ActionError(f"steps must be >= 1, got {steps}")
        return [session.advance(payload["dt_s"]) for _ in range(steps)]
    if op == "snapshot":
        return session.snapshot()
    if op == "digest":
        return session.digest()
    if op == "log":
        return {"config": session.config.to_params(),
                "action_log": session.action_log}
    if op == "records":
        return session.store.to_jsonl()
    raise ValueError(f"unknown shard op {op!r}")


def shard_call(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level picklable command entry; never raises across the
    process boundary — errors come back as tagged results."""
    try:
        return {"ok": True, "value": _dispatch(payload)}
    except (ActionError, ValueError) as exc:
        return {"ok": False, "status": 400, "error": str(exc)}
    except _NotFound as exc:
        return {"ok": False, "status": 404, "error": str(exc)}
    except Exception as exc:  # noqa: BLE001 — keep the shard alive
        return {"ok": False, "status": 500,
                "error": f"{type(exc).__name__}: {exc}"}


def shard_of(session_id: str, workers: int) -> int:
    """Stable shard assignment (never the builtin ``hash``)."""
    digest = hashlib.sha256(session_id.encode("utf-8")).hexdigest()
    return int(digest, 16) % max(1, workers)


class ShardPool:
    """``workers`` single-worker process pools, one session table each."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pools: List[ProcessPoolExecutor] = [
            ProcessPoolExecutor(max_workers=1) for _ in range(workers)]

    def shard_of(self, session_id: str) -> int:
        return shard_of(session_id, self.workers)

    def submit(self, session_id: str, payload: Dict[str, Any]):
        """Queue one command on the session's shard; returns the
        ``concurrent.futures.Future`` of its tagged result."""
        pool = self._pools[self.shard_of(session_id)]
        return pool.submit(shard_call, payload)

    def shutdown(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=False, cancel_futures=True)

"""Validated operator actions and their boundary-time application.

Actions arrive over HTTP as small JSON objects, are normalized and
shape-checked at submit time (so a typo fails the request, not the
simulation), queue until the session's next virtual-time boundary,
and are applied there in submit order.  The *normalized* form is what
the append-only action log records — application is a deterministic
function of (session state, normalized action), which is the whole
replay contract.

Kinds:

``cordon`` / ``uncordon``
    ``{"hosts": [...]}`` — take hosts out of / back into service via
    the :class:`~repro.core.placement.GpuAllocator`.  Uncordon is the
    operator's "heal" verb.
``drain``
    ``{"hosts": [...]}`` — cordon plus checkpoint-preempt every
    running job with an allocation intersecting those hosts.
``preempt``
    ``{"job": "..."}`` — checkpoint-preempt one running job.
``inject-fault``
    ``{"document": {"domains": [...], "faults": [...]}}`` — the same
    front door as the resilience CLI
    (:func:`~repro.resilience.faults_from_document`); domains expand
    into correlated member faults on the live injector.
``set-power-cap``
    ``{"frac": 0.5}`` or ``{"times_s": [...], "allowed": [...]}`` —
    swap the scheduler's :class:`~repro.cluster.powercap.ScheduleHostCap`
    (cluster kind) or the serving contract fraction (serving kind).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..cluster.powercap import ScheduleHostCap
from ..resilience.domains import FaultDomain, faults_from_document, \
    inject_domain

__all__ = ["ActionError", "ACTION_KINDS", "normalize_action",
           "apply_cluster_action"]

ACTION_KINDS = ("cordon", "uncordon", "drain", "preempt",
                "inject-fault", "set-power-cap")


class ActionError(ValueError):
    """A rejected operator action (rendered as HTTP 400)."""


def _host_list(action: Dict[str, Any]) -> List[str]:
    hosts = action.get("hosts")
    if not isinstance(hosts, (list, tuple)) or not hosts:
        raise ActionError(
            f"{action.get('kind')}: 'hosts' must be a non-empty list")
    for host in hosts:
        if not isinstance(host, str):
            raise ActionError(
                f"{action.get('kind')}: host names must be strings, "
                f"got {host!r}")
    return [str(h) for h in hosts]


def normalize_action(action: Any) -> Dict[str, Any]:
    """Shape-check one action and return its canonical (logged) form."""
    if not isinstance(action, dict):
        raise ActionError(
            f"action must be an object, got {type(action).__name__}")
    kind = action.get("kind")
    if kind not in ACTION_KINDS:
        raise ActionError(f"unknown action kind {kind!r}; expected one "
                          f"of {ACTION_KINDS}")
    if kind in ("cordon", "uncordon", "drain"):
        return {"kind": kind, "hosts": _host_list(action)}
    if kind == "preempt":
        job = action.get("job")
        if not isinstance(job, str) or not job:
            raise ActionError("preempt: 'job' must be a job name")
        return {"kind": kind, "job": job}
    if kind == "inject-fault":
        document = action.get("document")
        if not isinstance(document, dict):
            raise ActionError(
                "inject-fault: 'document' must be an object with "
                "'domains' and/or 'faults' lists")
        return {"kind": kind, "document": document}
    # set-power-cap
    if "frac" in action:
        frac = action["frac"]
        if not isinstance(frac, (int, float)) \
                or not 0.0 <= float(frac) <= 1.0:
            raise ActionError(
                f"set-power-cap: 'frac' must be in [0, 1], got {frac!r}")
        normalized: Dict[str, Any] = {"kind": kind,
                                      "frac": float(frac)}
        if "at_s" in action:
            at_s = action["at_s"]
            if not isinstance(at_s, (int, float)) or float(at_s) < 0:
                raise ActionError("set-power-cap: 'at_s' must be a "
                                  f"non-negative time, got {at_s!r}")
            normalized["at_s"] = float(at_s)
        return normalized
    if "times_s" in action or "allowed" in action:
        times = action.get("times_s")
        allowed = action.get("allowed")
        if not isinstance(times, (list, tuple)) \
                or not isinstance(allowed, (list, tuple)) \
                or len(times) != len(allowed) or not times:
            raise ActionError(
                "set-power-cap: 'times_s' and 'allowed' must be "
                "equal-length non-empty lists")
        return {"kind": kind,
                "times_s": [float(t) for t in times],
                "allowed": [int(n) for n in allowed]}
    raise ActionError("set-power-cap: provide 'frac' (plus optional "
                      "'at_s') or an explicit 'times_s'/'allowed' "
                      "schedule")


# -- cluster-kind application ------------------------------------------


def _cap_from_action(action: Dict[str, Any],
                     total_hosts: int) -> ScheduleHostCap:
    if "frac" in action:
        allowed = int(total_hosts * action["frac"])
        if "at_s" in action and action["at_s"] > 0.0:
            return ScheduleHostCap.from_series(
                total_hosts, [0.0, action["at_s"]],
                [total_hosts, allowed])
        return ScheduleHostCap.from_series(
            total_hosts, [0.0], [allowed])
    try:
        return ScheduleHostCap.from_series(
            total_hosts, action["times_s"], action["allowed"])
    except ValueError as exc:
        raise ActionError(f"set-power-cap: {exc}") from None


def apply_cluster_action(stack, action: Dict[str, Any]
                         ) -> Dict[str, Any]:
    """Apply one normalized action to a live cluster stack.

    Returns a JSON-pure effect record (what the action actually did at
    this boundary); the record is derived state — the log keeps only
    the normalized action.
    """
    kind = action["kind"]
    if kind == "cordon":
        done = stack.allocator.cordon(action["hosts"])
        return {"kind": kind, "cordoned": sorted(done)}
    if kind == "uncordon":
        done = stack.allocator.uncordon(action["hosts"])
        return {"kind": kind, "uncordoned": sorted(done)}
    if kind == "drain":
        hit = set(action["hosts"])
        cordoned = stack.allocator.cordon(action["hosts"])
        preempted = []
        for name in stack.scheduler.running_jobs():
            allocation = stack.allocator.allocation(name)
            if allocation and hit.intersection(allocation.hosts):
                if stack.scheduler.interrupt_job(name, preempt=True):
                    preempted.append(name)
        return {"kind": kind, "cordoned": sorted(cordoned),
                "preempted": preempted}
    if kind == "preempt":
        ok = stack.scheduler.interrupt_job(action["job"], preempt=True)
        return {"kind": kind, "job": action["job"], "preempted": ok}
    if kind == "inject-fault":
        return _apply_fault_document(stack, action["document"])
    # set-power-cap
    cap = _cap_from_action(action, stack.total_hosts)
    try:
        stack.scheduler.set_power_cap(cap)
    except ValueError as exc:
        raise ActionError(f"set-power-cap: {exc}") from None
    return {"kind": kind,
            "hosts_allowed_now": cap.hosts_allowed(stack.sim.now)}


class _PlacedTenant:
    """Adapter giving live allocations the shape
    :func:`faults_from_document` expects of placed jobs."""

    def __init__(self, name: str, hosts: List[str]):
        self.name = name
        self.hosts = list(hosts)
        self.coords = ()

    def __repr__(self) -> str:  # pragma: no cover — debug aid
        return f"_PlacedTenant({self.name!r}, {len(self.hosts)} hosts)"


def _apply_fault_document(stack, document: Dict[str, Any]
                          ) -> Dict[str, Any]:
    placed = [
        _PlacedTenant(name, stack.allocator.allocation(name).hosts)
        for name in stack.scheduler.running_jobs()
        if stack.allocator.allocation(name) is not None
    ]
    # Validate the whole document first (every error names its entry),
    # then arm: domains expand on the injector regardless of tenancy,
    # explicit faults ride on the named running job.
    domains = []
    for index, entry in enumerate(document.get("domains", ())
                                  if isinstance(document, dict) else ()):
        if isinstance(entry, dict):
            try:
                domain = FaultDomain(**entry)
                domain.validate_against(stack.params)
            except (TypeError, ValueError) as exc:
                raise ActionError(f"domains[{index}]: {exc}") from None
            domains.append(domain)
    try:
        keyed = faults_from_document(
            stack.params, placed,
            {**document, "domains": []} if "domains" in document
            else document)
    except ValueError as exc:
        raise ActionError(str(exc)) from None
    armed = []
    for domain in domains:
        specs = inject_domain(stack.injector, stack.params, domain)
        armed.append({"domain": domain.describe(),
                      "members": [spec.target for spec in specs]})
    scheduled = []
    for job in sorted(keyed):
        spec = keyed[job]
        try:
            stack.injector.schedule(spec)
        except (KeyError, ValueError) as exc:
            raise ActionError(f"fault for job {job!r}: {exc}") from None
        scheduled.append({"job": job, "target": spec.target,
                          "effect": spec.effect.value})
    return {"kind": "inject-fault", "domains": armed,
            "faults": scheduled}

"""Blocking stdlib client for the twin service.

Used by the tests, the demo, and CI's smoke job — anything that
drives a twin from synchronous code.  One ``http.client`` connection
per request (the server supports keep-alive but a fresh connection
keeps the client trivially robust); :meth:`TwinClient.stream` holds
its own connection open and yields NDJSON snapshots as the server
cuts them.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional
from urllib.parse import urlencode, urlsplit

__all__ = ["TwinClient", "TwinClientError"]


class TwinClientError(Exception):
    """Server-reported failure (HTTP status + error message)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class TwinClient:
    def __init__(self, base_url: str, timeout_s: float = 60.0):
        split = urlsplit(base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {split.scheme!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout_s = timeout_s

    # -- plumbing --------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)

    def request(self, method: str, path: str,
                payload: Optional[Any] = None) -> Any:
        connection = self._connect()
        try:
            body = None
            headers = {"Connection": "close"}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body,
                               headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            if response.getheader("Content-Type", "").startswith(
                    "application/json"):
                value = json.loads(text) if text.strip() else {}
            else:
                value = text
            if response.status >= 400:
                message = value.get("error", text) \
                    if isinstance(value, dict) else text
                raise TwinClientError(response.status, message)
            return value
        finally:
            connection.close()

    def wait_ready(self, timeout_s: float = 15.0) -> None:
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                self.request("GET", "/healthz")
                return
            except (OSError, TwinClientError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"twin at {self.host}:{self.port} not ready "
                        f"after {timeout_s}s")
                time.sleep(0.05)

    # -- service ---------------------------------------------------------
    def version(self) -> str:
        return self.request("GET", "/version")["version"]

    def sessions(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/sessions")["sessions"]

    # -- session lifecycle ----------------------------------------------
    def create_session(self, config: Optional[Dict[str, Any]] = None,
                       session_id: Optional[str] = None,
                       pace: Optional[Dict[str, float]] = None
                       ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"config": config or {}}
        if session_id is not None:
            body["id"] = session_id
        if pace is not None:
            body["pace"] = pace
        return self.request("POST", "/sessions", body)

    def session(self, session_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/sessions/{session_id}")

    def delete_session(self, session_id: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/sessions/{session_id}")

    # -- the operator loop ----------------------------------------------
    def advance(self, session_id: str, dt_s: float = 60.0,
                steps: int = 1) -> List[Dict[str, Any]]:
        return self.request(
            "POST", f"/sessions/{session_id}/advance",
            {"dt_s": dt_s, "steps": steps})["snapshots"]

    def action(self, session_id: str,
               action: Dict[str, Any]) -> Dict[str, Any]:
        return self.request(
            "POST", f"/sessions/{session_id}/actions",
            action)["queued"]

    def action_log(self, session_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/sessions/{session_id}/actions")

    def digest(self, session_id: str) -> str:
        return self.request(
            "GET", f"/sessions/{session_id}/digest")["digest"]

    def verify_replay(self, session_id: str) -> Dict[str, Any]:
        return self.request("POST", f"/sessions/{session_id}/replay")

    def pace(self, session_id: str, dt_s: float = 60.0,
             interval_s: float = 1.0) -> Dict[str, Any]:
        return self.request("POST", f"/sessions/{session_id}/pace",
                            {"dt_s": dt_s, "interval_s": interval_s})

    def stop_pace(self, session_id: str) -> Dict[str, Any]:
        return self.request("POST", f"/sessions/{session_id}/pace",
                            {"stop": True})

    # -- telemetry -------------------------------------------------------
    def telemetry(self, session_id: str,
                  start: int = 0) -> List[Dict[str, Any]]:
        """All archived snapshots from ``start`` (no tailing)."""
        return list(self.stream(session_id, start=start, follow=False))

    def stream(self, session_id: str, start: int = 0,
               follow: bool = False,
               max_snapshots: Optional[int] = None
               ) -> Iterator[Dict[str, Any]]:
        """Yield NDJSON snapshots; with ``follow`` the connection stays
        open and yields new boundaries as the session advances."""
        query = urlencode({"start": start,
                           "follow": "1" if follow else "0"})
        connection = self._connect()
        served = 0
        try:
            connection.request(
                "GET",
                f"/sessions/{session_id}/telemetry/stream?{query}",
                headers={"Connection": "close"})
            response = connection.getresponse()
            if response.status >= 400:
                text = response.read().decode("utf-8")
                try:
                    message = json.loads(text).get("error", text)
                except json.JSONDecodeError:
                    message = text
                raise TwinClientError(response.status, message)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line.decode("utf-8"))
                served += 1
                if max_snapshots is not None \
                        and served >= max_snapshots:
                    return
        finally:
            connection.close()

    def records_jsonl(self, session_id: str) -> str:
        """The session's raw ``TelemetryStore`` as JSONL text."""
        return self.request(
            "GET", f"/sessions/{session_id}/telemetry/records")

"""A hand-rolled asyncio HTTP/1.1 server with decorator routing.

The twin service must stay inside the repo's dependency budget
(``numpy`` + ``networkx``), so instead of FastAPI this is ~200 lines
on :func:`asyncio.start_server`: request parsing, ``{param}`` path
routing, JSON bodies, and chunked NDJSON streaming — exactly the
subset the twin's REST surface needs, and nothing else.

Handlers are ``async def handler(request) -> Response``.  Routes are
declared FastAPI-style::

    app = App("twin")

    @app.get("/sessions/{sid}/digest")
    async def digest(request):
        return Response({"digest": ...})

A :class:`Response` whose ``stream`` is an async iterator is sent with
``Transfer-Encoding: chunked``, one chunk per yielded item — that is
how ``/telemetry/stream`` pushes NDJSON snapshots for as long as the
client stays connected.
"""

from __future__ import annotations

import asyncio
import json
import re
import sys
import traceback
from typing import (Any, AsyncIterator, Awaitable, Callable, Dict, List,
                    Optional, Tuple)
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["App", "HttpError", "Request", "Response", "start_http_server"]

#: refuse request bodies larger than this (the twin's payloads are
#: small JSON documents; anything bigger is a client bug).
MAX_BODY_BYTES = 8 * 1024 * 1024
_LINE_LIMIT = 64 * 1024

_STATUS_TEXT = {
    200: "OK", 201: "Created", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A client-visible error; the server renders it as JSON."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed HTTP request."""

    def __init__(self, method: str, path: str, query: Dict[str, str],
                 headers: Dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        #: ``{name}`` captures from the matched route pattern.
        self.params: Dict[str, str] = {}

    def json(self) -> Any:
        """Parse the body as JSON; empty bodies parse as ``{}``."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not JSON: {exc}")


class Response:
    """JSON by default; pass ``stream`` for chunked NDJSON."""

    def __init__(self, payload: Any = None, status: int = 200,
                 content_type: Optional[str] = None,
                 stream: Optional[AsyncIterator[Any]] = None,
                 body: Optional[bytes] = None):
        self.status = status
        self.stream = stream
        if stream is not None:
            self.content_type = content_type or "application/x-ndjson"
            self.body = b""
        elif body is not None:
            self.content_type = content_type or "text/plain; charset=utf-8"
            self.body = body
        else:
            self.content_type = content_type or "application/json"
            text = json.dumps(payload if payload is not None else {},
                              sort_keys=True)
            self.body = (text + "\n").encode("utf-8")


Handler = Callable[[Request], Awaitable[Response]]
_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile(pattern: str) -> "re.Pattern[str]":
    parts: List[str] = []
    pos = 0
    for match in _PARAM_RE.finditer(pattern):
        parts.append(re.escape(pattern[pos:match.start()]))
        parts.append(f"(?P<{match.group(1)}>[^/]+)")
        pos = match.end()
    parts.append(re.escape(pattern[pos:]))
    return re.compile("^" + "".join(parts) + "$")


class App:
    """Route table plus the per-connection protocol loop."""

    def __init__(self, name: str = "app"):
        self.name = name
        self._routes: List[Tuple[str, "re.Pattern[str]", Handler]] = []

    # -- route declaration ----------------------------------------------
    def route(self, method: str, pattern: str):
        compiled = _compile(pattern)

        def decorate(handler: Handler) -> Handler:
            self._routes.append((method.upper(), compiled, handler))
            return handler
        return decorate

    def get(self, pattern: str):
        return self.route("GET", pattern)

    def post(self, pattern: str):
        return self.route("POST", pattern)

    def delete(self, pattern: str):
        return self.route("DELETE", pattern)

    # -- dispatch --------------------------------------------------------
    async def dispatch(self, request: Request) -> Response:
        allowed: List[str] = []
        for method, compiled, handler in self._routes:
            match = compiled.match(request.path)
            if match is None:
                continue
            if method != request.method:
                allowed.append(method)
                continue
            request.params = {k: unquote(v)
                              for k, v in match.groupdict().items()}
            try:
                return await handler(request)
            except HttpError as exc:
                return Response({"error": exc.message}, status=exc.status)
            except Exception:  # noqa: BLE001 — keep the server alive
                traceback.print_exc(file=sys.stderr)
                return Response({"error": "internal server error"},
                                status=500)
        if allowed:
            return Response(
                {"error": f"method {request.method} not allowed "
                          f"(try {sorted(set(allowed))})"}, status=405)
        return Response({"error": f"no route for {request.path}"},
                        status=404)

    # -- connection handling --------------------------------------------
    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except HttpError as exc:
                    await _write_response(
                        writer,
                        Response({"error": exc.message}, status=exc.status),
                        keep_alive=False)
                    break
                if request is None:
                    break
                response = await self.dispatch(request)
                keep_alive = (
                    response.stream is None
                    and request.headers.get("connection", "").lower()
                    != "close")
                await _write_response(writer, response, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels in-flight connection tasks; ending
            # quietly here is the orderly-shutdown path.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Request]:
    line = await reader.readline()
    if not line or line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise HttpError(400, "malformed request line")
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(raw) > _LINE_LIMIT:
            raise HttpError(400, "header line too long")
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method.upper(), unquote(split.path), query,
                   headers, body)


def _head(status: int, content_type: str, extra: str) -> bytes:
    text = _STATUS_TEXT.get(status, "Unknown")
    return (f"HTTP/1.1 {status} {text}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"{extra}\r\n").encode("latin-1")


async def _write_response(writer: asyncio.StreamWriter,
                          response: Response, keep_alive: bool) -> None:
    if response.stream is None:
        connection = "keep-alive" if keep_alive else "close"
        writer.write(_head(
            response.status, response.content_type,
            f"Content-Length: {len(response.body)}\r\n"
            f"Connection: {connection}\r\n"))
        writer.write(response.body)
        await writer.drain()
        return
    writer.write(_head(
        response.status, response.content_type,
        "Transfer-Encoding: chunked\r\nConnection: close\r\n"))
    await writer.drain()
    try:
        async for item in response.stream:
            if isinstance(item, bytes):
                chunk = item
            elif isinstance(item, str):
                chunk = item.encode("utf-8")
            else:
                chunk = (json.dumps(item, sort_keys=True) + "\n"
                         ).encode("utf-8")
            if not chunk:
                continue
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1")
                         + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
    finally:
        aclose = getattr(response.stream, "aclose", None)
        if aclose is not None:
            try:
                await aclose()
            except Exception:  # noqa: BLE001 — already tearing down
                pass


async def start_http_server(app: App, host: str, port: int
                            ) -> "asyncio.base_events.Server":
    """Bind and return the listening server (``port=0`` picks a free
    port; read it back from ``server.sockets[0].getsockname()``)."""
    return await asyncio.start_server(
        app.handle_connection, host=host, port=port,
        limit=_LINE_LIMIT)

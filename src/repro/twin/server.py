"""The twin service: REST surface, lifecycle, graceful shutdown.

Routes (all JSON unless noted)::

    GET    /                          service + session inventory
    GET    /healthz                   liveness probe
    GET    /version                   package version
    POST   /sessions                  {"config": {...}, "id"?, "pace"?}
    GET    /sessions                  list sessions
    GET    /sessions/{sid}            session info
    DELETE /sessions/{sid}            tear a session down
    POST   /sessions/{sid}/advance    {"dt_s": 60, "steps"?: 1}
    POST   /sessions/{sid}/actions    one operator action (queued)
    GET    /sessions/{sid}/actions    the append-only action log
    GET    /sessions/{sid}/digest     state digest (sha256)
    POST   /sessions/{sid}/replay     replay log via farm, compare
    POST   /sessions/{sid}/pace       {"dt_s", "interval_s"} | {"stop"}
    GET    /sessions/{sid}/telemetry/stream    NDJSON snapshots
                                      (?start=N&follow=1 to tail)
    GET    /sessions/{sid}/telemetry/records   TelemetryStore JSONL

SIGINT/SIGTERM drain the server: the listener closes, sessions and
shard pools shut down, and :func:`serve_forever` reports which signal
ended it so the CLI can exit 130 — Ctrl-C is an orderly outcome, not
a traceback.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Any, Dict, Optional

from .http import App, HttpError, Request, Response, start_http_server
from .manager import SessionManager, TwinError

__all__ = ["build_app", "serve_forever", "TwinServer"]


def _wrap(error: TwinError) -> HttpError:
    return HttpError(error.status, error.message)


def build_app(manager: SessionManager) -> App:
    app = App("repro-twin")

    @app.get("/healthz")
    async def healthz(request: Request) -> Response:
        return Response({"ok": True})

    @app.get("/version")
    async def version(request: Request) -> Response:
        from ..cli import package_version
        return Response({"version": package_version()})

    @app.get("/")
    async def index(request: Request) -> Response:
        return Response({"service": "repro-twin",
                         "workers": manager.workers,
                         "sessions": manager.list_sessions()})

    @app.get("/sessions")
    async def list_sessions(request: Request) -> Response:
        return Response({"sessions": manager.list_sessions()})

    @app.post("/sessions")
    async def create_session(request: Request) -> Response:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "expected an object body")
        try:
            info = await manager.create(body.get("config"),
                                        session_id=body.get("id"))
            pace = body.get("pace")
            if pace:
                await manager.start_pace(
                    info["id"], float(pace.get("dt_s", 60.0)),
                    float(pace.get("interval_s", 1.0)))
        except TwinError as exc:
            raise _wrap(exc)
        return Response(info, status=201)

    @app.get("/sessions/{sid}")
    async def session_info(request: Request) -> Response:
        try:
            return Response(await manager.info(request.params["sid"]))
        except TwinError as exc:
            raise _wrap(exc)

    @app.delete("/sessions/{sid}")
    async def delete_session(request: Request) -> Response:
        try:
            return Response(
                await manager.delete(request.params["sid"]))
        except TwinError as exc:
            raise _wrap(exc)

    @app.post("/sessions/{sid}/advance")
    async def advance(request: Request) -> Response:
        body = request.json()
        try:
            snapshots = await manager.advance(
                request.params["sid"],
                body.get("dt_s", 60.0),
                steps=int(body.get("steps", 1)))
        except TwinError as exc:
            raise _wrap(exc)
        return Response({"snapshots": snapshots,
                         "t_s": snapshots[-1]["t_s"]
                         if snapshots else None})

    @app.post("/sessions/{sid}/actions")
    async def submit_action(request: Request) -> Response:
        try:
            queued = await manager.submit(request.params["sid"],
                                          request.json())
        except TwinError as exc:
            raise _wrap(exc)
        return Response({"queued": queued}, status=201)

    @app.get("/sessions/{sid}/actions")
    async def action_log(request: Request) -> Response:
        try:
            return Response(
                await manager.action_log(request.params["sid"]))
        except TwinError as exc:
            raise _wrap(exc)

    @app.get("/sessions/{sid}/digest")
    async def digest(request: Request) -> Response:
        try:
            value = await manager.digest(request.params["sid"])
        except TwinError as exc:
            raise _wrap(exc)
        return Response({"digest": value})

    @app.post("/sessions/{sid}/replay")
    async def replay(request: Request) -> Response:
        try:
            return Response(
                await manager.verify_replay(request.params["sid"]))
        except TwinError as exc:
            raise _wrap(exc)

    @app.post("/sessions/{sid}/pace")
    async def pace(request: Request) -> Response:
        body = request.json()
        sid = request.params["sid"]
        try:
            if body.get("stop"):
                return Response(await manager.stop_pace(sid))
            return Response(await manager.start_pace(
                sid, float(body.get("dt_s", 60.0)),
                float(body.get("interval_s", 1.0))))
        except TwinError as exc:
            raise _wrap(exc)

    @app.get("/sessions/{sid}/telemetry/stream")
    async def stream(request: Request) -> Response:
        sid = request.params["sid"]
        start = int(request.query.get("start", "0"))
        follow = request.query.get("follow", "0") not in ("0", "",
                                                          "false")
        try:
            manager._handle(sid)
        except TwinError as exc:
            raise _wrap(exc)
        return Response(stream=manager.stream(sid, start=start,
                                              follow=follow))

    @app.get("/sessions/{sid}/telemetry/records")
    async def records(request: Request) -> Response:
        try:
            text = await manager.records_jsonl(request.params["sid"])
        except TwinError as exc:
            raise _wrap(exc)
        return Response(body=text.encode("utf-8"),
                        content_type="application/x-ndjson")

    return app


class TwinServer:
    """Bind/serve/shutdown bundle used by the CLI and the demo."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 workers: int = 0):
        self.host = host
        self.port = port
        self.manager = SessionManager(workers=workers)
        self.app = build_app(self.manager)
        self._server: Optional[Any] = None
        self.stop_event = asyncio.Event()
        self.signaled: Optional[int] = None

    async def start(self) -> None:
        self._server = await start_http_server(self.app, self.host,
                                               self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.manager.shutdown()

    def request_stop(self, signum: Optional[int] = None) -> None:
        self.signaled = signum
        self.stop_event.set()


async def serve_forever(host: str, port: int, workers: int,
                        install_signals: bool = True,
                        announce=print) -> int:
    """Run until SIGINT/SIGTERM; returns the CLI exit code (130 when
    interrupted, 0 on a programmatic stop)."""
    server = TwinServer(host=host, port=port, workers=workers)
    await server.start()
    loop = asyncio.get_running_loop()
    if install_signals:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, server.request_stop, signum)
            except (NotImplementedError, RuntimeError):
                pass
    announce(f"twin: listening on http://{server.host}:{server.port} "
             f"(workers={workers})")
    sys.stdout.flush()
    try:
        await server.stop_event.wait()
    finally:
        await server.stop()
    if server.signaled in (signal.SIGINT, signal.SIGTERM):
        announce(f"twin: shut down on signal {server.signaled}")
        return 130
    return 0

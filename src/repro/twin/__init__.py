"""The digital twin: persistent simulated datacenters as a service.

Everything else in this repo is a batch library — build a world, run
it, print a report, exit.  The twin turns the same stacks into an
*operated* system, the way the paper's infrastructure actually runs:
an asyncio HTTP service (:mod:`.server`, hand-rolled on stdlib —
:mod:`.http`) hosts live sessions (:mod:`.session`) that advance in
explicit virtual-time steps, stream telemetry snapshots as NDJSON,
and accept validated operator actions (:mod:`.actions`) applied at
the next boundary.  Sessions shard across worker processes
(:mod:`.shard`); every session keeps an append-only action log whose
farm-executed replay is bit-identical to the live state — `==`, the
repo-wide determinism bar.
"""

from .client import TwinClient, TwinClientError
from .config import TwinConfig
from .demo import ServerHarness, run_demo, scripted_scenario
from .manager import SessionManager, TwinError
from .server import TwinServer, build_app, serve_forever
from .session import TwinSession, replay, session_digest

__all__ = [
    "SessionManager",
    "ServerHarness",
    "TwinClient",
    "TwinClientError",
    "TwinConfig",
    "TwinError",
    "TwinServer",
    "TwinSession",
    "build_app",
    "replay",
    "run_demo",
    "scripted_scenario",
    "serve_forever",
    "session_digest",
]

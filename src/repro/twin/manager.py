"""Async façade over local or sharded sessions, plus streaming.

The HTTP layer talks only to :class:`SessionManager`.  With
``workers=0`` sessions live in-process (handy for tests and the demo);
with ``workers=N`` every session is pinned to a shard worker process
(:mod:`.shard`) and all commands cross the process boundary as
JSON-pure dicts.  Either way the manager serializes commands per
session with an ``asyncio.Lock`` — the action log is append-only and
ordered, which is what the replay contract quantifies over — and keeps
the archive of boundary snapshots that ``/telemetry/stream``
subscribers replay and then follow live.

Replay verification goes through the farm: the session's
``(config, action_log)`` becomes a ``twin-replay``
:class:`~repro.farm.spec.TaskSpec` executed by a one-worker
:class:`~repro.farm.executor.FarmExecutor` — the same content-hashed
``execute_spec`` choke point every other subsystem replays through.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, AsyncIterator, Dict, List, Optional

from .actions import ActionError
from .config import TwinConfig
from .session import TwinSession
from .shard import ShardPool, shard_call

__all__ = ["SessionManager", "TwinError"]


class TwinError(Exception):
    """Manager-level failure with an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class _SessionHandle:
    """Parent-side bookkeeping for one session."""

    def __init__(self, session_id: str, config: Dict[str, Any]):
        self.session_id = session_id
        self.config = config
        self.lock = asyncio.Lock()
        self.snapshots: List[Dict[str, Any]] = []
        self.subscribers: List[asyncio.Queue] = []
        self.pacer: Optional[asyncio.Task] = None
        self.closed = False


class SessionManager:
    def __init__(self, workers: int = 0):
        self.workers = int(workers)
        self._pool = ShardPool(self.workers) if self.workers > 0 \
            else None
        # One thread for all in-process sessions: they share this
        # process's globals (flow-id counter), so their commands must
        # never interleave.  Sharded sessions get real concurrency.
        self._local_executor = None if self._pool is not None else \
            ThreadPoolExecutor(max_workers=1,
                               thread_name_prefix="twin-local")
        self._local: Dict[str, TwinSession] = {}
        self._handles: Dict[str, _SessionHandle] = {}
        self._counter = 0

    # -- command plumbing ------------------------------------------------
    async def _call(self, session_id: str,
                    payload: Dict[str, Any]) -> Any:
        payload = dict(payload, id=session_id)
        loop = asyncio.get_running_loop()
        if self._pool is not None:
            future = self._pool.submit(session_id, payload)
            result = await asyncio.wrap_future(future)
        else:
            # In-process sessions still run off the event loop so a
            # 64K-scale advance cannot stall concurrent requests.
            result = await loop.run_in_executor(
                self._local_executor, shard_call,
                self._attach_local(payload))
        if not result["ok"]:
            raise TwinError(result.get("status", 500), result["error"])
        return result["value"]

    def _attach_local(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        # workers=0 reuses the shard dispatch table against this
        # process's session dict — one code path, two deployments.
        from . import shard
        shard._SESSIONS = self._local
        return payload

    def _handle(self, session_id: str) -> _SessionHandle:
        handle = self._handles.get(session_id)
        if handle is None:
            raise TwinError(404, f"no session {session_id!r}")
        return handle

    # -- lifecycle -------------------------------------------------------
    async def create(self, config_params: Optional[Dict[str, Any]],
                     session_id: Optional[str] = None
                     ) -> Dict[str, Any]:
        try:
            config = TwinConfig.from_params(config_params or {})
        except (ActionError, ValueError) as exc:
            raise TwinError(400, str(exc))
        if session_id is None:
            self._counter += 1
            session_id = f"s{self._counter}"
        if session_id in self._handles:
            raise TwinError(409, f"session {session_id!r} already "
                                 f"exists")
        handle = _SessionHandle(session_id, config.to_params())
        self._handles[session_id] = handle
        try:
            async with handle.lock:
                info = await self._call(session_id, {
                    "op": "create", "config": config.to_params()})
        except TwinError:
            del self._handles[session_id]
            raise
        if self._pool is not None:
            info["shard"] = self._pool.shard_of(session_id)
        return info

    async def delete(self, session_id: str) -> Dict[str, Any]:
        handle = self._handle(session_id)
        await self.stop_pace(session_id)
        async with handle.lock:
            result = await self._call(session_id, {"op": "delete"})
        handle.closed = True
        for queue in handle.subscribers:
            queue.put_nowait(None)
        del self._handles[session_id]
        return result

    def list_sessions(self) -> List[Dict[str, Any]]:
        return [{"id": session_id,
                 "config": handle.config,
                 "snapshots": len(handle.snapshots),
                 "paced": handle.pacer is not None}
                for session_id, handle in sorted(self._handles.items())]

    # -- session commands ------------------------------------------------
    async def info(self, session_id: str) -> Dict[str, Any]:
        self._handle(session_id)
        return await self._call(session_id, {"op": "info"})

    async def submit(self, session_id: str,
                     action: Any) -> Dict[str, Any]:
        handle = self._handle(session_id)
        async with handle.lock:
            return await self._call(
                session_id, {"op": "submit", "action": action})

    async def advance(self, session_id: str, dt_s: float,
                      steps: int = 1) -> List[Dict[str, Any]]:
        handle = self._handle(session_id)
        async with handle.lock:
            snapshots = await self._call(session_id, {
                "op": "advance", "dt_s": dt_s, "steps": steps})
        handle.snapshots.extend(snapshots)
        for snapshot in snapshots:
            for queue in handle.subscribers:
                queue.put_nowait(snapshot)
        return snapshots

    async def snapshot(self, session_id: str) -> Dict[str, Any]:
        self._handle(session_id)
        return await self._call(session_id, {"op": "snapshot"})

    async def digest(self, session_id: str) -> str:
        handle = self._handle(session_id)
        async with handle.lock:
            return await self._call(session_id, {"op": "digest"})

    async def action_log(self, session_id: str) -> Dict[str, Any]:
        handle = self._handle(session_id)
        async with handle.lock:
            return await self._call(session_id, {"op": "log"})

    async def records_jsonl(self, session_id: str) -> str:
        self._handle(session_id)
        return await self._call(session_id, {"op": "records"})

    # -- replay verification ---------------------------------------------
    async def verify_replay(self, session_id: str) -> Dict[str, Any]:
        """Replay the session's action log through the farm and compare
        digests — the acceptance bar, served as an endpoint."""
        handle = self._handle(session_id)
        async with handle.lock:
            log = await self._call(session_id, {"op": "log"})
            live = await self._call(session_id, {"op": "digest"})
        loop = asyncio.get_running_loop()
        replayed = await loop.run_in_executor(
            None, _replay_via_farm, log)
        return {"live_digest": live,
                "replay_digest": replayed["digest"],
                "match": live == replayed["digest"]}

    # -- paced advancement -----------------------------------------------
    async def start_pace(self, session_id: str, dt_s: float,
                         interval_s: float) -> Dict[str, Any]:
        handle = self._handle(session_id)
        if not dt_s > 0 or not interval_s >= 0:
            raise TwinError(400, "pace needs dt_s > 0 and "
                                 "interval_s >= 0")
        await self.stop_pace(session_id)

        async def _pace() -> None:
            try:
                while True:
                    await self.advance(session_id, dt_s)
                    await asyncio.sleep(interval_s)
            except (asyncio.CancelledError, TwinError):
                pass

        handle.pacer = asyncio.get_running_loop().create_task(_pace())
        return {"paced": True, "dt_s": dt_s, "interval_s": interval_s}

    async def stop_pace(self, session_id: str) -> Dict[str, Any]:
        handle = self._handle(session_id)
        if handle.pacer is not None:
            handle.pacer.cancel()
            try:
                await handle.pacer
            except asyncio.CancelledError:
                pass
            handle.pacer = None
        return {"paced": False}

    # -- streaming -------------------------------------------------------
    async def stream(self, session_id: str, start: int = 0,
                     follow: bool = False
                     ) -> AsyncIterator[Dict[str, Any]]:
        handle = self._handle(session_id)
        queue: Optional[asyncio.Queue] = None
        if follow:
            queue = asyncio.Queue()
            handle.subscribers.append(queue)
        try:
            index = max(0, int(start))
            while index < len(handle.snapshots):
                yield handle.snapshots[index]
                index += 1
            if queue is None:
                return
            while not handle.closed:
                snapshot = await queue.get()
                if snapshot is None:
                    return
                # Skip anything already served from the archive.
                if snapshot.get("step", index) < index - 1:
                    continue
                yield snapshot
                index += 1
        finally:
            if queue is not None and queue in handle.subscribers:
                handle.subscribers.remove(queue)

    # -- teardown --------------------------------------------------------
    async def shutdown(self) -> None:
        for session_id in list(self._handles):
            handle = self._handles[session_id]
            await self.stop_pace(session_id)
            handle.closed = True
            for queue in handle.subscribers:
                queue.put_nowait(None)
        if self._pool is not None:
            self._pool.shutdown()
        if self._local_executor is not None:
            self._local_executor.shutdown(wait=False,
                                          cancel_futures=True)


def _replay_via_farm(log: Dict[str, Any]) -> Dict[str, Any]:
    """Run the registered ``twin-replay`` task on a one-worker farm."""
    from ..farm import tasks as _tasks  # noqa: F401 — registry import
    from ..farm.executor import FarmExecutor
    from ..farm.spec import TaskSpec
    spec = TaskSpec(kind="twin-replay",
                    params={"config": log["config"],
                            "action_log": log["action_log"]})
    report = FarmExecutor(workers=1, use_cache=False).run([spec])
    result = report.results[0]
    if result.status != "ok":
        raise TwinError(500, f"replay failed: {result.error}")
    return result.result

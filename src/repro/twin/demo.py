"""The scripted operator scenario, and an embeddable server harness.

``repro twin demo`` runs the acceptance scenario end to end in one
process: start a server, create a session, then act like an operator
— cordon a rack's worth of hosts, let a correlated optics-batch
domain loose, tighten the power contract, heal — and finally ask the
server to replay the action log through the farm and prove the digest
matches bit-for-bit.  The same scenario drives CI's ``twin-smoke``
job against an out-of-process server.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Dict, Optional

from .client import TwinClient
from .server import TwinServer

__all__ = ["ServerHarness", "scripted_scenario", "run_demo"]


class ServerHarness:
    """A twin server on a background thread (tests and the demo)."""

    def __init__(self, workers: int = 0, host: str = "127.0.0.1"):
        self.workers = workers
        self.host = host
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[TwinServer] = None
        self._started = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="twin-server", daemon=True)

    # -- lifecycle -------------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced in start()
            self._failure = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = TwinServer(host=self.host, port=0,
                                  workers=self.workers)
        await self._server.start()
        self.port = self._server.port
        self._started.set()
        try:
            await self._server.stop_event.wait()
        finally:
            await self._server.stop()

    def start(self) -> "ServerHarness":
        self._thread.start()
        if not self._started.wait(timeout=60):
            raise TimeoutError("twin server failed to start")
        if self._failure is not None:
            raise RuntimeError(
                f"twin server died on startup: {self._failure}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._server is not None:
            self._loop.call_soon_threadsafe(self._server.request_stop)
        self._thread.join(timeout=60)

    # -- conveniences ----------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def client(self, timeout_s: float = 120.0) -> TwinClient:
        client = TwinClient(self.url, timeout_s=timeout_s)
        client.wait_ready()
        return client

    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def scripted_scenario(client: TwinClient, *, scale: str = "small",
                      seed: Any = 0, session_id: str = "demo",
                      jobs: int = 16,
                      say: Optional[Callable[[str], None]] = None
                      ) -> Dict[str, Any]:
    """Cordon -> optics-batch domain -> power-cap tighten -> heal,
    then verify the replay digest.  Returns the transcript."""
    tell = say or (lambda _line: None)
    config = {"kind": "cluster", "scale": scale, "seed": seed,
              "jobs": jobs, "probe_interval_s": 30.0,
              "enforce_cap": True}
    info = client.create_session(config, session_id=session_id)
    tell(f"created session {info['id']} "
         f"(kind={info['kind']}, scale={info['scale']})")

    snapshot = client.advance(session_id, dt_s=120.0)[-1]
    tell(f"t={snapshot['t_s']:.0f}s jobs={snapshot['jobs']} "
         f"draw={snapshot['power']['draw_mw']}MW")

    cordoned = ["p0.b0.h0", "p0.b0.h1"]
    client.action(session_id, {"kind": "cordon", "hosts": cordoned})
    snapshot = client.advance(session_id, dt_s=60.0)[-1]
    tell(f"cordoned {cordoned} -> "
         f"{snapshot['hosts']['cordoned']} hosts out of service")

    domain = {"kind": "optics-batch", "pod": 1, "block": 0,
              "size": 2, "mode": "hard", "seed": seed,
              "at_time_s": 0.0}
    client.action(session_id, {"kind": "inject-fault",
                               "document": {"domains": [domain]}})
    snapshot = client.advance(session_id, dt_s=600.0, steps=3)[-1]
    tell(f"optics-batch domain injected -> faults="
         f"{snapshot['faults']} degraded="
         f"{snapshot['hosts']['degraded']}")

    client.action(session_id, {"kind": "set-power-cap", "frac": 0.5})
    snapshot = client.advance(session_id, dt_s=600.0)[-1]
    tell(f"power cap tightened -> cap={snapshot['power']['cap_mw']}MW "
         f"in_use={snapshot['hosts']['in_use']}")

    client.action(session_id, {"kind": "uncordon", "hosts": cordoned})
    snapshot = client.advance(session_id, dt_s=600.0)[-1]
    tell(f"healed -> cordoned={snapshot['hosts']['cordoned']} "
         f"t={snapshot['t_s']:.0f}s")

    archived = client.telemetry(session_id)
    digest = client.digest(session_id)
    verdict = client.verify_replay(session_id)
    tell(f"digest {digest[:16]}... replay "
         f"{'MATCH' if verdict['match'] else 'MISMATCH'}")
    return {
        "session": session_id,
        "snapshots": len(archived),
        "final": snapshot,
        "digest": digest,
        "replay": verdict,
    }


def run_demo(scale: str = "small", workers: int = 0, seed: Any = 0,
             say: Callable[[str], None] = print) -> int:
    """In-process server + scripted scenario; the CLI entry point."""
    with ServerHarness(workers=workers) as harness:
        client = harness.client()
        say(f"twin demo: server on {harness.url} (workers={workers})")
        transcript = scripted_scenario(client, scale=scale, seed=seed,
                                       say=say)
        client.delete_session(transcript["session"])
    if not transcript["replay"]["match"]:
        say("replay digest MISMATCH — the twin is not deterministic")
        return 1
    say(f"replay digest verified over {transcript['snapshots']} "
        f"boundaries")
    return 0

"""Session configuration: one JSON-pure document per twin.

A :class:`TwinConfig` is everything a session's world depends on, in
the same spirit as ``ServingScenario`` and farm ``TaskSpec`` params:
plain ints/floats/strings so the document round-trips through
``canonical_json`` unchanged.  The config (not any live object) is
what the action log's replay contract quantifies over —
``replay(config, action_log)`` must land on the live session's digest
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional, Union

from ..hierarchy.presets import preset_params
from ..topology.astral import AstralParams

__all__ = ["TwinConfig", "SCALES", "KINDS"]

#: laptop scales map to ``AstralParams`` classmethods, paper scales to
#: the hierarchy presets.
SCALES = ("tiny", "small", "cluster", "4k", "64k", "512k")
KINDS = ("cluster", "serving")

_DIM_FIELDS = ("pods", "blocks_per_pod", "hosts_per_block",
               "gpus_per_host", "aggs_per_group", "cores_per_group")


def _scale_params(scale: str) -> AstralParams:
    if scale == "tiny":
        return AstralParams.tiny()
    if scale == "small":
        return AstralParams.small()
    if scale == "cluster":
        return AstralParams.cluster()
    return preset_params(scale)


@dataclass(frozen=True)
class TwinConfig:
    """Everything one twin session's world depends on.

    ``kind="cluster"`` wraps a live fabric + scheduler + resilience
    pipeline; ``kind="serving"`` wraps a diurnal serving day whose
    report is recomputed when operator actions change the contract.
    """

    kind: str = "cluster"
    scale: str = "small"
    seed: Union[int, str] = 0
    #: max-min solver backend ("python" / "vector" / None = default).
    solver: Optional[str] = None
    # -- cluster-kind knobs ----------------------------------------------
    jobs: int = 24
    policy: str = "topology"
    probe_interval_s: float = 30.0
    dampening_s: float = 10.0
    enforce_cap: bool = True
    host_kw: float = 10.0
    #: cap-boundary planting horizon for the live scheduler.
    horizon_s: float = 7 * 86400.0
    # -- serving-kind knobs ----------------------------------------------
    #: ``ServingScenario`` field overrides (JSON-pure).
    serving: Optional[Dict[str, Any]] = field(default=None)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown twin kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if self.scale not in SCALES:
            raise ValueError(f"unknown twin scale {self.scale!r}; "
                             f"expected one of {SCALES}")
        if self.jobs < 0:
            raise ValueError(f"jobs cannot be negative: {self.jobs}")
        if self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive: "
                             f"{self.probe_interval_s}")
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive: "
                             f"{self.horizon_s}")
        if self.host_kw <= 0:
            raise ValueError(f"host_kw must be positive: {self.host_kw}")
        if self.serving is not None \
                and not isinstance(self.serving, dict):
            raise ValueError("serving overrides must be an object")

    # -- derived ---------------------------------------------------------
    def astral_params(self) -> AstralParams:
        return _scale_params(self.scale)

    def scenario_params(self) -> Dict[str, Any]:
        """A ``ServingScenario.from_params`` document for this config.

        Laptop scales ship explicit ``dims``; paper scales name the
        hierarchy preset the serving stack already understands.
        """
        params: Dict[str, Any] = {"seed": self.seed}
        if self.scale in ("4k", "64k", "512k"):
            params["preset"] = self.scale
        else:
            shape = self.astral_params()
            params["preset"] = None
            params["dims"] = {name: getattr(shape, name)
                              for name in _DIM_FIELDS}
        params.update(self.serving or {})
        return params

    # -- wire format -----------------------------------------------------
    def to_params(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_params(cls, params: Dict[str, Any]) -> "TwinConfig":
        if not isinstance(params, dict):
            raise ValueError("twin config must be an object, got "
                             f"{type(params).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ValueError(f"twin config has unknown keys {unknown}; "
                             f"expected a subset of {sorted(known)}")
        return cls(**params)

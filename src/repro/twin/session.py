"""A persistent simulated datacenter, advanced in virtual time.

:class:`TwinSession` wraps one live stack — for ``kind="cluster"``: a
topology, a :class:`~repro.network.engine.FabricEngine`, a
:class:`~repro.cluster.scheduler.ClusterScheduler` and the resilience
pipeline, all sharing one DES clock; for ``kind="serving"`` a diurnal
serving day (:mod:`.serving_day`).  The session only moves when
:meth:`advance` is called: queued operator actions are applied at the
current instant (the *boundary*), then the clock runs ``dt_s`` of
virtual time, then a telemetry snapshot is cut into the session's
:class:`~repro.monitoring.telemetry.TelemetryStore` and returned.

Every boundary appends ``{"dt_s", "actions"}`` to an append-only
action log.  Because applying a normalized action is a deterministic
function of session state, re-running the log from a fresh session
built from the same config lands on the same state bit-for-bit:
``replay(config, log).digest() == live.digest()`` with ``==``, the
same determinism bar the farm and solver backends meet.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence

from ..cluster.scheduler import ClusterScheduler
from ..cluster.workload import WorkloadGenerator
from ..core.placement import GpuAllocator
from ..farm.spec import TaskSpec, canonical_json
from ..monitoring.mttlf import MttlfModel
from ..monitoring.pingmesh import Pingmesh
from ..monitoring.telemetry import (SwitchCounterRecord, SyslogRecord,
                                    TelemetryStore)
from ..network.engine import FabricEngine
from ..network.fabric import Fabric
from ..network.flows import reset_flow_ids
from ..resilience.injector import FailureInjector
from ..resilience.pipeline import RecoveryPipeline
from ..topology.astral import build_astral
from .actions import ActionError, apply_cluster_action, normalize_action
from .config import TwinConfig

__all__ = ["TwinSession", "replay", "session_digest"]


def session_digest(fingerprint: Dict[str, Any]) -> str:
    """Canonical-JSON sha256 of a state fingerprint."""
    return hashlib.sha256(
        canonical_json(fingerprint).encode("utf-8")).hexdigest()


class _ClusterStack:
    """The live cluster world: one clock under everything."""

    def __init__(self, config: TwinConfig):
        self.config = config
        self.params = config.astral_params()
        self.topology = build_astral(self.params)
        self.fabric = Fabric(self.topology, solver=config.solver)
        self.engine = FabricEngine(self.fabric)
        self.sim = self.engine.sim
        self.allocator = GpuAllocator(self.topology)
        self.total_hosts = self.allocator.free_hosts
        self.host_kw = config.host_kw
        self.pingmesh = Pingmesh(self.fabric)
        self.injector = FailureInjector(self.engine,
                                        dampening_s=config.dampening_s)
        workload = WorkloadGenerator(
            seed=f"twin:{config.seed}").generate(
                config.jobs, max_hosts=self.total_hosts)
        self.scheduler = ClusterScheduler(
            self.topology, workload, policy=config.policy,
            allocator=self.allocator, seed=0,
            enforce_cap=config.enforce_cap, sim=self.sim)
        self.pipeline = RecoveryPipeline(
            self.engine, self.allocator, pingmesh=self.pingmesh,
            mttlf=MttlfModel(n_hosts=max(2, self.total_hosts),
                             jitter_frac=0.0),
            probe_interval_s=config.probe_interval_s,
            on_cordon=self._on_cordon)
        # Per-tier link index, fixed at build time (faults toggle
        # ``healthy``; they never remove links from the graph).
        self._tier_links: Dict[int, List[int]] = {}
        for link in self.topology.links.values():
            tier = max(self.topology.devices[link.a.device].tier,
                       self.topology.devices[link.b.device].tier)
            self._tier_links.setdefault(tier, []).append(link.link_id)
        self.scheduler.start(until=config.horizon_s)
        self.pipeline.start()

    def _on_cordon(self, record) -> List[str]:
        """Recovery pipeline hook: fail every running job whose
        allocation intersects the cordoned blast radius."""
        cordoned = set(record.cordoned_hosts)
        interrupted: List[str] = []
        for name in self.scheduler.running_jobs():
            allocation = self.allocator.allocation(name)
            if allocation and cordoned.intersection(allocation.hosts):
                if self.scheduler.interrupt_job(name):
                    interrupted.append(name)
        return interrupted

    # -- session protocol ------------------------------------------------
    def validate(self, action: Dict[str, Any]) -> None:
        """Submit-time semantic checks (boundary application does the
        stateful validation; here we only fail what can never work)."""
        if action["kind"] in ("cordon", "uncordon", "drain"):
            for host in action["hosts"]:
                device = self.topology.devices.get(host)
                if device is None or device.tier != 0:
                    raise ActionError(
                        f"{action['kind']}: {host!r} is not a host "
                        f"of this cluster")

    def apply(self, action: Dict[str, Any]) -> Dict[str, Any]:
        return apply_cluster_action(self, action)

    def advance_to(self, t: float) -> None:
        self.sim.run(until=t)

    def collect(self, store: TelemetryStore) -> Dict[str, Any]:
        now = self.sim.now
        census = self.pingmesh.census()
        degraded = {host: count for host, count in census.items()
                    if count < self._healthy_uplinks}
        tiers = {}
        for tier in sorted(self._tier_links):
            link_ids = self._tier_links[tier]
            healthy = sum(
                1 for lid in link_ids if self.topology.links[lid].healthy)
            utilization = healthy / len(link_ids) if link_ids else 1.0
            tiers[f"tier{tier}"] = {
                "links": len(link_ids), "healthy": healthy,
                "healthy_frac": round(utilization, 9)}
            store.add(SwitchCounterRecord(
                time_s=now, device=f"tier{tier}", link_id=-tier,
                drops=float(len(link_ids) - healthy),
                utilization=round(utilization, 9)))
        for host in sorted(degraded):
            store.add(SyslogRecord(
                time_s=now, device=host, severity="warning",
                message=f"carrier: {degraded[host]} of "
                        f"{self._healthy_uplinks} uplinks healthy"))
        states = self.scheduler.job_states()
        counts: Dict[str, int] = {}
        for status in states.values():
            counts[status] = counts.get(status, 0) + 1
        in_use = self.scheduler.in_use_hosts()
        cap = self.scheduler.power_cap
        allowed = (cap.hosts_allowed(now) if cap is not None
                   else self.total_hosts)
        return {
            "kind": "cluster",
            "t_s": now,
            "hosts": {
                "total": self.total_hosts,
                "in_use": in_use,
                "free": self.allocator.free_hosts,
                "cordoned": len(self.allocator.cordoned_hosts),
                "degraded": len(degraded),
            },
            "tiers": tiers,
            "jobs": counts,
            "power": {
                "draw_mw": round(in_use * self.host_kw / 1000.0, 9),
                "cap_mw": round(allowed * self.host_kw / 1000.0, 9),
                "hosts_allowed": allowed,
            },
            "faults": {
                "injected": len(self.injector.log),
                "recoveries": len(self.pipeline.records),
            },
        }

    @property
    def _healthy_uplinks(self) -> int:
        # Dual-ToR: every host has rails x nic_ports uplinks.
        return self.params.gpus_per_host * self.params.nic_ports

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "t_s": self.sim.now,
            "census": self.pingmesh.census(),
            "cordoned": self.allocator.cordoned_hosts,
            "job_states": self.scheduler.job_states(),
            "in_use_hosts": self.scheduler.in_use_hosts(),
            "injector_log": [
                {"at_s": event.at_s, "action": event.action,
                 "target": event.target}
                for event in self.injector.log],
            "recoveries": [record.as_dict()
                           for record in self.pipeline.records],
            "power_cap": self._cap_params(),
        }

    def _cap_params(self) -> Optional[Dict[str, Any]]:
        cap = self.scheduler.power_cap
        if cap is None:
            return None
        return {"times_s": list(cap.times_s),
                "allowed": list(cap.allowed)}


class TwinSession:
    """One persistent datacenter; see the module docstring."""

    def __init__(self, config: TwinConfig,
                 session_id: str = "twin"):
        self.config = config
        self.session_id = session_id
        # Farm-style seeding choke: same entry discipline as
        # ``execute_spec`` so a session built live in a shard worker
        # and one rebuilt by replay start from identical streams.
        spec = TaskSpec(kind="twin-replay",
                        params={"config": config.to_params(),
                                "action_log": []})
        reset_flow_ids()
        import random
        random.seed(spec.seed_material)
        self.store = TelemetryStore()
        if config.kind == "cluster":
            self.stack = _ClusterStack(config)
        else:
            from .serving_day import ServingDayStack
            self.stack = ServingDayStack(config)
        self.t_s = 0.0
        self.action_log: List[Dict[str, Any]] = []
        self.snapshots: List[Dict[str, Any]] = []
        self._pending: List[Dict[str, Any]] = []

    # -- operator surface ------------------------------------------------
    def submit(self, action: Any) -> Dict[str, Any]:
        """Validate and queue one action for the next boundary."""
        normalized = normalize_action(action)
        self.stack.validate(normalized)
        self._pending.append(normalized)
        return normalized

    def advance(self, dt_s: float) -> Dict[str, Any]:
        """One boundary: apply queued actions, run ``dt_s`` of virtual
        time, cut and return a snapshot."""
        if not isinstance(dt_s, (int, float)) or not dt_s > 0:
            raise ActionError(f"advance dt_s must be positive, "
                              f"got {dt_s!r}")
        dt_s = float(dt_s)
        pending, self._pending = self._pending, []
        effects = [self.stack.apply(action) for action in pending]
        self.t_s += dt_s
        self.stack.advance_to(self.t_s)
        snapshot = self.stack.collect(self.store)
        snapshot["step"] = len(self.action_log)
        snapshot["applied"] = effects
        self.action_log.append({"dt_s": dt_s, "actions": pending})
        self.snapshots.append(snapshot)
        return snapshot

    # -- state ------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The latest boundary snapshot (or a fresh cut at t=0)."""
        if self.snapshots:
            return self.snapshots[-1]
        snapshot = self.stack.collect(self.store)
        snapshot["step"] = -1
        snapshot["applied"] = []
        return snapshot

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "config": self.config.to_params(),
            "t_s": self.t_s,
            "action_log": self.action_log,
            "n_snapshots": len(self.snapshots),
            "last_snapshot": (self.snapshots[-1]
                              if self.snapshots else None),
            "stack": self.stack.fingerprint(),
        }

    def digest(self) -> str:
        return session_digest(self.fingerprint())

    def info(self) -> Dict[str, Any]:
        return {
            "id": self.session_id,
            "kind": self.config.kind,
            "scale": self.config.scale,
            "t_s": self.t_s,
            "steps": len(self.action_log),
            "pending_actions": len(self._pending),
            "n_snapshots": len(self.snapshots),
        }


def replay(config: TwinConfig,
           action_log: Sequence[Dict[str, Any]],
           session_id: str = "replay") -> TwinSession:
    """Rebuild a session from its config and action log.

    The result is bit-identical to the live session that produced the
    log — same digest, same snapshots — because live advancement *is*
    this code path."""
    session = TwinSession(config, session_id=session_id)
    for step in action_log:
        for action in step.get("actions", ()):
            session.submit(action)
        session.advance(step["dt_s"])
    return session

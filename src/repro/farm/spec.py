"""Task specs: canonical, content-addressed descriptions of work.

A :class:`TaskSpec` is the unit the farm schedules: a registered
``kind`` (which simulator entry point to drive) plus a JSON dict of
parameters.  Specs are *canonical* — serialisation sorts keys, strips
whitespace, and rejects NaN — so the same logical task always yields
the same bytes and therefore the same :meth:`TaskSpec.content_hash`.
That hash (plus the code fingerprint, see :mod:`repro.farm.cache`) is
the cache key and the per-task deterministic seed.

Task kinds are registered with :func:`register_task`; each carries a
``version`` folded into the hash, so changing a runner's output format
bumps the version and invalidates cached results explicitly rather
than silently.

The determinism contract every runner must honour:

* the result is a pure function of ``params`` — every stochastic draw
  comes from a seed in the spec, never from ambient state;
* the result is JSON-serialisable and canonicalisable (no NaN);
* the runner resets process-global counters it depends on (the farm
  resets flow ids and re-seeds the global ``random`` before each task
  as defense in depth).

Runners that honour it are *location-transparent*: the farm may run
them in-process, in a pooled worker, or not at all (cache hit) and the
caller cannot tell the difference.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "TaskKind",
    "TaskSpec",
    "UnknownTaskKind",
    "canonical_json",
    "execute_spec",
    "register_task",
    "task_kind",
    "task_kinds",
]

#: Bumped when the spec envelope itself (not a runner) changes shape.
SPEC_SCHEMA_VERSION = 1


class UnknownTaskKind(KeyError):
    """Raised when a spec names a kind no runner is registered for."""


def canonical_json(value: Any) -> str:
    """Serialise to the one canonical JSON form used for hashing.

    Sorted keys, minimal separators, pure ASCII, and ``allow_nan=False``
    so a non-finite float is an error instead of a platform-dependent
    token.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, allow_nan=False)


@dataclass(frozen=True)
class TaskKind:
    """A registered runner for one kind of task."""

    name: str
    runner: Callable[[Dict[str, Any]], Any]
    version: int = 1
    description: str = ""


_REGISTRY: Dict[str, TaskKind] = {}


def register_task(name: str, version: int = 1, description: str = ""):
    """Decorator: register ``fn(params) -> json-able result`` as a kind."""
    def _decorate(fn: Callable[[Dict[str, Any]], Any]):
        if name in _REGISTRY:
            raise ValueError(f"task kind {name!r} already registered")
        _REGISTRY[name] = TaskKind(name=name, runner=fn,
                                   version=version,
                                   description=description)
        return fn
    return _decorate


def task_kind(name: str) -> TaskKind:
    """Look up a registered kind (importing the builtin set lazily)."""
    _ensure_builtin_tasks()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownTaskKind(
            f"no task kind {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def task_kinds() -> List[str]:
    """Sorted names of every registered kind."""
    _ensure_builtin_tasks()
    return sorted(_REGISTRY)


def _ensure_builtin_tasks() -> None:
    # Import for the registration side effect; cheap after the first
    # call, and inside a function so spec.py has no heavy deps.
    from . import tasks as _tasks  # noqa: F401


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit of work: a kind plus canonical params."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: free-form display label; NOT part of the hash.
    label: str = ""
    #: per-task wall-clock budget, overriding the executor's generic
    #: ``timeout_s`` — slow kinds (a faulted 512K ``hierarchy-run``)
    #: declare their own budget instead of inflating everyone's.  Like
    #: ``label``, NOT part of the hash: it shapes execution, never the
    #: result.
    timeout_s: Optional[float] = None

    # -- canonical identity -------------------------------------------------
    def canonical(self) -> str:
        """The hashed form: kind + runner version + params."""
        return canonical_json({
            "schema": SPEC_SCHEMA_VERSION,
            "kind": self.kind,
            "version": task_kind(self.kind).version,
            "params": self.params,
        })

    @property
    def content_hash(self) -> str:
        """Stable sha256 of the canonical form (hex)."""
        return hashlib.sha256(
            self.canonical().encode("ascii")).hexdigest()

    @property
    def seed_material(self) -> int:
        """Deterministic per-task integer for defensive re-seeding."""
        return int(self.content_hash[:16], 16)

    def describe(self) -> str:
        if self.label:
            return self.label
        brief = ",".join(f"{k}={self.params[k]}"
                         for k in sorted(self.params)[:4])
        return f"{self.kind}({brief})"

    # -- (de)serialisation --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind,
                                "params": dict(self.params)}
        if self.label:
            data["label"] = self.label
        if self.timeout_s is not None:
            data["timeout_s"] = self.timeout_s
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaskSpec":
        return cls(kind=data["kind"], params=dict(data.get("params", {})),
                   label=data.get("label", ""),
                   timeout_s=data.get("timeout_s"))


def execute_spec(spec: TaskSpec) -> Any:
    """Run one spec to completion in the current process.

    This is the single choke point both the serial path and the pool
    workers go through, so the execution environment is identical by
    construction: global flow ids are reset and the global ``random``
    module is re-seeded from the spec hash (registered runners must
    thread explicit seeds anyway; this pins down any stray draw).
    """
    import random as _random

    from ..network.flows import reset_flow_ids

    kind = task_kind(spec.kind)
    reset_flow_ids()
    _random.seed(spec.seed_material)
    result = kind.runner(dict(spec.params))
    # Fail fast, in the worker, if a runner leaks non-JSON state.
    canonical_json(result)
    return result


def specs_from_document(document: Dict[str, Any]) -> List[TaskSpec]:
    """Parse a spec document (the ``repro farm`` file format).

    ``{"tasks": [{kind, params, label?}, ...]}`` enumerates explicit
    specs; ``{"sweep": {kind, base?, grid?, seeds?, seed_key?}}``
    expands a parameter grid / seed matrix via :mod:`repro.farm.sweep`.
    Both keys may be present; tasks come first.
    """
    from .sweep import grid_specs

    specs: List[TaskSpec] = [
        TaskSpec.from_dict(entry)
        for entry in document.get("tasks", [])
    ]
    sweeps: Iterable[Dict[str, Any]] = document.get("sweeps") or (
        [document["sweep"]] if document.get("sweep") else [])
    for sweep_doc in sweeps:
        specs.extend(grid_specs(
            sweep_doc["kind"],
            base=sweep_doc.get("base"),
            grid=sweep_doc.get("grid"),
            seeds=sweep_doc.get("seeds"),
            seed_key=sweep_doc.get("seed_key", "seed")))
    if not specs:
        raise ValueError(
            "spec document declares no tasks (need 'tasks', 'sweep', "
            "or 'sweeps')")
    return specs


def _spec_sort_key(spec: TaskSpec) -> str:
    return spec.content_hash


def dedupe_specs(specs: Iterable[TaskSpec]) -> List[TaskSpec]:
    """Drop exact-duplicate specs, keeping first-seen order."""
    seen: Dict[str, None] = {}
    unique: List[TaskSpec] = []
    for spec in specs:
        key = spec.content_hash
        if key not in seen:
            seen[key] = None
            unique.append(spec)
    return unique

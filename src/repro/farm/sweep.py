"""Sweep fan-out: parameter grids and seed matrices over task kinds.

:func:`grid_specs` expands a base param dict with a cartesian grid
(and/or a seed list) into :class:`~repro.farm.spec.TaskSpec` rows in a
deterministic order — grid keys sorted, values in declaration order —
so the same sweep document always produces the same spec list and
therefore the same cache keys.

:func:`run_sweep` pushes the rows through a
:class:`~repro.farm.executor.FarmExecutor` and wraps the report in a
:class:`SweepResult`, which re-attaches each result to the grid point
that produced it and offers typed extraction (``column``/``table``)
for plotting or asserting over the swept axis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (Any, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from .executor import FarmExecutor, FarmReport, TaskResult
from .spec import TaskSpec

__all__ = ["SweepResult", "grid_specs", "run_sweep", "seed_specs"]


def grid_specs(kind: str, base: Optional[Mapping[str, Any]] = None,
               grid: Optional[Mapping[str, Sequence[Any]]] = None,
               seeds: Optional[Iterable[int]] = None,
               seed_key: str = "seed") -> List[TaskSpec]:
    """Expand ``base`` x ``grid`` x ``seeds`` into one spec per cell.

    ``grid`` maps param names to candidate values; ``seeds`` is
    shorthand for one more axis on ``seed_key``.  A grid value
    overrides the base value for its cell; an empty/absent grid with
    no seeds yields exactly one spec (the base).
    """
    base = dict(base or {})
    axes: List[Tuple[str, List[Any]]] = [
        (key, list(values)) for key, values in sorted(
            (grid or {}).items())
    ]
    if seeds is not None:
        if any(key == seed_key for key, _ in axes):
            raise ValueError(
                f"{seed_key!r} appears in both grid= and seeds=")
        axes.append((seed_key, [int(seed) for seed in seeds]))
        axes.sort(key=lambda axis: axis[0])
    if not axes:
        return [TaskSpec(kind=kind, params=base)]
    specs = []
    names = [name for name, _ in axes]
    for cell in itertools.product(*(values for _, values in axes)):
        params = dict(base)
        params.update(zip(names, cell))
        label = ",".join(f"{name}={value}"
                         for name, value in zip(names, cell))
        specs.append(TaskSpec(kind=kind, params=params,
                              label=f"{kind}[{label}]"))
    return specs


def seed_specs(kind: str, base: Optional[Mapping[str, Any]] = None,
               seeds: Iterable[int] = (), seed_key: str = "seed"
               ) -> List[TaskSpec]:
    """A pure seed matrix: one spec per seed over a fixed base."""
    return grid_specs(kind, base=base, seeds=list(seeds),
                      seed_key=seed_key)


@dataclass
class SweepResult:
    """A farm report with its grid coordinates re-attached."""

    report: FarmReport

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def results(self) -> List[TaskResult]:
        return self.report.results

    def rows(self) -> List[Tuple[Dict[str, Any], TaskResult]]:
        """(params, result) per cell, in sweep order."""
        return [(dict(result.spec.params), result)
                for result in self.report.results]

    def column(self, *path: str) -> List[Any]:
        """Extract one nested result field across every OK cell.

        ``column("summary", "utilization")`` digs
        ``result["summary"]["utilization"]`` per cell; failed cells
        contribute ``None`` so the column stays aligned with
        :meth:`rows`.
        """
        values: List[Any] = []
        for result in self.report.results:
            if not result.ok:
                values.append(None)
                continue
            node = result.result
            for key in path:
                node = node[key]
            values.append(node)
        return values

    def table(self, axes: Sequence[str], *path: str
              ) -> List[Tuple[Tuple[Any, ...], Any]]:
        """((axis values...), field) per cell — a plottable series."""
        column = self.column(*path)
        return [
            (tuple(result.spec.params.get(axis) for axis in axes),
             value)
            for result, value in zip(self.report.results, column)
        ]


def run_sweep(specs: Sequence[TaskSpec], workers: int = 1,
              use_cache: bool = True, cache=None,
              timeout_s: Optional[float] = None,
              max_retries: int = 1, progress=None) -> SweepResult:
    """Run pre-expanded specs through a farm; see :class:`FarmExecutor`."""
    executor = FarmExecutor(
        workers=workers, use_cache=use_cache, cache=cache,
        timeout_s=timeout_s, max_retries=max_retries,
        progress=progress)
    return SweepResult(report=executor.run(specs))

"""Process-pool task farm: parallel, isolated, cached, deterministic.

:class:`FarmExecutor` runs a list of :class:`~repro.farm.spec.TaskSpec`
to completion with

* **result-cache short-circuiting** — specs whose hash is already in
  the :class:`~repro.farm.cache.ResultCache` for the current code
  fingerprint never reach a worker;
* **crash isolation** — a worker dying mid-task (segfault,
  ``os._exit``, OOM-kill) breaks only that pool generation: the pool
  is rebuilt, in-flight tasks are retried up to ``max_retries``, and a
  task that keeps killing its workers is reported ``crashed`` instead
  of sinking the sweep;
* **per-task timeouts** — enforced *inside* the executing process via
  ``SIGALRM`` (POSIX), so a hung task is interrupted and its worker
  survives to take the next task; a spec's own ``timeout_s`` (not part
  of its content hash) overrides the executor-wide budget, so one
  known-slow kind doesn't force a sweep-wide ceiling;
* **deterministic output** — results are reported in submission order,
  every runner goes through the same
  :func:`~repro.farm.spec.execute_spec` choke point as the serial
  path, and the workers hold no cross-task state the runners can see.
  ``run(specs, workers=N)`` is therefore bit-identical to
  ``run(specs, workers=1)``, a property the validation differential
  tests enforce.

Clean exceptions and timeouts are *not* retried: registered runners
are deterministic, so a failure would simply repeat.  Only worker
death is retried, because the deaths the retry exists for (a co-tenant
OOM-killing the box, a pool torn down by an unrelated task's crash)
are environmental, not functional — and retries back off
exponentially with deterministic per-task jitter
(:meth:`FarmExecutor._retry_delay_s`), so a transiently sick box isn't
hammered in lockstep.
"""

from __future__ import annotations

import os
import random
import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple)

from .cache import ResultCache
from .spec import TaskSpec, canonical_json, execute_spec

__all__ = ["FarmExecutor", "FarmReport", "FarmTaskTimeout", "TaskResult"]


class FarmTaskTimeout(Exception):
    """A task exceeded its per-task wall-clock budget."""


@dataclass
class TaskResult:
    """Outcome of one spec through the farm."""

    spec: TaskSpec
    status: str            # ok | error | timeout | crashed | skipped
    result: Any = None
    error: str = ""
    elapsed_s: float = 0.0
    attempts: int = 1
    cached: bool = False
    worker_pid: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.content_hash,
            "status": self.status,
            "result": self.result,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "attempts": self.attempts,
            "cached": self.cached,
        }


@dataclass
class FarmReport:
    """Aggregate of one farm run, in submission order."""

    results: List[TaskResult] = field(default_factory=list)
    wall_s: float = 0.0
    workers: int = 1
    cache_stats: Optional[Dict[str, int]] = None
    #: True when the run was cut short by Ctrl-C: finished tasks are
    #: real, unfinished ones are reported ``skipped``.
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def n_ok(self) -> int:
        return sum(result.ok for result in self.results)

    @property
    def n_cached(self) -> int:
        return sum(result.cached for result in self.results)

    @property
    def n_executed(self) -> int:
        """Tasks that actually ran a simulation (not served from cache)."""
        return sum(1 for result in self.results if not result.cached)

    @property
    def failures(self) -> List[TaskResult]:
        return [result for result in self.results if not result.ok]

    @property
    def throughput(self) -> float:
        """Completed tasks per wall-clock second."""
        if self.wall_s <= 0:
            return 0.0
        return len(self.results) / self.wall_s

    def identity(self) -> List[Tuple[str, str]]:
        """(spec hash, canonical result) pairs — the bit-equality view.

        Excludes timing/attempt/pid metadata by construction, so two
        reports are interchangeable iff their identities compare equal.
        """
        return [(result.spec.content_hash,
                 canonical_json({"status": result.status,
                                 "result": result.result}))
                for result in self.results]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_tasks": len(self.results),
            "n_ok": self.n_ok,
            "n_cached": self.n_cached,
            "n_executed": self.n_executed,
            "ok": self.ok,
            "wall_s": self.wall_s,
            "workers": self.workers,
            "interrupted": self.interrupted,
            "throughput_per_s": self.throughput,
            "cache": self.cache_stats,
            "results": [result.to_dict() for result in self.results],
        }


# ---------------------------------------------------------------------------
# In-process execution (shared by serial mode and pool workers)
# ---------------------------------------------------------------------------

def _alarm_available() -> bool:
    return hasattr(signal, "SIGALRM") and hasattr(signal, "setitimer")


def _run_with_timeout(spec: TaskSpec,
                      timeout_s: Optional[float]) -> Any:
    """``execute_spec`` under a SIGALRM deadline (POSIX main thread).

    Where SIGALRM is unavailable (non-POSIX), the task runs without
    enforcement — the farm still works, hung tasks just hang.
    """
    import threading
    if not timeout_s or not _alarm_available() \
            or threading.current_thread() is not threading.main_thread():
        # No enforcement possible: non-POSIX, or a caller driving the
        # serial path from a helper thread (signals need main thread).
        return execute_spec(spec)

    def _on_alarm(signum, frame):
        raise FarmTaskTimeout(
            f"task {spec.describe()} exceeded {timeout_s:.1f}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return execute_spec(spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _farm_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level (picklable) worker entry: run one spec, classify."""
    spec = TaskSpec.from_dict(payload["spec"])
    started = time.perf_counter()
    try:
        result = _run_with_timeout(spec, payload.get("timeout_s"))
        return {"status": "ok", "result": result,
                "elapsed_s": time.perf_counter() - started,
                "pid": os.getpid()}
    except FarmTaskTimeout as exc:
        return {"status": "timeout", "error": str(exc),
                "elapsed_s": time.perf_counter() - started,
                "pid": os.getpid()}
    except Exception as exc:  # noqa: BLE001 — classified, not hidden
        return {"status": "error",
                "error": f"{type(exc).__name__}: {exc}\n"
                         f"{traceback.format_exc(limit=6)}",
                "elapsed_s": time.perf_counter() - started,
                "pid": os.getpid()}


ProgressFn = Callable[[TaskResult, int, int], None]


# ---------------------------------------------------------------------------
# The farm
# ---------------------------------------------------------------------------

@dataclass
class FarmExecutor:
    """Run task specs across workers with caching and isolation."""

    workers: int = 1
    use_cache: bool = True
    cache: Optional[ResultCache] = None
    #: generic per-task budget; a spec's own ``timeout_s`` overrides it.
    timeout_s: Optional[float] = None
    max_retries: int = 1
    #: first retry delay after a proven crash; doubles per further
    #: crash of the same task, capped at ``retry_backoff_cap_s``.
    retry_backoff_s: float = 0.1
    retry_backoff_cap_s: float = 5.0
    progress: Optional[ProgressFn] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.cache is None:
            self.cache = ResultCache()

    # -- public API ----------------------------------------------------------
    def run(self, specs: Sequence[TaskSpec]) -> FarmReport:
        specs = list(specs)
        started = time.perf_counter()
        slots: List[Optional[TaskResult]] = [None] * len(specs)
        pending: List[Tuple[int, int]] = []   # (spec index, attempts)

        for index, spec in enumerate(specs):
            hit = self._cache_get(spec)
            if hit is not None:
                slots[index] = TaskResult(
                    spec=spec, status="ok", result=hit["result"],
                    elapsed_s=hit.get("elapsed_s", 0.0), cached=True)
                self._report_progress(slots, slots[index])
            else:
                pending.append((index, 0))

        interrupted = False
        if pending:
            try:
                if self.workers == 1:
                    self._run_serial(specs, slots, pending)
                else:
                    self._run_pool(specs, slots, pending)
            except KeyboardInterrupt:
                # Ctrl-C is an orderly stop, not a crash: pools were
                # already torn down (cancel_futures) on the way up, so
                # fill what never finished with ``skipped`` and hand
                # back the partial report for the caller to render.
                interrupted = True
                for index, spec in enumerate(specs):
                    if slots[index] is None:
                        slots[index] = TaskResult(
                            spec=spec, status="skipped",
                            error="interrupted (Ctrl-C) before this "
                                  "task finished")

        report = FarmReport(
            results=[slot for slot in slots if slot is not None],
            wall_s=time.perf_counter() - started,
            workers=self.workers,
            cache_stats=self.cache.stats.to_dict()
            if self.use_cache else None,
            interrupted=interrupted)
        return report

    # -- cache ---------------------------------------------------------------
    def _cache_get(self, spec: TaskSpec) -> Optional[Dict[str, Any]]:
        if not self.use_cache:
            return None
        return self.cache.get(spec)

    def _cache_put(self, result: TaskResult) -> None:
        # Warm the cache even with reads disabled: --no-cache means
        # "recompute now", not "forget what you computed".
        if result.status == "ok":
            self.cache.put(result.spec, result.result,
                           elapsed_s=result.elapsed_s)

    # -- serial path ---------------------------------------------------------
    def _run_serial(self, specs: Sequence[TaskSpec],
                    slots: List[Optional[TaskResult]],
                    pending: List[Tuple[int, int]]) -> None:
        for index, attempts in pending:
            outcome = _farm_worker({
                "spec": specs[index].to_dict(),
                "timeout_s": self._timeout_for(specs[index])})
            slots[index] = self._to_result(specs[index], outcome,
                                           attempts + 1)
            self._finish(slots, slots[index])

    # -- pool path -----------------------------------------------------------
    def _run_pool(self, specs: Sequence[TaskSpec],
                  slots: List[Optional[TaskResult]],
                  pending: List[Tuple[int, int]]) -> None:
        queue = list(reversed(pending))   # pop() preserves spec order
        suspects: List[Tuple[int, int]] = []
        pool = self._make_pool()
        in_flight: Dict[Any, Tuple[int, int]] = {}
        try:
            while queue or in_flight:
                while queue and len(in_flight) < 2 * self.workers:
                    index, attempts = queue.pop()
                    try:
                        future = pool.submit(_farm_worker, {
                            "spec": specs[index].to_dict(),
                            "timeout_s": self._timeout_for(
                                specs[index])})
                    except BrokenProcessPool:
                        # A worker died between waits; this task never
                        # ran, so requeue it against a fresh pool.
                        queue.append((index, attempts))
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = self._make_pool()
                        continue
                    in_flight[future] = (index, attempts + 1)
                if not in_flight:
                    continue
                done, _ = wait(list(in_flight),
                               return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    index, attempts = in_flight.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        broken = True
                        suspects.append((index, attempts))
                        continue
                    slots[index] = self._to_result(
                        specs[index], outcome, attempts)
                    self._finish(slots, slots[index])
                if broken:
                    # Every sibling future is poisoned with the same
                    # BrokenProcessPool, and only one of them actually
                    # killed the worker — quarantine them all and sort
                    # it out in isolation afterwards.
                    suspects.extend(in_flight.values())
                    in_flight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = self._make_pool()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        self._drain_suspects(specs, slots, suspects)

    def _drain_suspects(self, specs: Sequence[TaskSpec],
                        slots: List[Optional[TaskResult]],
                        suspects: List[Tuple[int, int]]) -> None:
        """Re-run pool-break casualties one at a time, isolated.

        With a single task in a single-worker pool, a break IS that
        task crashing — so innocents poisoned by a sibling's crash are
        cleared on their first isolated run, and only proven crashes
        draw down the ``max_retries`` budget.
        """
        for index, attempts in sorted(suspects):
            proven_crashes = 0
            while True:
                attempts += 1
                pool = ProcessPoolExecutor(max_workers=1)
                try:
                    outcome = pool.submit(_farm_worker, {
                        "spec": specs[index].to_dict(),
                        "timeout_s": self._timeout_for(
                            specs[index])}).result()
                except BrokenProcessPool:
                    proven_crashes += 1
                    if proven_crashes > self.max_retries:
                        slots[index] = TaskResult(
                            spec=specs[index], status="crashed",
                            error=f"worker died {proven_crashes}x "
                                  f"running this task in isolation "
                                  f"(retry budget {self.max_retries})",
                            attempts=attempts)
                        self._finish(slots, slots[index])
                        break
                    # The crash causes the retry exists for (co-tenant
                    # OOM pressure, a box being drained) need time to
                    # clear — back off exponentially, with seeded
                    # jitter so a fleet of farms retrying the same
                    # sweep doesn't hammer the box in lockstep.
                    time.sleep(self._retry_delay_s(specs[index],
                                                   proven_crashes))
                    continue
                finally:
                    pool.shutdown(wait=False, cancel_futures=True)
                slots[index] = self._to_result(specs[index], outcome,
                                               attempts)
                self._finish(slots, slots[index])
                break

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _timeout_for(self, spec: TaskSpec) -> Optional[float]:
        """The spec's own budget when declared, else the generic one."""
        return spec.timeout_s if spec.timeout_s is not None \
            else self.timeout_s

    def _retry_delay_s(self, spec: TaskSpec, crash_count: int) -> float:
        """Exponential backoff with deterministic per-task jitter.

        Seeded from the spec hash and the crash ordinal, so the delay
        sequence is reproducible (testable) while distinct tasks and
        distinct attempts still spread out in time.
        """
        rng = random.Random(
            f"farm-backoff:{spec.content_hash}:{crash_count}")
        base = min(self.retry_backoff_s * (2.0 ** (crash_count - 1)),
                   self.retry_backoff_cap_s)
        return base * (0.5 + rng.random())

    # -- shared plumbing -----------------------------------------------------
    def _to_result(self, spec: TaskSpec, outcome: Dict[str, Any],
                   attempts: int) -> TaskResult:
        return TaskResult(
            spec=spec, status=outcome["status"],
            result=outcome.get("result"),
            error=outcome.get("error", ""),
            elapsed_s=outcome.get("elapsed_s", 0.0),
            attempts=attempts,
            worker_pid=outcome.get("pid", 0))

    def _finish(self, slots: List[Optional[TaskResult]],
                result: TaskResult) -> None:
        self._cache_put(result)
        self._report_progress(slots, result)

    def _report_progress(self, slots: List[Optional[TaskResult]],
                         result: TaskResult) -> None:
        if self.progress is not None:
            done = sum(1 for slot in slots if slot is not None)
            self.progress(result, done, len(slots))

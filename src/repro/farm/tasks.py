"""Builtin task kinds: every runnable unit of the repo, spec-wrapped.

Each runner is a pure function of its params dict — all imports are
lazy (workers should not pay for subsystems the sweep never touches)
and every stochastic input is an explicit seed in the spec.  Returned
values are plain JSON so results cache, diff, and aggregate without
pickling.

Registered kinds:

====================  ====================================================
``validation-case``   one fuzz case through the oracle battery (PR 4)
``resilience-campaign``  a seeded fault campaign through the recovery
                      loop (PR 3)
``monitoring-campaign``  sampled Figure-7 faults, diagnosed and scored
``cluster-sweep``     one scheduler run over a seeded trace (PR 1),
                      optionally with the peak-set contention replay
``seer-forecast``     a Seer training forecast for a layout
``figure-bench``      a named cheap figure regeneration (pue, goodput,
                      overhead, taxonomy)
``hierarchy-run``     a symmetry-folded hierarchical simulation at a
                      named scale preset or explicit dimensions (PR 6)
``serving-run``       one diurnal inference-serving scenario co-scheduled
                      with training on the twin (PR 9)
``farm-selftest``     controllable ok/fail/hang/crash task for testing
                      the executor's isolation paths
====================  ====================================================
"""

from __future__ import annotations

from typing import Any, Dict

from .spec import register_task

__all__ = ["SCALES"]

#: topology scale names accepted wherever a spec says ``"scale"``.
SCALES = ("tiny", "small", "cluster")


def _params_for_scale(scale: str):
    from ..topology import AstralParams
    try:
        factory = {
            "tiny": AstralParams.tiny,
            "small": AstralParams.small,
            "cluster": AstralParams.cluster,
        }[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {SCALES}") from None
    return factory()


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

# version 2: the oracle profile cycle grew from 5 to 6 entries
# ("hierarchical" joined), silently remapping every case index — old
# cached results describe different scenarios and must not be reused.
# version 3: every battery gained the solver-backends differential and
# the params carry the resolved max-min backend (``solver``), so
# backend-less version-2 hashes describe a different check set.
# version 4: the oracle profile cycle grew from 6 to 7 entries
# ("faulted-hierarchical" joined), remapping every case index again —
# see the version-2 note.
# version 5: the oracle profile cycle grew from 7 to 8 entries
# ("serving" joined), remapping every case index again — see the
# version-2 note.
@register_task("validation-case", version=5,
               description="one repro.validation fuzz case")
def run_validation_case(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params: ``seed``, ``index``, optional ``fast`` (default True),
    optional ``solver`` (resolved max-min backend name)."""
    from ..validation.runner import run_case
    report = run_case(int(params["seed"]), int(params["index"]),
                      fast=bool(params.get("fast", True)),
                      solver=params.get("solver"))
    return report.to_dict()


# ---------------------------------------------------------------------------
# resilience
# ---------------------------------------------------------------------------

# version 2: params may carry the resolved max-min solver backend
# (``solver``), which changes nothing about results (backends are
# bit-identical) but versions the hash with the code that honors it.
@register_task("resilience-campaign", version=2,
               description="seeded failure-injection campaign")
def run_resilience_campaign(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params mirror the ``repro resilience`` CLI.

    ``seed``, ``scale``, ``jobs``, ``hosts_per_job``, ``iterations``,
    ``faults``, ``fault_at_s``, ``checkpoint_interval_s``,
    ``compute_s``, ``collective_bits``, optional ``solver``.
    """
    from ..network.solver import use_backend
    from ..resilience.campaign import (ResilienceCampaign,
                                       default_tor_faults)
    scale = params.get("scale", "small")
    topo_params = _params_for_scale(scale)
    seed = int(params.get("seed", 0))
    faults = default_tor_faults(
        topo_params, seed=seed,
        n_faults=int(params.get("faults", 1)),
        first_at_s=float(params.get("fault_at_s", 1800.0)))
    campaign = ResilienceCampaign(
        params=topo_params, faults=faults,
        n_jobs=int(params.get("jobs", 1)),
        hosts_per_job=int(params.get("hosts_per_job", 4)),
        n_iterations=int(params.get("iterations", 120)),
        compute_s=float(params.get("compute_s", 20.0)),
        collective_bits=float(params.get("collective_bits", 2e11)),
        checkpoint_interval_s=float(
            params.get("checkpoint_interval_s", 3600.0)),
        seed=seed)
    with use_backend(params.get("solver")):
        return campaign.run().to_dict()


# ---------------------------------------------------------------------------
# monitoring
# ---------------------------------------------------------------------------

@register_task("monitoring-campaign", version=1,
               description="Figure-7 fault campaign with localization "
                           "scoring")
def run_monitoring_campaign(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params: ``seed``, ``n_faults``, ``job_hosts``, ``iterations``."""
    from ..monitoring.campaign import FaultCampaign
    campaign = FaultCampaign(
        job_hosts=int(params.get("job_hosts", 6)),
        iterations=int(params.get("iterations", 5)),
        seed=int(params.get("seed", 0)))
    result = campaign.run(int(params.get("n_faults", 5)))
    records = [
        {
            "cause": record.fault.cause.value,
            "manifestation": record.fault.manifestation.value,
            "target": record.fault.target,
            "detected": record.manifestation_detected,
            "localized": record.localized_correctly,
            "root_cause_device": record.diagnosis.root_cause_device,
            "inferred_cause": record.diagnosis.inferred_cause,
        }
        for record in result.records
    ]
    return {
        "n_faults": result.n_faults,
        "detection_rate": result.detection_rate,
        "localization_accuracy": result.localization_accuracy,
        "records": records,
    }


# ---------------------------------------------------------------------------
# cluster
# ---------------------------------------------------------------------------

# version 2: params may carry the resolved max-min solver backend
# (``solver``); see the validation-case v3 note.
@register_task("cluster-sweep", version=2,
               description="one scheduler run over a seeded job trace")
def run_cluster_sweep(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params mirror ``repro cluster``: ``seed``, ``scale``, ``jobs``,
    ``policy``, ``failure_scale``, ``tidal``, ``contention``, optional
    ``solver``."""
    from ..core import AstralInfrastructure
    from ..network.solver import use_backend
    scale = params.get("scale", "small")
    seed = int(params.get("seed", 0))
    infra = AstralInfrastructure(params=_params_for_scale(scale),
                                 seed=seed)
    with use_backend(params.get("solver")):
        report = infra.run_cluster(
            jobs=int(params.get("jobs", 20)),
            policy=params.get("policy", "topology"),
            seed=seed,
            failure_scale=float(params.get("failure_scale", 1.0)),
            tidal_cap=bool(params.get("tidal", True)))
        result = report.to_dict()
        if params.get("contention", False):
            outcomes = infra.cluster_contention(report)
            result["contention"] = {
                name: {
                    "efficiency": outcomes[name].efficiency,
                    "mean_iteration_s": outcomes[name].mean_iteration_s,
                }
                for name in sorted(outcomes)
            }
    return result


# ---------------------------------------------------------------------------
# seer
# ---------------------------------------------------------------------------

@register_task("seer-forecast", version=1,
               description="Seer training forecast for one layout")
def run_seer_forecast(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params: ``model`` (registry name), ``gpu``, ``tp``, ``pp``,
    ``dp``, ``ep``, ``microbatches``, ``corrected``."""
    from .. import seer as seer_mod
    from ..seer import NetworkSuite, ParallelismConfig, Seer
    model = getattr(seer_mod, params.get("model", "LLAMA3_70B"))
    parallel = ParallelismConfig(
        tp=int(params.get("tp", 8)), pp=int(params.get("pp", 4)),
        dp=int(params.get("dp", 4)), ep=int(params.get("ep", 1)),
        microbatches=int(params.get("microbatches", 8)))
    corrected = bool(params.get("corrected", True))
    seer = Seer(gpu=params.get("gpu", "H800"), network=NetworkSuite(),
                corrected=corrected)
    forecast = seer.forecast_training(model, parallel)
    result = {
        "model": model.name,
        "world_size": parallel.world_size,
        "iteration_time_s": forecast.iteration_time_s,
        "tokens_per_s": forecast.tokens_per_s,
        "throughput_per_gpu": forecast.throughput_per_gpu,
        "exposed_comm_fraction": forecast.exposed_comm_fraction(),
    }
    if corrected:
        result["accuracy_deviation"] = seer.accuracy_deviation(
            model, parallel)
    return result


# ---------------------------------------------------------------------------
# figure benches
# ---------------------------------------------------------------------------

def _figure_pue(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..power import astral_vs_traditional, pue_evolution
    return {
        "series": [{"label": report.label, "pue": report.pue}
                   for report in pue_evolution()],
        "improvement_frac":
            astral_vs_traditional()["improvement_frac"],
    }


def _figure_goodput(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..core import training_goodput
    rows = []
    for n_gpus in params.get("gpus", [1024, 8192, 65536]):
        manual = training_goodput(int(n_gpus), localization="manual")
        auto = training_goodput(int(n_gpus), localization="automated")
        rows.append({
            "gpus": int(n_gpus),
            "mtbf_hours": auto.mtbf_hours,
            "manual": manual.goodput_fraction,
            "astral": auto.goodput_fraction,
        })
    return {"rows": rows}


def _figure_overhead(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..monitoring import MonitoringOverhead
    return dict(MonitoringOverhead().report(
        int(params.get("gpus", 100_000))))


def _figure_taxonomy(params: Dict[str, Any]) -> Dict[str, Any]:
    from collections import Counter

    from ..monitoring import sample_faults
    count = int(params.get("count", 1000))
    faults = sample_faults(count, seed=int(params.get("seed", 0)))
    return {
        "count": count,
        "manifestations": dict(sorted(Counter(
            f.manifestation.value for f in faults).items())),
        "causes": dict(sorted(Counter(
            f.cause.value for f in faults).items())),
    }


_FIGURES = {
    "pue": _figure_pue,
    "goodput": _figure_goodput,
    "overhead": _figure_overhead,
    "taxonomy": _figure_taxonomy,
}


@register_task("figure-bench", version=1,
               description="regenerate one cheap paper figure")
def run_figure_bench(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params: ``figure`` in {pue, goodput, overhead, taxonomy} plus
    that figure's options."""
    figure = params.get("figure")
    if figure not in _FIGURES:
        raise ValueError(
            f"unknown figure {figure!r}; choose from "
            f"{', '.join(sorted(_FIGURES))}")
    result = _FIGURES[figure](params)
    result["figure"] = figure
    return result


# ---------------------------------------------------------------------------
# hierarchy
# ---------------------------------------------------------------------------

# version 2: params may carry the resolved max-min solver backend
# (``solver``); see the validation-case v3 note.
# version 3: faults generalised — ``fault_document`` (correlated fault
# domains + explicit specs, the ``repro scale --faults FILE`` JSON
# format) and the bounded-refinement mode (``refine``) joined the
# params, and the report grew the ``fold.refine`` section; version-2
# hashes describe runs without either input.
@register_task("hierarchy-run", version=3,
               description="symmetry-folded hierarchical simulation")
def run_hierarchy(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params mirror ``repro scale``.

    ``scale`` (one of 4k/64k/512k) or ``dims`` (explicit AstralParams
    kwargs), ``hosts_per_job``, ``iterations``, ``compute_s``,
    ``comm_bits``, ``collective``, ``seed``, ``tail_shapes``,
    ``faults`` (count of deterministic ToR fail-slows, armed on the
    first jobs in placement order), ``fault_document`` (a
    ``{"domains": [...], "faults": [...]}`` object — see
    ``repro.resilience.faults_from_document``), ``refine``
    (``bounded``/``pod``), ``power_caps`` (pod index -> compute
    factor; keys are strings because specs are JSON), optional
    ``solver`` (resolved max-min backend name).
    """
    from ..hierarchy import HierarchicalRun, preset_params, uniform_jobs
    from ..hierarchy.virtual import place_jobs
    from ..monitoring.faults import (FaultSpec, Manifestation,
                                     RootCause)
    from ..resilience import faults_from_document
    from ..topology import AstralParams

    if params.get("dims"):
        topo = AstralParams(**{key: int(value)
                               for key, value in params["dims"].items()})
    else:
        topo = preset_params(params.get("scale", "4k"))
    seed = int(params.get("seed", 0))
    jobs = uniform_jobs(
        topo,
        int(params.get("hosts_per_job", topo.hosts_per_block)),
        iterations=int(params.get("iterations", 4)),
        compute_time_s=float(params.get("compute_s", 0.5)),
        comm_size_bits=float(params.get("comm_bits", 8e9)),
        collective=params.get("collective", "allreduce"),
        seed=seed,
        tail_shapes=int(params.get("tail_shapes", 1)))
    placed = place_jobs(topo, jobs)
    faults = {}
    for p in placed[:int(params.get("faults", 0))]:
        pod, block, _ = p.coords[0]
        faults[p.name] = FaultSpec(
            cause=RootCause.SWITCH_BUG,
            manifestation=Manifestation.FAIL_SLOW,
            target=f"p{pod}.b{block}.r0.g0.tor")
    if params.get("fault_document"):
        faults.update(faults_from_document(topo, placed,
                                           params["fault_document"]))
    caps = {int(pod): float(factor)
            for pod, factor in (params.get("power_caps") or {}).items()}
    from ..network.solver import use_backend
    run = HierarchicalRun(topo, jobs, faults=faults or None,
                          pod_power_caps=caps or None,
                          refine=params.get("refine", "bounded"))
    with use_backend(params.get("solver")):
        run.run()
    return run.report.to_dict()


# ---------------------------------------------------------------------------
# serving
# ---------------------------------------------------------------------------

@register_task("serving-run", version=1,
               description="diurnal serving scenario co-scheduled with "
                           "training")
def run_serving(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params: ``scenario`` (a ``ServingScenario.to_params()`` dict)
    plus optional ``solver`` (resolved max-min backend name).  The
    backend is folded into the content hash so cached results never
    cross backends — even though the backends are bit-identical, the
    differential oracles depend on which one actually ran.
    """
    from ..network.solver import use_backend
    from ..serving import ServingRun, ServingScenario
    scenario = ServingScenario.from_params(dict(params["scenario"]))
    with use_backend(params.get("solver")):
        return ServingRun(scenario,
                          solver=params.get("solver")).run().to_dict()


# ---------------------------------------------------------------------------
# digital-twin replay
# ---------------------------------------------------------------------------

@register_task("twin-replay", version=1,
               description="rebuild a twin session from its config + "
                           "action log; returns the state digest")
def run_twin_replay(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params: ``config`` (a ``TwinConfig.to_params()`` dict) and
    ``action_log`` (the session's append-only boundary log).  The
    digest must equal the live session's — this running under
    ``execute_spec``'s seeding choke is the twin's replay contract.
    """
    from ..twin.config import TwinConfig
    from ..twin.session import replay
    session = replay(TwinConfig.from_params(dict(params["config"])),
                     params["action_log"])
    return {"digest": session.digest(),
            "t_s": session.t_s,
            "snapshot": session.snapshot()}


# ---------------------------------------------------------------------------
# executor self-test
# ---------------------------------------------------------------------------

@register_task("farm-selftest", version=1,
               description="ok/fail/hang/crash probe for executor tests")
def run_selftest(params: Dict[str, Any]) -> Dict[str, Any]:
    """Controllable behaviours for the executor's failure-path tests.

    ``mode``: ``ok`` echoes ``value``; ``fail`` raises; ``hang``
    sleeps ``sleep_s`` (to trip the per-task timeout); ``crash``
    hard-kills the hosting process (``os._exit``) to exercise pool
    recovery; ``flaky`` crashes on the first ``crashes`` attempts of a
    process-lineage marker file, then succeeds — exercising retry.
    """
    import os
    import time

    mode = params.get("mode", "ok")
    if mode == "ok":
        return {"value": params.get("value", 0),
                "squared": params.get("value", 0) ** 2}
    if mode == "fail":
        raise RuntimeError(f"selftest asked to fail "
                           f"(value={params.get('value')})")
    if mode == "hang":
        time.sleep(float(params.get("sleep_s", 60.0)))
        return {"value": "woke"}
    if mode == "crash":
        os._exit(13)
    if mode == "flaky":
        marker = params["marker"]
        crashes = int(params.get("crashes", 1))
        attempts = 0
        if os.path.exists(marker):
            with open(marker, "r", encoding="utf-8") as handle:
                attempts = int(handle.read().strip() or 0)
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(str(attempts + 1))
        if attempts < crashes:
            os._exit(13)
        return {"value": params.get("value", 0),
                "attempts_seen": attempts}
    raise ValueError(f"unknown selftest mode {mode!r}")

"""repro.farm — parallel experiment execution with result caching.

The farm turns every runnable unit in the repo — a validation fuzz
case, a resilience campaign, a monitoring campaign, a cluster-sweep
point, a Seer forecast, a figure benchmark — into a content-addressed
:class:`TaskSpec`, and executes batches of them on a process pool with
per-task crash isolation, timeouts, bounded retry, and an on-disk
result cache keyed by spec hash + code fingerprint.  Parallel
execution is bit-identical to serial; warm reruns of unchanged
scenarios skip simulation entirely.

Quick use::

    from repro.farm import FarmExecutor, grid_specs

    specs = grid_specs("cluster-sweep",
                       base={"scale": "small", "jobs": 20},
                       grid={"policy": ["fifo", "topology"]},
                       seeds=[0, 1, 2])
    report = FarmExecutor(workers=4).run(specs)
    assert report.ok

or from the shell: ``repro farm sweep.json --workers 4`` and
``repro validate --workers 4``.
"""

from .cache import (CacheStats, ResultCache, code_fingerprint,
                    default_cache_dir)
from .executor import (FarmExecutor, FarmReport, FarmTaskTimeout,
                       TaskResult)
from .spec import (TaskSpec, UnknownTaskKind, canonical_json,
                   dedupe_specs, execute_spec, register_task,
                   specs_from_document, task_kind, task_kinds)
from .sweep import SweepResult, grid_specs, run_sweep, seed_specs

__all__ = [
    "CacheStats",
    "FarmExecutor",
    "FarmReport",
    "FarmTaskTimeout",
    "ResultCache",
    "SweepResult",
    "TaskResult",
    "TaskSpec",
    "UnknownTaskKind",
    "canonical_json",
    "code_fingerprint",
    "dedupe_specs",
    "default_cache_dir",
    "execute_spec",
    "grid_specs",
    "register_task",
    "run_sweep",
    "seed_specs",
    "specs_from_document",
    "task_kind",
    "task_kinds",
]

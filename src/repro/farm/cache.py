"""Content-addressed on-disk result cache for farm tasks.

A cached entry is keyed by two hashes:

* the spec's :meth:`~repro.farm.spec.TaskSpec.content_hash` — any
  change to a param, the task kind, or a runner's registered version
  produces a different key (a *miss*, never a stale hit);
* the **code fingerprint** — a sha256 over the contents of every
  ``.py`` file in the installed ``repro`` package.  Editing any
  simulator source invalidates the whole cache generation, because a
  result is only reusable if the code that produced it is bit-for-bit
  the same.

Layout: ``<root>/<fingerprint[:16]>/<kind>/<spec_hash>.json``; each
entry stores the spec alongside the result so a cache directory is a
self-describing archive of completed experiments.  Entries are written
atomically (tmp + rename) so a crashed writer can never leave a
half-entry that later reads as a corrupt hit.

Invalidation is explicit: ``--no-cache`` bypasses reads (but still
writes, warming the cache for the next run), ``ResultCache.clear()``
removes the current generation, and stale generations are simply
unreferenced directories a janitor may delete at leisure.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from .spec import TaskSpec, canonical_json

__all__ = ["CacheStats", "ResultCache", "code_fingerprint",
           "default_cache_dir"]

_FINGERPRINT_CACHE: Dict[str, str] = {}


def default_cache_dir() -> Path:
    """``$REPRO_FARM_CACHE`` or ``~/.cache/repro-farm``."""
    override = os.environ.get("REPRO_FARM_CACHE")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro-farm").expanduser()


def code_fingerprint() -> str:
    """sha256 over every ``repro`` source file's path and contents.

    Computed once per process (the package cannot change under a
    running interpreter in any way the cache could safely track).
    """
    import repro
    package_dir = Path(repro.__file__).resolve().parent
    key = str(package_dir)
    cached = _FINGERPRINT_CACHE.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _FINGERPRINT_CACHE[key] = fingerprint
    return fingerprint


@dataclass
class CacheStats:
    """Hit/miss/store counters for one executor run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}


@dataclass
class ResultCache:
    """Spec-hash + code-fingerprint addressed store of task results."""

    root: Path = field(default_factory=default_cache_dir)
    #: override for tests; ``None`` means the live code fingerprint.
    fingerprint: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root).expanduser()

    # -- keys ----------------------------------------------------------------
    def _generation_dir(self) -> Path:
        fingerprint = self.fingerprint or code_fingerprint()
        return self.root / fingerprint[:16]

    def entry_path(self, spec: TaskSpec) -> Path:
        return self._generation_dir() / spec.kind \
            / f"{spec.content_hash}.json"

    # -- read/write ----------------------------------------------------------
    def get(self, spec: TaskSpec) -> Optional[Dict[str, Any]]:
        """The stored entry for ``spec``, or ``None`` (a miss)."""
        path = self.entry_path(spec)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if entry.get("spec_hash") != spec.content_hash:
            # A hash collision inside one filename is impossible; this
            # guards against a hand-edited or truncated entry.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def put(self, spec: TaskSpec, result: Any,
            elapsed_s: float = 0.0) -> Path:
        """Atomically store one successful result."""
        path = self.entry_path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "spec_hash": spec.content_hash,
            "spec": spec.to_dict(),
            "result": result,
            "elapsed_s": elapsed_s,
        }
        payload = canonical_json(entry)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=".tmp-", suffix=".json",
            delete=False, encoding="utf-8")
        try:
            with handle:
                handle.write(payload)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    # -- maintenance ---------------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """Every entry file in the current code generation."""
        generation = self._generation_dir()
        if generation.is_dir():
            yield from sorted(generation.rglob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> int:
        """Delete the current generation; returns entries removed."""
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

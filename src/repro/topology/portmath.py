"""ASIC port and bandwidth accounting (Figure 3's annotations).

The published wiring hinges on exact port math on 51.2 Tbps switching
ASICs: a ToR spends 128 x 200G on hosts and 64 x 400G on Aggs; an Agg
spends 64 x 400G each way; a Core terminates 128 x 400G.  This module
computes the per-role port/bandwidth budget for any
:class:`~repro.topology.astral.AstralParams` and checks it against an
ASIC envelope — the feasibility check a deployment plan must pass
before anyone orders optics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .astral import AstralParams

__all__ = ["AsicEnvelope", "PortBudget", "port_budgets",
           "validate_port_math"]


@dataclass(frozen=True)
class AsicEnvelope:
    """Capability envelope of the switching silicon."""

    capacity_tbps: float = 51.2
    max_logical_ports: int = 512   # SerDes/breakout bound

    def admits(self, budget: "PortBudget") -> bool:
        return (budget.total_gbps <= self.capacity_tbps * 1000 + 1e-6
                and budget.total_ports <= self.max_logical_ports)


@dataclass(frozen=True)
class PortBudget:
    """One switch role's port usage."""

    role: str
    down_ports: int
    down_gbps_per_port: float
    up_ports: int
    up_gbps_per_port: float

    @property
    def down_gbps(self) -> float:
        return self.down_ports * self.down_gbps_per_port

    @property
    def up_gbps(self) -> float:
        return self.up_ports * self.up_gbps_per_port

    @property
    def total_gbps(self) -> float:
        return self.down_gbps + self.up_gbps

    @property
    def total_ports(self) -> int:
        return self.down_ports + self.up_ports


def port_budgets(params: AstralParams | None = None
                 ) -> Dict[str, PortBudget]:
    """Per-role port budgets implied by the wiring rules."""
    params = params or AstralParams()
    tor = PortBudget(
        role="tor",
        down_ports=params.hosts_per_block,
        down_gbps_per_port=params.nic_port_gbps,
        up_ports=params.aggs_per_group,
        up_gbps_per_port=params.tor_agg_gbps,
    )
    agg_uplink_gbps = (params.blocks_per_pod * params.tor_agg_gbps
                       / params.cores_per_group
                       / params.tier3_oversubscription)
    agg = PortBudget(
        role="agg",
        down_ports=params.blocks_per_pod,
        down_gbps_per_port=params.tor_agg_gbps,
        up_ports=params.cores_per_group,
        up_gbps_per_port=agg_uplink_gbps,
    )
    # A core group serves the same-rank Aggs of every rail, group, pod.
    aggs_per_core = (params.pods * params.rails * params.tor_groups)
    core = PortBudget(
        role="core",
        down_ports=aggs_per_core,
        down_gbps_per_port=agg_uplink_gbps,
        up_ports=0,
        up_gbps_per_port=0.0,
    )
    return {"tor": tor, "agg": agg, "core": core}


def validate_port_math(params: AstralParams | None = None,
                       envelope: AsicEnvelope | None = None
                       ) -> List[str]:
    """All violations of the ASIC envelope (empty = deployable)."""
    params = params or AstralParams()
    envelope = envelope or AsicEnvelope()
    problems: List[str] = []
    for role, budget in port_budgets(params).items():
        if budget.total_gbps > envelope.capacity_tbps * 1000 + 1e-6:
            problems.append(
                f"{role}: {budget.total_gbps / 1000:.1f} Tbps exceeds "
                f"the {envelope.capacity_tbps} Tbps ASIC")
        if budget.total_ports > envelope.max_logical_ports:
            problems.append(
                f"{role}: {budget.total_ports} logical ports exceed "
                f"{envelope.max_logical_ports}")
    return problems

"""Builder for the Astral network architecture (paper §2.1, Figure 3).

Design principles implemented here:

* **P1** — same-rail ToR switches are aggregated at tier 2: every Agg
  switch serves exactly one rail, so a pod keeps up to
  ``blocks_per_pod * hosts_per_block`` GPUs reachable over same-rail
  (ToR–Agg–ToR) paths without touching Core switches.
* **P2** — identical aggregated bandwidth at every tier (the builder can
  deliberately violate this via ``tier3_oversubscription`` to reproduce
  the paper's Figure 2 oversubscription study).
* **P3** — the two ports of each dual-port NIC land on two *different*
  same-rail ToR switches (dual-ToR), so one optical module or ToR failure
  never strands a GPU.

At paper scale (8 pods x 64 blocks x 128 hosts x 8 GPUs = 512K GPUs) the
graph has ~78K devices; tests use scaled-down parameter sets, which the
construction supports uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .elements import (
    DeviceKind,
    Gpu,
    Host,
    Nic,
    PortRef,
    Switch,
    Topology,
    TopologyError,
)

__all__ = ["AstralParams", "build_astral"]


@dataclass(frozen=True)
class AstralParams:
    """Dimensions of an Astral fabric.

    Defaults are the paper's published values (Figure 3).  ``small()``
    and ``tiny()`` provide laptop-scale instances with the same shape.
    """

    pods: int = 8
    blocks_per_pod: int = 64
    hosts_per_block: int = 128
    gpus_per_host: int = 8          # = number of rails
    nic_ports: int = 2              # dual-port NIC => dual-ToR (P3)
    aggs_per_group: int = 64        # ToR uplink fan-out at tier 2
    cores_per_group: int = 64       # Agg uplink fan-out at tier 3
    nic_port_gbps: float = 200.0
    tor_agg_gbps: float = 400.0
    agg_core_gbps: float = 400.0
    tier3_oversubscription: float = 1.0
    #: max-min solver backend for fabrics built from these params
    #: ("python" / "vector" / "auto"); ``None`` follows the process
    #: default (:func:`repro.network.solver.default_backend`).  Not a
    #: physical dimension, but carried here because every subsystem
    #: that builds a :class:`~repro.network.fabric.Fabric` starts from
    #: an ``AstralParams`` — and the backends are bit-identical, so
    #: this only selects wall-clock, never results.
    solver: "str | None" = None

    @classmethod
    def small(cls) -> "AstralParams":
        """~2 pods of 2 blocks x 8 hosts x 4 rails — integration scale."""
        return cls(
            pods=2,
            blocks_per_pod=2,
            hosts_per_block=8,
            gpus_per_host=4,
            aggs_per_group=4,
            cores_per_group=4,
        )

    @classmethod
    def cluster(cls) -> "AstralParams":
        """256 hosts across 4 pods — the scheduler-scenario scale."""
        return cls(
            pods=4,
            blocks_per_pod=4,
            hosts_per_block=16,
            gpus_per_host=4,
            aggs_per_group=4,
            cores_per_group=4,
        )

    @classmethod
    def tiny(cls) -> "AstralParams":
        """Minimal structurally-complete instance for unit tests."""
        return cls(
            pods=2,
            blocks_per_pod=2,
            hosts_per_block=2,
            gpus_per_host=2,
            aggs_per_group=2,
            cores_per_group=2,
        )

    def with_oversubscription(self, ratio: float) -> "AstralParams":
        if ratio < 1.0:
            raise ValueError(f"oversubscription ratio must be >= 1: {ratio}")
        return replace(self, tier3_oversubscription=ratio)

    # -- derived sizes ----------------------------------------------------
    @property
    def rails(self) -> int:
        return self.gpus_per_host

    @property
    def tor_groups(self) -> int:
        """Agg groups per rail == ToRs per rail per block == NIC ports."""
        return self.nic_ports

    @property
    def gpus_per_block(self) -> int:
        return self.hosts_per_block * self.gpus_per_host

    @property
    def gpus_per_pod(self) -> int:
        return self.blocks_per_pod * self.gpus_per_block

    @property
    def total_gpus(self) -> int:
        return self.pods * self.gpus_per_pod

    @property
    def rail_size(self) -> int:
        """GPUs reachable on one rail within a pod (8K at paper scale)."""
        return self.blocks_per_pod * self.hosts_per_block

    @property
    def core_groups(self) -> int:
        """One core group per Agg rank (identity mapping, §2.1 cluster)."""
        return self.aggs_per_group

    def validate(self) -> None:
        if self.pods < 1 or self.blocks_per_pod < 1:
            raise TopologyError("need at least one pod and block")
        if self.nic_ports < 1:
            raise TopologyError("NICs need at least one port")
        if self.tier3_oversubscription < 1.0:
            raise TopologyError("tier-3 oversubscription must be >= 1")


def _host_name(pod: int, block: int, host: int) -> str:
    return f"p{pod}.b{block}.h{host}"


def _tor_name(pod: int, block: int, rail: int, group: int) -> str:
    return f"p{pod}.b{block}.r{rail}.g{group}.tor"


def _agg_name(pod: int, rail: int, group: int, rank: int) -> str:
    return f"p{pod}.r{rail}.g{group}.a{rank}.agg"


def _core_name(core_group: int, index: int) -> str:
    return f"cg{core_group}.c{index}.core"


def build_astral(params: AstralParams | None = None) -> Topology:
    """Construct an Astral fabric.

    Wiring, mirroring Figure 3:

    * host NIC (rail ``r``) port ``g`` -> ToR(pod, block, r, g);
    * ToR(pod, block, r, g) uplink ``a`` -> Agg(pod, r, g, a) — one link to
      every Agg of its group, for every block in the pod (P1);
    * Agg(pod, r, g, rank) uplink ``c`` -> Core(core_group=rank, c), so all
      same-rank Aggs across rails, groups, and pods meet at one core group.

    Tier-3 oversubscription is modelled by scaling each Agg–Core link
    capacity down by the requested ratio (same aggregate effect as
    removing uplinks, without changing path diversity).
    """
    params = params or AstralParams()
    params.validate()
    topo = Topology(name="astral")

    # Hosts with GPUs and rail NICs.
    for pod in range(params.pods):
        for block in range(params.blocks_per_pod):
            for index in range(params.hosts_per_block):
                name = _host_name(pod, block, index)
                host = Host(
                    name=name, kind=DeviceKind.HOST, pod=pod, block=block,
                    rank=index,
                )
                for rail in range(params.rails):
                    host.gpus.append(
                        Gpu(name=f"{name}.gpu{rail}", host=name, rail=rail)
                    )
                    host.nics.append(
                        Nic(
                            name=f"{name}.nic{rail}",
                            host=name,
                            rail=rail,
                            ports=params.nic_ports,
                            port_gbps=params.nic_port_gbps,
                        )
                    )
                topo.add_device(host)

    # ToR switches (tier 1): one per (pod, block, rail, group).
    for pod in range(params.pods):
        for block in range(params.blocks_per_pod):
            for rail in range(params.rails):
                for group in range(params.tor_groups):
                    topo.add_device(Switch(
                        name=_tor_name(pod, block, rail, group),
                        kind=DeviceKind.TOR,
                        pod=pod, block=block, rail=rail, group=group,
                    ))

    # Agg switches (tier 2): one per (pod, rail, group, rank) — P1.
    for pod in range(params.pods):
        for rail in range(params.rails):
            for group in range(params.tor_groups):
                for rank in range(params.aggs_per_group):
                    topo.add_device(Switch(
                        name=_agg_name(pod, rail, group, rank),
                        kind=DeviceKind.AGG,
                        pod=pod, rail=rail, group=group, rank=rank,
                    ))

    # Core switches (tier 3): one group per Agg rank.
    for core_group in range(params.core_groups):
        for index in range(params.cores_per_group):
            topo.add_device(Switch(
                name=_core_name(core_group, index),
                kind=DeviceKind.CORE,
                group=core_group, rank=index,
            ))

    # Host -> ToR links (P3: port g of rail-r NIC to group-g ToR).
    for pod in range(params.pods):
        for block in range(params.blocks_per_pod):
            for index in range(params.hosts_per_block):
                host = _host_name(pod, block, index)
                for rail in range(params.rails):
                    for group in range(params.tor_groups):
                        topo.add_link(
                            PortRef(host, rail * params.nic_ports + group),
                            PortRef(_tor_name(pod, block, rail, group),
                                    index),
                            params.nic_port_gbps,
                        )

    # ToR -> Agg links (every ToR reaches every Agg of its group).
    for pod in range(params.pods):
        for block in range(params.blocks_per_pod):
            for rail in range(params.rails):
                for group in range(params.tor_groups):
                    tor = _tor_name(pod, block, rail, group)
                    for rank in range(params.aggs_per_group):
                        topo.add_link(
                            PortRef(tor, params.hosts_per_block + rank),
                            PortRef(_agg_name(pod, rail, group, rank),
                                    block),
                            params.tor_agg_gbps,
                        )

    # Agg -> Core links (same-rank Aggs share a core group).  The uplink
    # capacity is scaled so total Agg up-capacity equals its down-capacity
    # divided by the requested tier-3 oversubscription; at paper scale
    # (64 blocks, 64 cores/group, 400G everywhere) this is exactly
    # ``agg_core_gbps``.
    uplink_gbps = (
        params.blocks_per_pod * params.tor_agg_gbps
        / params.cores_per_group / params.tier3_oversubscription
    )
    for pod in range(params.pods):
        for rail in range(params.rails):
            for group in range(params.tor_groups):
                for rank in range(params.aggs_per_group):
                    agg = _agg_name(pod, rail, group, rank)
                    agg_index = (
                        (pod * params.rails + rail) * params.tor_groups
                        + group
                    )
                    for core in range(params.cores_per_group):
                        topo.add_link(
                            PortRef(agg, params.blocks_per_pod + core),
                            PortRef(_core_name(rank, core), agg_index),
                            uplink_gbps,
                        )
    return topo

"""Failure blast-radius analysis: what one broken device strands.

The reliability attribute (§2) is about containment: "one critical risk
... is optical module damage, whose impact can be mitigated at the
network architecture level."  For each device class this module fails
one instance and counts the GPUs that lose fabric connectivity on some
rail — the architecture-level answer to "how bad is one failure?".
Dual-ToR wiring (P3) makes the answer *zero* for every single-device
failure in Astral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..network.flows import make_flow, reset_flow_ids
from ..network.routing import EcmpRouter
from .elements import DeviceKind, Topology

__all__ = ["BlastRadius", "device_blast_radius", "blast_radius_table"]


@dataclass(frozen=True)
class BlastRadius:
    """Impact of failing one device."""

    device: str
    kind: DeviceKind
    stranded_hosts: int          # hosts with >= 1 unreachable rail
    stranded_gpus: int           # GPU-rails without connectivity
    total_hosts: int

    @property
    def contained(self) -> bool:
        return self.stranded_gpus == 0


def _fail_device(topology: Topology, device: str) -> List[int]:
    failed = []
    for link in topology.links_of(device):
        if link.healthy:
            topology.fail_link(link.link_id)
            failed.append(link.link_id)
    return failed


def _restore(topology: Topology, link_ids: List[int]) -> None:
    for link_id in link_ids:
        topology.restore_link(link_id)


def device_blast_radius(topology: Topology, device: str,
                        probe_host: Optional[str] = None
                        ) -> BlastRadius:
    """Fail *device* (all its links) and count stranded GPU-rails.

    A GPU-rail is stranded when its host cannot reach ``probe_host``
    (default: the first host that is not the device itself) on that
    rail.  The device's links are restored before returning.
    """
    hosts = topology.hosts()
    if probe_host is None:
        probe_host = next(h.name for h in hosts if h.name != device)
    failed = _fail_device(topology, device)
    try:
        router = EcmpRouter(topology)
        stranded_hosts = 0
        stranded_gpus = 0
        reset_flow_ids()
        for host in hosts:
            if host.name in (device, probe_host):
                continue
            host_hit = False
            for gpu in host.gpus:
                flow = make_flow(host.name, probe_host, rail=gpu.rail,
                                 size_bits=1.0, dst_rail=gpu.rail)
                if not router.reachable(flow):
                    stranded_gpus += 1
                    host_hit = True
            if host_hit:
                stranded_hosts += 1
        return BlastRadius(
            device=device,
            kind=topology.devices[device].kind,
            stranded_hosts=stranded_hosts,
            stranded_gpus=stranded_gpus,
            total_hosts=len(hosts),
        )
    finally:
        _restore(topology, failed)
        reset_flow_ids()


def blast_radius_table(topology: Topology) -> Dict[DeviceKind,
                                                   BlastRadius]:
    """One representative blast radius per switch class."""
    table: Dict[DeviceKind, BlastRadius] = {}
    for kind in (DeviceKind.TOR, DeviceKind.AGG, DeviceKind.CORE):
        switches = topology.switches(kind)
        if not switches:
            continue
        table[kind] = device_blast_radius(topology, switches[0].name)
    return table

"""Failure blast-radius analysis: what one broken device strands.

The reliability attribute (§2) is about containment: "one critical risk
... is optical module damage, whose impact can be mitigated at the
network architecture level."  For each device class this module fails
one instance and counts the GPUs that lose fabric connectivity on some
rail — the architecture-level answer to "how bad is one failure?".
Dual-ToR wiring (P3) makes the answer *zero* for every single-device
failure in Astral.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..network.flows import make_flow, reset_flow_ids
from ..network.routing import EcmpRouter
from .elements import DeviceKind, Topology

__all__ = ["BlastRadius", "failed_device", "device_blast_radius",
           "blast_radius_table", "impacted_hosts"]


@dataclass(frozen=True)
class BlastRadius:
    """Impact of failing one device."""

    device: str
    kind: DeviceKind
    stranded_hosts: int          # hosts with >= 1 unreachable rail
    stranded_gpus: int           # GPU-rails without connectivity
    total_hosts: int

    @property
    def contained(self) -> bool:
        return self.stranded_gpus == 0


@contextmanager
def failed_device(topology: Topology, device: str) -> Iterator[List[int]]:
    """Fail *device* (all its healthy links) for the duration of the
    ``with`` block, restoring exactly those links on exit.

    The restore runs in a ``finally``, so a measurement that raises
    mid-analysis cannot leave the topology mutated.  Yields the failed
    link ids (the would-be cut set).
    """
    failed = topology.fail_device(device)
    try:
        yield failed
    finally:
        topology.restore_links(failed)


def device_blast_radius(topology: Topology, device: str,
                        probe_host: Optional[str] = None
                        ) -> BlastRadius:
    """Fail *device* (all its links) and count stranded GPU-rails.

    A GPU-rail is stranded when its host cannot reach ``probe_host``
    (default: the first host that is not the device itself) on that
    rail.  The device's links are restored before returning.
    """
    hosts = topology.hosts()
    if probe_host is None:
        probe_host = next(h.name for h in hosts if h.name != device)
    with failed_device(topology, device):
        try:
            router = EcmpRouter(topology)
            stranded_hosts = 0
            stranded_gpus = 0
            reset_flow_ids()
            for host in hosts:
                if host.name in (device, probe_host):
                    continue
                host_hit = False
                for gpu in host.gpus:
                    flow = make_flow(host.name, probe_host, rail=gpu.rail,
                                     size_bits=1.0, dst_rail=gpu.rail)
                    if not router.reachable(flow):
                        stranded_gpus += 1
                        host_hit = True
                if host_hit:
                    stranded_hosts += 1
            return BlastRadius(
                device=device,
                kind=topology.devices[device].kind,
                stranded_hosts=stranded_hosts,
                stranded_gpus=stranded_gpus,
                total_hosts=len(hosts),
            )
        finally:
            reset_flow_ids()


def impacted_hosts(topology: Topology, device: str) -> List[str]:
    """The host set a diagnosed *device* failure cordons.

    Hosts directly wired to the device (they lost a fabric port, i.e.
    redundancy, even when dual-ToR keeps them connected) plus the
    device itself when it is a host.  This is the operational blast
    radius — the conservative drain set — as opposed to the stranded
    set :func:`device_blast_radius` counts, which dual-ToR wiring
    keeps at zero for single failures.
    """
    names = set(topology.attached_hosts(device))
    if topology.devices[device].kind is DeviceKind.HOST:
        names.add(device)
    return sorted(names)


def blast_radius_table(topology: Topology) -> Dict[DeviceKind,
                                                   BlastRadius]:
    """One representative blast radius per switch class."""
    table: Dict[DeviceKind, BlastRadius] = {}
    for kind in (DeviceKind.TOR, DeviceKind.AGG, DeviceKind.CORE):
        switches = topology.switches(kind)
        if not switches:
            continue
        table[kind] = device_blast_radius(topology, switches[0].name)
    return table

"""Cross-datacenter extension of the Astral network (Appendix B).

To consolidate computing power, Astral connects multiple LLM
datacenters separated by hundreds of kilometers.  Long-distance fiber
is priced like GPUs (~70 $/km per fiber per month; ~250 K$ a year for
300 km in the paper's rental records), so the design question is the
trade-off between fiber-bandwidth oversubscription and training loss —
the Figure 13/18 studies.

:func:`build_cross_dc` stitches ``n_datacenters`` Astral fabrics
together through DCI (datacenter-interconnect) routers: each DC's DCI
routers attach to its Core tier, and DCI pairs are joined by long-haul
links whose capacity expresses the intra:cross oversubscription ratio.
:class:`FiberCostModel` prices the long-haul segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .astral import AstralParams, build_astral
from .elements import Device, DeviceKind, PortRef, Switch, Topology

__all__ = ["CrossDcParams", "build_cross_dc", "FiberCostModel"]


@dataclass(frozen=True)
class CrossDcParams:
    """Dimensions of a multi-datacenter Astral deployment."""

    datacenter_params: AstralParams = None  # per-DC fabric dimensions
    n_datacenters: int = 2
    dci_per_datacenter: int = 2
    #: long-haul fiber capacity per DCI pair, Gbps (one direction).
    fiber_gbps: float = 1600.0
    distance_km: float = 300.0

    def __post_init__(self):
        if self.datacenter_params is None:
            object.__setattr__(self, "datacenter_params",
                               AstralParams.tiny())

    @property
    def oversubscription(self) -> float:
        """Intra-DC core capacity vs long-haul capacity ratio."""
        params = self.datacenter_params
        intra = (params.pods * params.rails * params.tor_groups
                 * params.aggs_per_group * params.cores_per_group
                 * params.agg_core_gbps)
        cross = self.dci_per_datacenter * self.fiber_gbps
        return intra / cross if cross else float("inf")


def _copy_into(target: Topology, source: Topology, prefix: str) -> None:
    """Copy a fabric's devices and links under a name prefix."""
    renamed: Dict[str, str] = {}
    for device in source.devices.values():
        clone = Device.__new__(type(device))
        clone.__dict__.update(device.__dict__)
        clone.name = f"{prefix}{device.name}"
        for attr in ("gpus", "nics"):
            items = getattr(clone, attr, None)
            if items:
                renamed_items = []
                for item in items:
                    copy = type(item)(**{**item.__dict__,
                                         "name": f"{prefix}{item.name}",
                                         "host": clone.name})
                    renamed_items.append(copy)
                setattr(clone, attr, renamed_items)
        renamed[device.name] = clone.name
        target.add_device(clone)
    for link in source.links.values():
        target.add_link(
            PortRef(renamed[link.a.device], link.a.port),
            PortRef(renamed[link.b.device], link.b.port),
            link.capacity_gbps,
        )


def build_cross_dc(params: CrossDcParams | None = None) -> Topology:
    """Multiple Astral fabrics joined by DCI routers and long-haul links.

    Device names are prefixed with ``dc<i>.``; DCI routers are named
    ``dc<i>.dci<j>`` and carry :attr:`DeviceKind.DCI`.  Long-haul links
    form a full mesh between same-index DCI routers of different DCs.
    """
    params = params or CrossDcParams()
    if params.n_datacenters < 2:
        raise ValueError("cross-DC deployment needs at least two DCs")
    topo = Topology(name="astral-crossdc")

    dc_params = params.datacenter_params
    for dc in range(params.n_datacenters):
        fabric = build_astral(dc_params)
        for device in fabric.devices.values():
            device.datacenter = dc
        _copy_into(topo, fabric, f"dc{dc}.")

    # DCI routers: each attaches to one core per core group of its DC.
    cores_by_dc: Dict[int, List[str]] = {}
    for device in topo.devices.values():
        if device.kind is DeviceKind.CORE:
            cores_by_dc.setdefault(device.datacenter, []).append(
                device.name)
    for names in cores_by_dc.values():
        names.sort()

    downlink_gbps = params.fiber_gbps  # non-blocking inside the DC edge
    for dc in range(params.n_datacenters):
        for index in range(params.dci_per_datacenter):
            dci = Switch(name=f"dc{dc}.dci{index}", kind=DeviceKind.DCI,
                         datacenter=dc, rank=index)
            topo.add_device(dci)
            cores = cores_by_dc[dc]
            attach = cores[index::params.dci_per_datacenter]
            if not attach:
                attach = cores
            per_core = downlink_gbps / len(attach)
            for port, core in enumerate(attach):
                topo.add_link(PortRef(dci.name, port),
                              PortRef(core, 50_000 + index), per_core)

    # Long-haul mesh between same-index DCIs of different DCs.
    for index in range(params.dci_per_datacenter):
        for dc_a in range(params.n_datacenters):
            for dc_b in range(dc_a + 1, params.n_datacenters):
                topo.add_link(
                    PortRef(f"dc{dc_a}.dci{index}", 40_000 + dc_b),
                    PortRef(f"dc{dc_b}.dci{index}", 40_000 + dc_a),
                    params.fiber_gbps
                    / max(1, params.n_datacenters - 1),
                )
    return topo


@dataclass(frozen=True)
class FiberCostModel:
    """Long-distance fiber rental economics (Appendix B).

    Paper's records: ~70 $/km per fiber each month; 300 km came to
    ~250 K$ per year — comparable to GPUs, which is why the
    oversubscription trade-off matters at all.
    """

    usd_per_km_month: float = 70.0

    def monthly_cost_usd(self, distance_km: float,
                         fibers: int = 1) -> float:
        if distance_km < 0 or fibers < 0:
            raise ValueError("distance and fiber count must be >= 0")
        return self.usd_per_km_month * distance_km * fibers

    def yearly_cost_usd(self, distance_km: float,
                        fibers: int = 1) -> float:
        return 12.0 * self.monthly_cost_usd(distance_km, fibers)

    def fibers_for_bandwidth(self, required_gbps: float,
                             gbps_per_fiber: float = 400.0) -> int:
        if required_gbps <= 0:
            return 0
        if gbps_per_fiber <= 0:
            raise ValueError("fiber capacity must be positive")
        import math
        return math.ceil(required_gbps / gbps_per_fiber)

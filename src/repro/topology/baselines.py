"""Comparison architectures from the paper's related-work discussion.

Three production-ready designs Astral is evaluated against (§2.1,
"Advantages over other production-ready network architectures"):

* :func:`build_clos` — a 3-tier CLOS in the style of Meta [20] and
  ByteDance [27]: ToRs carry mixed rails, Aggs interconnect every ToR of
  the pod, and the Agg–Core tier is typically oversubscribed.
* :func:`build_full_interconnect_tier2` — rail-optimized ToRs but a fully
  interconnected tier 2, in the style of Alibaba HPN [39].  This is also
  the configuration Astral's own first attempt used and abandoned (§5),
  so it doubles as the tier-2 ablation baseline.
* :func:`build_rail_only` — Meta's rail-only design [46]: per-rail
  two-tier networks with no Core layer at all; cross-rail traffic must
  detour through the intra-host interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass

from .astral import AstralParams, build_astral
from .elements import (
    DeviceKind,
    Gpu,
    Host,
    Nic,
    PortRef,
    Switch,
    Topology,
)

__all__ = [
    "ClosParams",
    "build_clos",
    "build_full_interconnect_tier2",
    "build_rail_only",
]


@dataclass(frozen=True)
class ClosParams:
    """Dimensions of a generic 3-tier CLOS fabric."""

    pods: int = 8
    blocks_per_pod: int = 64
    hosts_per_block: int = 128
    gpus_per_host: int = 8
    nic_ports: int = 2
    tors_per_block: int = 16
    aggs_per_pod: int = 64
    cores: int = 64
    nic_port_gbps: float = 200.0
    tor_agg_gbps: float = 400.0
    agg_core_gbps: float = 400.0
    tier3_oversubscription: float = 3.0   # typical production choice

    @classmethod
    def small(cls) -> "ClosParams":
        return cls(
            pods=2, blocks_per_pod=2, hosts_per_block=8, gpus_per_host=4,
            tors_per_block=8, aggs_per_pod=8, cores=4,
        )

    @classmethod
    def tiny(cls) -> "ClosParams":
        return cls(
            pods=2, blocks_per_pod=2, hosts_per_block=2, gpus_per_host=2,
            tors_per_block=4, aggs_per_pod=4, cores=2,
        )


def build_clos(params: ClosParams | None = None) -> Topology:
    """3-tier CLOS with rail-oblivious ToRs.

    Host NIC ports are striped across the block's ToRs so each ToR carries
    a mix of rails — the property that distinguishes CLOS from rail
    architectures: same-rail flows get no dedicated short paths and share
    the full Agg layer with all other traffic.
    """
    params = params or ClosParams()
    topo = Topology(name="clos")

    for pod in range(params.pods):
        for block in range(params.blocks_per_pod):
            for index in range(params.hosts_per_block):
                name = f"p{pod}.b{block}.h{index}"
                host = Host(name=name, kind=DeviceKind.HOST, pod=pod,
                            block=block, rank=index)
                for rail in range(params.gpus_per_host):
                    host.gpus.append(
                        Gpu(name=f"{name}.gpu{rail}", host=name, rail=rail))
                    host.nics.append(Nic(
                        name=f"{name}.nic{rail}", host=name, rail=rail,
                        ports=params.nic_ports,
                        port_gbps=params.nic_port_gbps))
                topo.add_device(host)
            for tor in range(params.tors_per_block):
                topo.add_device(Switch(
                    name=f"p{pod}.b{block}.t{tor}.tor",
                    kind=DeviceKind.TOR, pod=pod, block=block, rank=tor))
        for agg in range(params.aggs_per_pod):
            topo.add_device(Switch(
                name=f"p{pod}.a{agg}.agg", kind=DeviceKind.AGG,
                pod=pod, rank=agg))
    for core in range(params.cores):
        topo.add_device(Switch(
            name=f"c{core}.core", kind=DeviceKind.CORE, rank=core))

    # Host -> ToR: stripe NIC ports over the block's ToRs (rail-oblivious).
    for pod in range(params.pods):
        for block in range(params.blocks_per_pod):
            for index in range(params.hosts_per_block):
                host = f"p{pod}.b{block}.h{index}"
                port_no = 0
                for rail in range(params.gpus_per_host):
                    for port in range(params.nic_ports):
                        tor = (rail * params.nic_ports + port) \
                            % params.tors_per_block
                        topo.add_link(
                            PortRef(host, port_no),
                            PortRef(f"p{pod}.b{block}.t{tor}.tor",
                                    index * params.gpus_per_host + rail),
                            params.nic_port_gbps)
                        port_no += 1

    # ToR -> Agg: full mesh within the pod.
    for pod in range(params.pods):
        for block in range(params.blocks_per_pod):
            for tor in range(params.tors_per_block):
                tor_name = f"p{pod}.b{block}.t{tor}.tor"
                for agg in range(params.aggs_per_pod):
                    topo.add_link(
                        PortRef(tor_name, 10_000 + agg),
                        PortRef(f"p{pod}.a{agg}.agg",
                                block * params.tors_per_block + tor),
                        params.tor_agg_gbps)

    # Agg -> Core: full mesh, oversubscribed.  Uplink capacity is scaled
    # so the Agg tier's down/up ratio equals the requested ratio at any
    # parameter scale.
    agg_down = (params.blocks_per_pod * params.tors_per_block
                * params.tor_agg_gbps)
    uplink = agg_down / params.cores / params.tier3_oversubscription
    for pod in range(params.pods):
        for agg in range(params.aggs_per_pod):
            agg_name = f"p{pod}.a{agg}.agg"
            for core in range(params.cores):
                topo.add_link(
                    PortRef(agg_name, 10_000 + core),
                    PortRef(f"c{core}.core",
                            pod * params.aggs_per_pod + agg),
                    uplink)
    return topo


def build_full_interconnect_tier2(params: AstralParams | None = None
                                  ) -> Topology:
    """Rail-optimized ToRs, fully interconnected tier 2 (HPN-style).

    Starts from the Astral wiring and replaces the per-rail Agg groups
    with pod-wide Aggs that every ToR (all rails) connects to.  Same-rail
    cross-block traffic therefore shares the Agg layer with cross-rail
    traffic — the hash-polarization-prone design Astral abandoned (§5).
    """
    params = params or AstralParams()
    params.validate()
    topo = Topology(name="tier2-full-interconnect")

    # Reuse the Astral builder for hosts + ToRs by building and filtering
    # would be awkward; construct directly with the same naming scheme.
    astral = build_astral(params)
    for device in astral.devices.values():
        if device.kind in (DeviceKind.HOST, DeviceKind.TOR):
            topo.add_device(device)
    for link in astral.links.values():
        a_kind = astral.devices[link.a.device].kind
        b_kind = astral.devices[link.b.device].kind
        if {a_kind, b_kind} == {DeviceKind.HOST, DeviceKind.TOR}:
            topo.add_link(link.a, link.b, link.capacity_gbps)

    aggs_per_pod = params.rails * params.tor_groups * params.aggs_per_group
    tors_per_pod = (params.blocks_per_pod * params.rails
                    * params.tor_groups)
    # Preserve aggregate tier-2 capacity: each ToR still has
    # aggs_per_group uplinks' worth of bandwidth, now spread over all
    # pod Aggs.
    tor_uplink = (params.tor_agg_gbps * params.aggs_per_group
                  * params.rails * params.tor_groups) / aggs_per_pod

    for pod in range(params.pods):
        for agg in range(aggs_per_pod):
            topo.add_device(Switch(
                name=f"p{pod}.a{agg}.agg", kind=DeviceKind.AGG,
                pod=pod, rank=agg))
    core_count = params.core_groups * params.cores_per_group
    for core in range(core_count):
        topo.add_device(Switch(
            name=f"c{core}.core", kind=DeviceKind.CORE, rank=core))

    for pod in range(params.pods):
        tor_index = 0
        for block in range(params.blocks_per_pod):
            for rail in range(params.rails):
                for group in range(params.tor_groups):
                    tor = f"p{pod}.b{block}.r{rail}.g{group}.tor"
                    for agg in range(aggs_per_pod):
                        topo.add_link(
                            PortRef(tor, 10_000 + agg),
                            PortRef(f"p{pod}.a{agg}.agg", tor_index),
                            tor_uplink)
                    tor_index += 1
        uplink = (params.agg_core_gbps / params.tier3_oversubscription
                  * params.cores_per_group * params.aggs_per_group
                  * params.rails * params.tor_groups
                  / (aggs_per_pod * core_count) * params.core_groups)
        for agg in range(aggs_per_pod):
            agg_name = f"p{pod}.a{agg}.agg"
            for core in range(core_count):
                topo.add_link(
                    PortRef(agg_name, 20_000 + core),
                    PortRef(f"c{core}.core",
                            pod * aggs_per_pod + agg + tors_per_pod),
                    uplink)
    return topo


def build_rail_only(params: AstralParams | None = None) -> Topology:
    """Meta rail-only [46]: Astral wiring minus the Core layer.

    Cross-rail traffic cannot traverse this fabric at all; the collective
    models route it through the intra-host interconnect first (PXN-style
    forwarding), which is exactly the overhead the paper calls out.
    """
    params = params or AstralParams()
    astral = build_astral(params)
    topo = Topology(name="rail-only")
    for device in astral.devices.values():
        if device.kind is not DeviceKind.CORE:
            topo.add_device(device)
    for link in astral.links.values():
        kinds = {
            astral.devices[link.a.device].kind,
            astral.devices[link.b.device].kind,
        }
        if DeviceKind.CORE not in kinds:
            topo.add_link(link.a, link.b, link.capacity_gbps)
    return topo

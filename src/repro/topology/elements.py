"""Network element model shared by all topology builders.

The reproduction models a datacenter fabric as an explicit graph of
*devices* (hosts and switches) joined by *links*.  Every architectural
claim in the paper — pod scale, same-rail hop counts, oversubscription
ratios, dual-ToR redundancy — is a property of this graph, so the model
keeps exactly the attributes those claims depend on:

* devices carry their tier (host / ToR / Agg / Core) and their position
  (pod, block, rail, group, rank);
* links carry capacity and direction-of-climb (host→ToR→Agg→Core is "up");
* hosts carry GPUs and NICs, with each NIC bound to one GPU rail and
  exposing two ports (the paper's 2x200G dual-port NIC).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "DeviceKind",
    "Device",
    "Host",
    "Switch",
    "Nic",
    "Gpu",
    "Link",
    "PortRef",
    "Topology",
    "TopologyError",
]


class TopologyError(ValueError):
    """Raised for structurally invalid topology operations."""


class DeviceKind(enum.Enum):
    HOST = "host"
    TOR = "tor"
    AGG = "agg"
    CORE = "core"
    DCI = "dci"  # cross-datacenter interconnect router (Appendix B)

    @property
    def tier(self) -> int:
        """Switching tier: hosts are tier 0, ToR 1, Agg 2, Core 3, DCI 4."""
        return {
            DeviceKind.HOST: 0,
            DeviceKind.TOR: 1,
            DeviceKind.AGG: 2,
            DeviceKind.CORE: 3,
            DeviceKind.DCI: 4,
        }[self]


@dataclass(frozen=True)
class PortRef:
    """A (device, port index) endpoint of a link."""

    device: str
    port: int


@dataclass
class Gpu:
    """One GPU in a host; ``rail`` is its rank within the host (0..7)."""

    name: str
    host: str
    rail: int


@dataclass
class Nic:
    """A dual-port NIC dedicated to one GPU rail (paper §2.1 host side)."""

    name: str
    host: str
    rail: int
    ports: int = 2
    port_gbps: float = 200.0

    @property
    def total_gbps(self) -> float:
        return self.ports * self.port_gbps


@dataclass
class Device:
    """Base device record. Position attributes are None when inapplicable."""

    name: str
    kind: DeviceKind
    pod: Optional[int] = None
    block: Optional[int] = None
    rail: Optional[int] = None
    group: Optional[int] = None
    rank: Optional[int] = None
    datacenter: int = 0

    @property
    def tier(self) -> int:
        return self.kind.tier


@dataclass
class Host(Device):
    """A GPU server: 8 GPUs and 8 dual-port NICs by default."""

    gpus: List[Gpu] = field(default_factory=list)
    nics: List[Nic] = field(default_factory=list)

    def nic_for_rail(self, rail: int) -> Nic:
        for nic in self.nics:
            if nic.rail == rail:
                return nic
        raise TopologyError(f"host {self.name} has no NIC on rail {rail}")


@dataclass
class Switch(Device):
    """A switch with a total forwarding capacity (e.g. 51.2 Tbps ASICs)."""

    capacity_tbps: float = 51.2
    radix: int = 128


@dataclass
class Link:
    """A bidirectional link between two device ports.

    ``capacity_gbps`` is the per-direction capacity.  ``healthy`` supports
    the monitoring fault-injection campaigns (optical module damage, link
    flap, miswiring all toggle or rewire links).
    """

    link_id: int
    a: PortRef
    b: PortRef
    capacity_gbps: float
    healthy: bool = True

    def other(self, device: str) -> str:
        if device == self.a.device:
            return self.b.device
        if device == self.b.device:
            return self.a.device
        raise TopologyError(f"device {device} is not on link {self.link_id}")

    def endpoint(self, device: str) -> PortRef:
        if device == self.a.device:
            return self.a
        if device == self.b.device:
            return self.b
        raise TopologyError(f"device {device} is not on link {self.link_id}")


class Topology:
    """A fabric graph with tier-aware queries.

    Devices are indexed by name; links by integer id.  Adjacency maps each
    device to its incident links.  Builders in this package (Astral, CLOS,
    HPN, rail-only) all emit this structure, so the fabric simulator and
    the monitoring system are architecture-agnostic.
    """

    def __init__(self, name: str = "fabric"):
        self.name = name
        self.devices: Dict[str, Device] = {}
        self.links: Dict[int, Link] = {}
        self._adjacency: Dict[str, List[int]] = {}
        self._next_link_id = 0
        #: bumped on any structural or health change; routers use this to
        #: invalidate their cached reachability state.
        self.version = 0

    # -- construction ----------------------------------------------------
    def add_device(self, device: Device) -> Device:
        if device.name in self.devices:
            raise TopologyError(f"duplicate device name: {device.name}")
        self.devices[device.name] = device
        self._adjacency[device.name] = []
        self.version += 1
        return device

    def add_link(self, a: PortRef, b: PortRef, capacity_gbps: float) -> Link:
        for ref in (a, b):
            if ref.device not in self.devices:
                raise TopologyError(f"unknown device in link: {ref.device}")
        if a.device == b.device:
            raise TopologyError(f"self-link on {a.device}")
        link = Link(self._next_link_id, a, b, capacity_gbps)
        self._next_link_id += 1
        self.links[link.link_id] = link
        self._adjacency[a.device].append(link.link_id)
        self._adjacency[b.device].append(link.link_id)
        self.version += 1
        return link

    # -- queries ---------------------------------------------------------
    def device(self, name: str) -> Device:
        try:
            return self.devices[name]
        except KeyError:
            raise TopologyError(f"unknown device: {name}") from None

    def links_of(self, device: str) -> List[Link]:
        return [self.links[lid] for lid in self._adjacency[device]]

    def neighbors(self, device: str, healthy_only: bool = True
                  ) -> Iterator[Tuple[Link, Device]]:
        for link in self.links_of(device):
            if healthy_only and not link.healthy:
                continue
            yield link, self.devices[link.other(device)]

    def hosts(self) -> List[Host]:
        return [d for d in self.devices.values() if isinstance(d, Host)]

    def switches(self, kind: Optional[DeviceKind] = None) -> List[Switch]:
        result = [d for d in self.devices.values() if isinstance(d, Switch)]
        if kind is not None:
            result = [s for s in result if s.kind is kind]
        return result

    def gpu_count(self) -> int:
        return sum(len(h.gpus) for h in self.hosts())

    def link_between(self, a: str, b: str) -> List[Link]:
        """All (parallel) links between two devices."""
        return [
            link for link in self.links_of(a)
            if link.other(a) == b
        ]

    # -- health / fault hooks ---------------------------------------------
    def fail_link(self, link_id: int) -> None:
        self.links[link_id].healthy = False
        self.version += 1

    def restore_link(self, link_id: int) -> None:
        self.links[link_id].healthy = True
        self.version += 1

    def fail_device(self, device: str) -> List[int]:
        """Fail every healthy link of *device* (a dead switch, host or
        NIC takes all its ports down at once); returns the failed link
        ids so the caller can restore exactly what it broke."""
        failed = []
        for link in self.links_of(device):
            if link.healthy:
                self.fail_link(link.link_id)
                failed.append(link.link_id)
        return failed

    def restore_links(self, link_ids: Iterable[int]) -> None:
        for link_id in link_ids:
            self.restore_link(link_id)

    def attached_hosts(self, device: str) -> List[str]:
        """Hosts wired (healthy or not) to *device* — its potential
        blast radius at tier 1, the set operators cordon when the
        device is diagnosed as a fault's root cause."""
        names = []
        for link in self.links_of(device):
            other = self.devices[link.other(device)]
            if other.kind is DeviceKind.HOST:
                names.append(other.name)
        return sorted(set(names))

    def healthy_links(self) -> List[Link]:
        return [link for link in self.links.values() if link.healthy]

    # -- aggregate properties ---------------------------------------------
    def tier_bandwidth_gbps(self, lower: DeviceKind, upper: DeviceKind
                            ) -> float:
        """Total one-direction capacity between two adjacent tiers."""
        total = 0.0
        for link in self.links.values():
            kinds = {
                self.devices[link.a.device].kind,
                self.devices[link.b.device].kind,
            }
            if kinds == {lower, upper}:
                total += link.capacity_gbps
        return total

    def oversubscription(self, kind: DeviceKind) -> float:
        """Down-capacity / up-capacity ratio at a switching tier.

        1.0 means non-blocking; >1.0 means the tier is oversubscribed.
        The paper's P2 requires this to be 1.0 at every tier of Astral.
        """
        down = up = 0.0
        for switch in self.switches(kind):
            for link in self.links_of(switch.name):
                other = self.devices[link.other(switch.name)]
                if other.tier < switch.tier:
                    down += link.capacity_gbps
                elif other.tier > switch.tier:
                    up += link.capacity_gbps
        if up == 0.0:
            return float("inf") if down > 0 else 1.0
        return down / up

"""Topology builders: Astral and the comparison architectures."""

from .astral import AstralParams, build_astral
from .blast_radius import (
    BlastRadius,
    blast_radius_table,
    device_blast_radius,
)
from .crossdc import CrossDcParams, FiberCostModel, build_cross_dc
from .portmath import (
    AsicEnvelope,
    PortBudget,
    port_budgets,
    validate_port_math,
)
from .baselines import (
    ClosParams,
    build_clos,
    build_full_interconnect_tier2,
    build_rail_only,
)
from .elements import (
    Device,
    DeviceKind,
    Gpu,
    Host,
    Link,
    Nic,
    PortRef,
    Switch,
    Topology,
    TopologyError,
)

__all__ = [
    "AstralParams",
    "ClosParams",
    "Device",
    "DeviceKind",
    "Gpu",
    "Host",
    "Link",
    "Nic",
    "PortRef",
    "Switch",
    "Topology",
    "TopologyError",
    "build_astral",
    "build_clos",
    "build_cross_dc",
    "CrossDcParams",
    "FiberCostModel",
    "AsicEnvelope",
    "BlastRadius",
    "blast_radius_table",
    "device_blast_radius",
    "PortBudget",
    "port_budgets",
    "validate_port_math",
    "build_full_interconnect_tier2",
    "build_rail_only",
]

"""Fault injection against a live fabric engine.

Where :mod:`repro.monitoring.faults` *describes* faults (the Figure-7
taxonomy) and :mod:`repro.topology.blast_radius` analyses them
statically, the :class:`FailureInjector` *performs* them: at scheduled
timestamps on the simcore clock it mutates the shared
:class:`~repro.topology.elements.Topology` — links die, degrade, flap;
whole switches, NICs and hosts go dark — and nudges the
:class:`~repro.network.engine.FabricEngine` so in-flight flows lose
their paths for real and the failover machinery has something to do.

Link restores honour a *hold-down* window (``dampening_s``), the
carrier-dampening timer real NOSes run: a link that flaps back up
within the window is only readmitted once the window expires, so the
routing layer sees one down event per flap instead of a storm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..monitoring.faults import Effect, FaultSpec
from ..network.engine import FabricEngine

__all__ = ["FaultEvent", "FailureInjector"]

#: capacity factor a degraded (dirty-optic / flapping) link runs at.
_DEGRADE_FACTOR = 0.25


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the injector's deterministic action log."""

    at_s: float
    action: str       # kill-link | restore-link | degrade-link | ...
    target: str       # device name or "link:<id>"


class FailureInjector:
    """Schedule and apply structural faults on a live fabric."""

    def __init__(self, engine: FabricEngine, dampening_s: float = 10.0):
        if dampening_s < 0:
            raise ValueError(
                f"dampening_s cannot be negative: {dampening_s}")
        self.engine = engine
        self.sim = engine.sim
        self.topology = engine.fabric.topology
        self.dampening_s = dampening_s
        #: every applied action, in application order — the audit trail
        #: determinism tests compare across processes.
        self.log: List[FaultEvent] = []
        #: link ids downed per killed device, for repair.
        self._device_links: Dict[str, List[int]] = {}
        #: earliest time each downed link may come back (hold-down).
        self._hold_until: Dict[int, float] = {}

    # -- scheduling helpers -------------------------------------------------
    def _apply_at(self, at: Optional[float],
                  fn: Callable[[], None]) -> None:
        if at is None or at <= self.sim.now:
            fn()
        else:
            self.sim.timeout(at - self.sim.now).add_callback(
                lambda _event: fn())

    def _record(self, action: str, target: str) -> None:
        self.log.append(FaultEvent(at_s=self.sim.now, action=action,
                                   target=target))

    # -- link faults --------------------------------------------------------
    def kill_link(self, link_id: int, at: Optional[float] = None) -> None:
        """Hard-down one link (optic dead, cable pulled)."""
        def apply() -> None:
            link = self.topology.links[link_id]
            if not link.healthy:
                return
            self.topology.fail_link(link_id)
            self._hold_until[link_id] = self.sim.now + self.dampening_s
            self._record("kill-link", f"link:{link_id}")
            self.engine.notify_topology_changed()
        self._apply_at(at, apply)

    def restore_link(self, link_id: int,
                     at: Optional[float] = None) -> None:
        """Bring a downed link back, no earlier than its hold-down."""
        def apply() -> None:
            hold = self._hold_until.get(link_id, 0.0)
            if self.sim.now < hold:
                # Carrier dampening: defer readmission to window end.
                self.sim.timeout(hold - self.sim.now).add_callback(
                    lambda _event: apply())
                return
            link = self.topology.links[link_id]
            if link.healthy:
                return
            self.topology.restore_link(link_id)
            self._record("restore-link", f"link:{link_id}")
            self.engine.notify_topology_changed()
        self._apply_at(at, apply)

    def flap_link(self, link_id: int, at: Optional[float] = None,
                  down_s: float = 1.0) -> None:
        """Down/up transition: the link dies and asks to return after
        ``down_s``; the hold-down defers the return to the dampening
        window, and rerouted flows stay on their new (healthy) paths —
        at most one reroute per flow per flap."""
        def apply() -> None:
            self.kill_link(link_id)
            self.restore_link(link_id, at=self.sim.now + down_s)
        self._apply_at(at, apply)

    def degrade_link(self, link_id: int, factor: float = _DEGRADE_FACTOR,
                     at: Optional[float] = None) -> None:
        """Scale a link's capacity (dirty optics, CRC retries)."""
        def apply() -> None:
            if link_id not in self.topology.links:
                raise KeyError(f"unknown link id {link_id}")
            self._record("degrade-link", f"link:{link_id}")
            self.engine.set_capacity_factor(link_id, factor)
        self._apply_at(at, apply)

    # -- device faults ------------------------------------------------------
    def kill_device(self, device: str,
                    at: Optional[float] = None) -> None:
        """Fail every link of *device* — a dead switch, NIC-less host,
        or host that dropped off the fabric entirely."""
        def apply() -> None:
            downed = self.topology.fail_device(device)
            if not downed:
                return
            self._device_links.setdefault(device, []).extend(downed)
            hold = self.sim.now + self.dampening_s
            for link_id in downed:
                self._hold_until[link_id] = hold
            self._record("kill-device", device)
            self.engine.notify_topology_changed()
        self._apply_at(at, apply)

    def repair_device(self, device: str,
                      at: Optional[float] = None) -> None:
        """Undo a :meth:`kill_device` (field replacement complete)."""
        def apply() -> None:
            downed = self._device_links.pop(device, [])
            if not downed:
                return
            self.topology.restore_links(downed)
            self._record("repair-device", device)
            self.engine.notify_topology_changed()
        self._apply_at(at, apply)

    def repair(self, target: str, at: Optional[float] = None) -> None:
        """Repair by target string: ``link:<id>`` or a device name."""
        if target.startswith("link:"):
            self.restore_link(int(target.split(":", 1)[1]), at=at)
        else:
            self.repair_device(target, at=at)

    # -- FaultSpec integration ----------------------------------------------
    def schedule(self, spec: FaultSpec) -> None:
        """Arm one validated :class:`FaultSpec` on the clock.

        Structural effects map onto injector actions; purely software
        effects (user code, CCL bugs) have no fabric footprint and are
        ignored here — they belong to the job loop, not the fabric.
        """
        spec.validate(topology=self.topology)
        at = spec.at_time_s
        effect = spec.effect
        if effect is Effect.LINK_DOWN:
            self.kill_link(int(spec.target.split(":", 1)[1]), at=at)
        elif effect is Effect.LINK_DEGRADE:
            self.flap_link(int(spec.target.split(":", 1)[1]), at=at)
        elif effect is Effect.MISWIRE:
            self.kill_link(int(spec.target.split(":", 1)[1]), at=at)
        elif effect in (Effect.SWITCH_ECN_STORM, Effect.PCIE_PFC_STORM):
            # Congestive faults throttle rather than sever.
            def degrade_all(target: str = spec.target) -> None:
                for link in self.topology.links_of(target):
                    self.degrade_link(link.link_id)
            self._apply_at(at, degrade_all)
        elif effect in (Effect.NIC_ERRCQE, Effect.GPU_FATAL,
                        Effect.ECC_FATAL, Effect.CONFIG_ERROR,
                        Effect.HOST_HANG, Effect.SWITCH_DROPS):
            self.kill_device(spec.target, at=at)
        # MULTI_HOST_SOFTWARE: job-level, no structural action.

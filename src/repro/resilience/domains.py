"""Correlated fault domains: one event, many co-located failures.

Production failures are rarely independent: a tripped power domain
takes out a contiguous run of hosts, a buggy switch ASIC batch breaks
several ToRs at once, a bad optics batch ships dozens of flaky
transceivers into one block, a rack incident hits every host in the
rack ("I've Got 99 Problems But FLOPS Ain't One" builds its failure
model on exactly this correlation structure).  A :class:`FaultDomain`
is the generator: one string-seeded domain event expands
deterministically into a correlated set of
:class:`~repro.monitoring.faults.FaultSpec`s with jittered onset times
— the same domain, seed and cluster shape always reproduce the same
member faults, across processes (``random.Random`` hashes string seeds
with its own stable algorithm, the cross-process contract every
campaign here relies on).

Two modes per domain:

* ``hard`` — the loud manifestation (fail-stop, or fail-hang for rack
  thermal events): fatal logs, aborts, the detect->localize loop's hit
  path.
* ``gray`` — degradation without a clean alarm: hosts crawl or compute
  slows, but every link keeps carrier, so the pingmesh *census* (the
  recovery pipeline's first detection signal) never moves and the
  hotspot scan stays below its latency threshold — the miss path.
  :func:`inject_domain` reproduces the same miss at the live-injector
  level as a mild capacity-factor degrade on the member devices'
  links.

``faults_from_document`` is the JSON front door (``repro scale
--faults spec.json``): it validates every entry against the cluster
shape *before* any topology renaming, so a malformed target fails with
a structured error naming the offending fault instead of a deep
``KeyError``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..monitoring.faults import (Effect, FaultSpec, Manifestation,
                                 RootCause)
from ..topology.astral import AstralParams

__all__ = [
    "DOMAIN_KINDS",
    "DOMAIN_MODES",
    "FaultDomain",
    "domain_fault_specs",
    "expand_domains",
    "faults_from_document",
    "inject_domain",
]

DOMAIN_KINDS = ("power-domain", "switch-asic", "optics-batch", "rack")
DOMAIN_MODES = ("hard", "gray")

#: kind -> (targets switches?, contiguous victims?, root cause,
#:          hard manifestation, gray manifestation).  Gray picks the
#: alarm-free manifestation of the same physical cause: brownout
#: compute slowdown, silent drop-counter creep, dirty-optics crawl,
#: thermal hang.
_KIND_PROFILES = {
    "power-domain": (False, True, RootCause.HOST_ENV_CONFIG,
                     Manifestation.FAIL_STOP, Manifestation.FAIL_SLOW),
    "switch-asic": (True, False, RootCause.SWITCH_BUG,
                    Manifestation.FAIL_STOP, Manifestation.FAIL_SLOW),
    "optics-batch": (False, False, RootCause.NIC_ERROR,
                     Manifestation.FAIL_STOP, Manifestation.FAIL_SLOW),
    "rack": (False, True, RootCause.GPU_HARDWARE,
             Manifestation.FAIL_STOP, Manifestation.FAIL_HANG),
}


@dataclass(frozen=True)
class FaultDomain:
    """One correlated fault event against a (pod, block) locality.

    ``size`` member faults are drawn inside the block — contiguous for
    power/rack domains, scattered for ASIC/optics batches.  Onsets are
    jittered per member: iteration-indexed by default (each member
    strikes ``at_iteration + U[0, jitter_iterations]``), or on the
    timestamp clock when ``at_time_s`` is set (``at_time_s +
    U[0, jitter_s)`` — note timestamp faults always escalate bounded
    refinement to pod scope; see ``hierarchy.refine``).
    """

    kind: str
    pod: int = 0
    block: int = 0
    size: int = 2
    mode: str = "hard"
    seed: Union[int, str] = 0
    at_iteration: int = 1
    jitter_iterations: int = 1
    at_time_s: Optional[float] = None
    jitter_s: float = 0.5
    #: capacity factor :func:`inject_domain` applies in ``gray`` mode —
    #: mild enough to stay below the pingmesh hotspot threshold.
    gray_factor: float = 0.8

    def __post_init__(self) -> None:
        if self.kind not in _KIND_PROFILES:
            raise ValueError(
                f"unknown fault-domain kind {self.kind!r}; expected "
                f"one of {DOMAIN_KINDS}")
        if self.mode not in DOMAIN_MODES:
            raise ValueError(
                f"unknown fault-domain mode {self.mode!r}; expected "
                f"one of {DOMAIN_MODES}")
        if self.size < 1:
            raise ValueError(f"domain size must be >= 1: {self.size}")
        if self.pod < 0 or self.block < 0:
            raise ValueError(
                f"domain pod/block cannot be negative: "
                f"pod={self.pod} block={self.block}")
        if self.at_iteration < 0:
            raise ValueError(
                f"at_iteration cannot be negative: {self.at_iteration}")
        if self.jitter_iterations < 0 or self.jitter_s < 0:
            raise ValueError("onset jitter cannot be negative")
        if self.at_time_s is not None and self.at_time_s < 0:
            raise ValueError(
                f"at_time_s cannot be negative: {self.at_time_s}")
        if not 0.0 < self.gray_factor <= 1.0:
            raise ValueError(
                f"gray_factor must be in (0, 1]: {self.gray_factor}")

    def rng(self) -> random.Random:
        """The domain's deterministic expansion stream."""
        return random.Random(
            f"fault-domain:{self.seed}:{self.kind}:{self.mode}:"
            f"{self.pod}:{self.block}:{self.size}")

    def describe(self) -> str:
        return (f"{self.kind}[{self.mode}] pod {self.pod} block "
                f"{self.block} size {self.size}")

    def validate_against(self, params: AstralParams) -> "FaultDomain":
        """Range-check the domain against a cluster shape; returns self."""
        if self.pod >= params.pods:
            raise ValueError(
                f"domain {self.describe()}: pod {self.pod} out of "
                f"range (cluster has {params.pods} pods)")
        if self.block >= params.blocks_per_pod:
            raise ValueError(
                f"domain {self.describe()}: block {self.block} out of "
                f"range ({params.blocks_per_pod} blocks per pod)")
        switches, _, _, _, _ = _KIND_PROFILES[self.kind]
        pool = (params.gpus_per_host * params.nic_ports if switches
                else params.hosts_per_block)
        if self.size > pool:
            what = "ToRs" if switches else "hosts"
            raise ValueError(
                f"domain {self.describe()}: size {self.size} exceeds "
                f"the block's {pool} {what}")
        return self


def _domain_targets(params: AstralParams, domain: FaultDomain,
                    rng: random.Random) -> List[str]:
    """Member device names, drawn from the domain's locality."""
    switches, contiguous, _, _, _ = _KIND_PROFILES[domain.kind]
    if switches:
        pairs = [(rail, group)
                 for rail in range(params.gpus_per_host)
                 for group in range(params.nic_ports)]
        chosen = sorted(rng.sample(pairs, domain.size))
        return [f"p{domain.pod}.b{domain.block}.r{rail}.g{group}.tor"
                for rail, group in chosen]
    per_block = params.hosts_per_block
    if contiguous:
        start = rng.randrange(max(1, per_block - domain.size + 1))
        hosts = range(start, start + domain.size)
    else:
        hosts = sorted(rng.sample(range(per_block), domain.size))
    return [f"p{domain.pod}.b{domain.block}.h{host}" for host in hosts]


def _member_spec(domain: FaultDomain, target: str,
                 rng: random.Random) -> FaultSpec:
    _, _, cause, hard, gray = _KIND_PROFILES[domain.kind]
    manifestation = gray if domain.mode == "gray" else hard
    if domain.at_time_s is not None:
        at_iteration, at_time = 1, (domain.at_time_s
                                    + rng.uniform(0.0, domain.jitter_s))
    else:
        at_iteration = domain.at_iteration + rng.randrange(
            domain.jitter_iterations + 1)
        at_time = None
    return FaultSpec(
        cause=cause, manifestation=manifestation, target=target,
        at_iteration=at_iteration, at_time_s=at_time,
        detail=f"{domain.kind}:{domain.seed}")


def domain_fault_specs(params: AstralParams,
                       domain: FaultDomain) -> List[FaultSpec]:
    """Expand one domain into its correlated member faults (unkeyed)."""
    domain.validate_against(params)
    rng = domain.rng()
    return [_member_spec(domain, target, rng)
            for target in _domain_targets(params, domain, rng)]


def expand_domains(params: AstralParams, placed: Sequence,
                   domains: Sequence[FaultDomain]
                   ) -> Dict[str, FaultSpec]:
    """Expand domains into job-keyed faults for a hierarchical run.

    Each member fault attaches to the placed job occupying its target
    (the job whose hosts include the target host, or — for a ToR — a
    job resident in the target's block).  One fault per job: when a
    domain hits two hosts of the same tenant, the first member wins
    (the job is already broken); members landing on idle hosts are
    dropped.  Expansion order is deterministic, so the same document
    always yields the same fault map.
    """
    owner: Dict[str, str] = {}
    by_block: Dict[tuple, List] = {}
    for placed_job in placed:
        for host in placed_job.hosts:
            owner[host] = placed_job.name
        for coord in placed_job.coords:
            by_block.setdefault((coord[0], coord[1]),
                                []).append(placed_job)
    faults: Dict[str, FaultSpec] = {}
    for domain in domains:
        for spec in domain_fault_specs(params, domain):
            if spec.target.endswith(".tor"):
                residents = by_block.get((domain.pod, domain.block), [])
                name = next((p.name for p in residents
                             if p.name not in faults), None)
            else:
                name = owner.get(spec.target)
            if name is None or name in faults:
                continue
            faults[name] = spec
    return faults


def inject_domain(injector, params: AstralParams,
                  domain: FaultDomain) -> List[FaultSpec]:
    """Arm one domain on a live :class:`FailureInjector`.

    ``hard`` members go through the injector's structural mapping
    (links die, devices go dark — the census moves and the recovery
    pipeline fires).  ``gray`` members degrade every link of each
    member device to ``gray_factor`` capacity instead: carrier stays
    up, the census never moves, and the detect->localize loop misses —
    while the traffic on those links measurably slows.  Returns the
    expanded member specs (scheduling order).
    """
    specs = domain_fault_specs(params, domain)
    if domain.mode == "hard":
        for spec in specs:
            injector.schedule(spec)
        return specs
    rng = domain.rng()
    for spec in specs:
        at = spec.at_time_s
        if at is None:
            at = (domain.at_time_s or 0.0) + rng.uniform(
                0.0, max(domain.jitter_s, 1e-9))
        for link in injector.topology.links_of(spec.target):
            injector.degrade_link(link.link_id, domain.gray_factor,
                                  at=at)
    return specs


def _enum_by_value(enum_cls, value: str, where: str):
    for member in enum_cls:
        if member.value == value:
            return member
    raise ValueError(
        f"{where}: unknown {enum_cls.__name__.lower()} {value!r}; "
        f"expected one of {sorted(m.value for m in enum_cls)}")


def _check_device_target(params: AstralParams, target: str,
                         where: str) -> None:
    """Range-check a host/ToR/Agg-shaped target against the cluster
    shape, so a typo'd coordinate fails here with the fault named
    instead of as a ``KeyError`` deep inside topology renaming."""
    parts = target.split(".")
    head = parts[0]
    if head[:1] != "p" or not head[1:].isdigit():
        return                       # core / link: / job-name target
    pod = int(head[1:])
    if pod >= params.pods:
        raise ValueError(
            f"{where}: target {target!r} names pod {pod} but the "
            f"cluster has {params.pods} pods")
    if len(parts) > 1 and parts[1][:1] == "b" and parts[1][1:].isdigit():
        block = int(parts[1][1:])
        if block >= params.blocks_per_pod:
            raise ValueError(
                f"{where}: target {target!r} names block {block} but "
                f"pods have {params.blocks_per_pod} blocks")
        if (len(parts) == 3 and parts[2][:1] == "h"
                and parts[2][1:].isdigit()):
            host = int(parts[2][1:])
            if host >= params.hosts_per_block:
                raise ValueError(
                    f"{where}: target {target!r} names host {host} "
                    f"but blocks have {params.hosts_per_block} hosts")


def faults_from_document(params: AstralParams, placed: Sequence,
                         document: dict) -> Dict[str, FaultSpec]:
    """Parse a ``{"domains": [...], "faults": [...]}`` JSON document.

    Domain entries are :class:`FaultDomain` field dicts; explicit
    fault entries are FaultSpec field dicts plus a ``"job"`` key
    naming the tenant the fault rides on (``cause`` /
    ``manifestation`` / optional ``effect`` by enum value).  Every
    entry is validated against *params* and *placed* before any
    expansion, and every error names the offending entry.
    """
    if not isinstance(document, dict):
        raise ValueError(
            f"fault document must be an object with 'domains' and/or "
            f"'faults' lists, got {type(document).__name__}")
    unknown = sorted(set(document) - {"domains", "faults"})
    if unknown:
        raise ValueError(
            f"fault document has unknown keys {unknown}; expected "
            "'domains' and/or 'faults'")
    by_name = {p.name: p for p in placed}

    domains: List[FaultDomain] = []
    for index, entry in enumerate(document.get("domains", ())):
        where = f"domains[{index}]"
        if not isinstance(entry, dict):
            raise ValueError(f"{where}: expected an object, got "
                             f"{type(entry).__name__}")
        try:
            domain = FaultDomain(**entry)
        except TypeError as exc:
            raise ValueError(f"{where}: {exc}") from None
        except ValueError as exc:
            raise ValueError(f"{where}: {exc}") from None
        try:
            domain.validate_against(params)
        except ValueError as exc:
            raise ValueError(f"{where}: {exc}") from None
        domains.append(domain)

    faults = expand_domains(params, placed, domains)

    for index, entry in enumerate(document.get("faults", ())):
        where = f"faults[{index}]"
        if not isinstance(entry, dict):
            raise ValueError(f"{where}: expected an object, got "
                             f"{type(entry).__name__}")
        fields = dict(entry)
        job = fields.pop("job", None)
        if not job:
            raise ValueError(f"{where}: missing 'job' (the tenant the "
                             "fault rides on)")
        if job not in by_name:
            raise ValueError(
                f"{where}: job {job!r} is not a placed tenant "
                f"(have {sorted(by_name)[:8]}...)"
                if len(by_name) > 8 else
                f"{where}: job {job!r} is not a placed tenant "
                f"(have {sorted(by_name)})")
        for key in ("cause", "manifestation"):
            if key not in fields:
                raise ValueError(f"{where}: missing {key!r}")
        fields["cause"] = _enum_by_value(RootCause, fields["cause"],
                                         where)
        fields["manifestation"] = _enum_by_value(
            Manifestation, fields["manifestation"], where)
        if "effect" in fields:
            fields["effect_override"] = _enum_by_value(
                Effect, fields.pop("effect"), where)
        target = fields.get("target", "")
        if target and target != job:
            _check_device_target(params, target, where)
        try:
            spec = FaultSpec(**fields)
        except TypeError as exc:
            raise ValueError(f"{where}: {exc}") from None
        except ValueError as exc:
            raise ValueError(f"{where}: {exc}") from None
        if (spec.profile.target_kind == "job"
                and spec.effect_override is None
                and spec.target != job):
            raise ValueError(
                f"{where}: cause {spec.cause.value!r} targets the job "
                f"itself; target must be {job!r}, got {spec.target!r}")
        faults[job] = spec
    return faults

"""The closed detect → localize → cordon → requeue → repair loop.

This is §3's operational payoff wired end to end on the simulated
clock.  A structural fault injected by the
:class:`~repro.resilience.injector.FailureInjector` perturbs what hosts
can observe: NICs lose carrier (the per-host healthy-uplink census of
:meth:`~repro.monitoring.pingmesh.Pingmesh.census`) and probe pairs go
unreachable.  The pipeline polls that telemetry, and on a detection:

1. **localizes** the root cause hierarchically — the dead links' shared
   remote endpoint names a switch, a host losing every uplink names the
   host, a lone dead link names itself — then waits the Figure-10
   :meth:`~repro.monitoring.mttlf.MttlfModel.localization_delay_s`
   (alert latency + drill-down + evidence collection);
2. **cordons** the blast radius
   (:func:`~repro.topology.blast_radius.impacted_hosts`) in the
   :class:`~repro.core.placement.GpuAllocator` so no new job lands on
   redundancy-degraded hosts;
3. **requeues** affected jobs through the caller's ``on_cordon`` hook
   (checkpoint rollback and restart charges are the job's side of the
   contract);
4. **repairs** after a seeded time-to-repair draw
   (:meth:`~repro.cluster.recovery.RecoveryManager.repair_delay_s`),
   restores the links, uncordons the hosts and re-baselines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..cluster.recovery import RecoveryManager
from ..core.placement import GpuAllocator
from ..monitoring.faults import Manifestation
from ..monitoring.mttlf import MttlfModel
from ..monitoring.pingmesh import Pingmesh
from ..network.engine import FabricEngine
from ..topology.blast_radius import impacted_hosts

__all__ = ["RecoveryRecord", "RecoveryPipeline"]


@dataclass
class RecoveryRecord:
    """Timeline of one fault through the recovery loop (seconds)."""

    target: str                      # localized root cause
    detected_s: float
    localized_s: float = 0.0
    cordoned_hosts: List[str] = field(default_factory=list)
    interrupted_jobs: List[str] = field(default_factory=list)
    repaired_s: Optional[float] = None
    dead_links: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "detected_s": self.detected_s,
            "localized_s": self.localized_s,
            "cordoned_hosts": list(self.cordoned_hosts),
            "interrupted_jobs": list(self.interrupted_jobs),
            "repaired_s": self.repaired_s,
            "dead_links": list(self.dead_links),
        }


class RecoveryPipeline:
    """Periodic monitor process closing the recovery loop."""

    def __init__(self, engine: FabricEngine, allocator: GpuAllocator,
                 pingmesh: Optional[Pingmesh] = None,
                 mttlf: Optional[MttlfModel] = None,
                 recovery: Optional[RecoveryManager] = None,
                 probe_interval_s: float = 30.0,
                 manifestation: Manifestation = Manifestation.FAIL_STOP,
                 on_cordon: Optional[
                     Callable[[RecoveryRecord], List[str]]] = None):
        if probe_interval_s <= 0:
            raise ValueError(
                f"probe_interval_s must be positive: {probe_interval_s}")
        self.engine = engine
        self.sim = engine.sim
        self.topology = engine.fabric.topology
        self.allocator = allocator
        self.pingmesh = pingmesh or Pingmesh(engine.fabric)
        n_hosts = max(2, len(self.topology.hosts()))
        self.mttlf = mttlf or MttlfModel(n_hosts=n_hosts,
                                         jitter_frac=0.0)
        self.recovery = recovery or RecoveryManager(seed=0)
        self.probe_interval_s = probe_interval_s
        self.manifestation = manifestation
        #: hook invoked at cordon time; returns the names of the jobs
        #: it interrupted (recorded on the timeline).
        self.on_cordon = on_cordon
        self.records: List[RecoveryRecord] = []
        self._occurrences: Counter = Counter()
        self._stopped = False

    def start(self) -> None:
        self.sim.process(self._monitor(), name="recovery-pipeline")

    def stop(self) -> None:
        """Wind the monitor down at its next wake (lets the simulation
        drain once the workload is done)."""
        self._stopped = True

    # -- detection ----------------------------------------------------------
    def _degraded_hosts(self, baseline: Dict[str, int],
                        census: Dict[str, int]) -> Dict[str, int]:
        return {
            host: baseline[host] - count
            for host, count in census.items()
            if count < baseline.get(host, count)
        }

    def _localize(self) -> Optional[RecoveryRecord]:
        """Name the root cause from the dead-link pattern.

        The hierarchical argument from §3.3, run over carrier evidence:
        every dead link is an edge with two endpoints; a device that
        appears on *all* of them is the shared cause (dead switch, dead
        host); otherwise a single dead link is the cause itself.
        """
        dead = [link for link in self.topology.links.values()
                if not link.healthy]
        if not dead:
            return None
        counts: Counter = Counter()
        for link in dead:
            counts[link.a.device] += 1
            counts[link.b.device] += 1
        device, count = counts.most_common(1)[0]
        if count == len(dead) and (len(dead) > 1 or len(
                self.topology.links_of(device)) == count):
            target = device
        else:
            target = f"link:{dead[0].link_id}"
        return RecoveryRecord(
            target=target, detected_s=self.sim.now,
            dead_links=sorted(link.link_id for link in dead))

    def _cordon_set(self, target: str) -> List[str]:
        if target.startswith("link:"):
            # A lone dead link cordons only its host endpoint (if any):
            # the switch side keeps serving its other links.
            link = self.topology.links[int(target.split(":", 1)[1])]
            return sorted(
                device for device in (link.a.device, link.b.device)
                if device in self.topology.devices
                and self.topology.devices[device].tier == 0)
        return impacted_hosts(self.topology, target)

    # -- the loop -----------------------------------------------------------
    def _monitor(self):
        baseline = self.pingmesh.census()
        while not self._stopped:
            yield self.sim.timeout(self.probe_interval_s)
            if self._stopped:
                return
            census = self.pingmesh.census()
            if not self._degraded_hosts(baseline, census):
                continue
            record = self._localize()
            if record is None:
                baseline = census
                continue
            # Modeled detection-to-root-cause delay (Figure 10).
            yield self.sim.timeout(
                self.mttlf.localization_delay_s(self.manifestation))
            record.localized_s = self.sim.now
            record.cordoned_hosts = self.allocator.cordon(
                self._cordon_set(record.target))
            if self.on_cordon is not None:
                record.interrupted_jobs = list(
                    self.on_cordon(record) or [])
            self.records.append(record)
            # Field repair: seeded TTR draw, then links return and the
            # hosts rejoin the schedulable pool.
            occurrence = self._occurrences[record.target]
            self._occurrences[record.target] += 1
            yield self.sim.timeout(self.recovery.repair_delay_s(
                record.target, occurrence))
            self.topology.restore_links(record.dead_links)
            self.engine.notify_topology_changed()
            self.allocator.uncordon(record.cordoned_hosts)
            record.repaired_s = self.sim.now
            baseline = self.pingmesh.census()

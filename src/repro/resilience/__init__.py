"""Live failure injection and the closed recovery loop (§3, §5).

The paper's operational claim is not that faults are rare but that the
infrastructure *survives* them: routing fails over around dead links,
the monitoring stack detects and localizes the fault, the scheduler
cordons the blast radius and requeues the affected jobs, and repaired
capacity returns to service.  This package closes that loop on the
simulated clock:

* :class:`FailureInjector` mutates the live :class:`Topology` under an
  event-driven :class:`~repro.network.engine.FabricEngine` — links and
  whole devices die, degrade, and flap while flows are in flight;
* :class:`RecoveryPipeline` is the detect → localize → cordon →
  requeue → repair process, driven by pingmesh carrier census and the
  Figure-10 MTTLF delay model;
* :class:`ResilienceCampaign` runs seeded training jobs with real
  collectives through a fault schedule and prices the measured goodput
  penalty against the analytic
  :func:`~repro.core.reliability.failure_penalty_s` prediction;
* :class:`FaultDomain` models *correlated* failures — one power,
  ASIC-batch, optics-batch or rack event expanding into many
  co-located member faults, in a loud ``hard`` mode or a ``gray``
  mode the pingmesh census cannot see.
"""

from .campaign import (JobOutcome, ResilienceCampaign, ResilienceReport,
                       ResilientJob, default_tor_faults,
                       run_campaign_matrix)
from .domains import (DOMAIN_KINDS, DOMAIN_MODES, FaultDomain,
                      domain_fault_specs, expand_domains,
                      faults_from_document, inject_domain)
from .injector import FailureInjector, FaultEvent
from .pipeline import RecoveryPipeline, RecoveryRecord

__all__ = [
    "DOMAIN_KINDS",
    "DOMAIN_MODES",
    "FaultDomain",
    "domain_fault_specs",
    "expand_domains",
    "faults_from_document",
    "inject_domain",
    "FailureInjector",
    "FaultEvent",
    "RecoveryPipeline",
    "RecoveryRecord",
    "ResilientJob",
    "JobOutcome",
    "ResilienceCampaign",
    "ResilienceReport",
    "default_tor_faults",
    "run_campaign_matrix",
]

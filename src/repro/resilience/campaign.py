"""Seeded resilience campaigns: training jobs vs a fault schedule.

A :class:`ResilientJob` is the event-driven counterpart of the
duration-based jobs in :mod:`repro.cluster.scheduler`: it allocates
hosts, alternates compute phases with *real* ring collectives on the
:class:`~repro.network.engine.FabricEngine`, checkpoints on the clock,
and — when the recovery pipeline cordons its hosts or a flow is
stranded — rolls back to its last checkpoint, pays the
:class:`~repro.cluster.recovery.RecoveryManager` restart charge, and
re-places itself on surviving hosts.

:class:`ResilienceCampaign` runs the same seeded workload twice — once
clean, once through a :class:`~repro.resilience.injector.FailureInjector`
schedule with the :class:`~repro.resilience.pipeline.RecoveryPipeline`
closing the loop — and prices the measured goodput penalty against the
analytic :func:`~repro.core.reliability.failure_penalty_s` prediction,
the cross-check §4's goodput model is calibrated by.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.recovery import RecoveryManager
from ..core.placement import (AllocationError, GpuAllocator,
                              PlacementPolicy)
from ..core.reliability import CheckpointPolicy, failure_penalty_s
from ..monitoring.faults import FaultSpec, Manifestation
from ..monitoring.mttlf import MttlfModel
from ..network.collectives import (CollectiveConfig, Endpoint,
                                   ring_allreduce_flows)
from ..network.engine import FabricEngine
from ..network.fabric import Fabric
from ..network.flows import reset_flow_ids
from ..network.routing import RoutingError
from ..topology.astral import AstralParams, build_astral
from .injector import FailureInjector
from .pipeline import RecoveryPipeline

__all__ = ["ResilientJob", "JobOutcome", "ResilienceCampaign",
           "ResilienceReport", "default_tor_faults",
           "run_campaign_matrix"]


def default_tor_faults(params: AstralParams, seed: int = 0,
                       n_faults: int = 1, first_at_s: float = 1800.0,
                       spacing_s: float = 1800.0,
                       manifestation: Manifestation =
                       Manifestation.FAIL_STOP) -> List[FaultSpec]:
    """Draw a deterministic ToR-kill schedule for a campaign.

    Contiguous placement fills the lowest block first, so faults are
    drawn from the ``p0.b0`` ToRs — the ones inside the first job's
    blast radius.  String seeding (``resilience-cli:<seed>``) keeps
    the draw identical across processes, which is what lets the farm
    reproduce a CLI campaign bit-for-bit from its spec.
    """
    from ..monitoring.faults import RootCause
    from ..topology.elements import DeviceKind
    tors = sorted(s.name for s in build_astral(params).switches(
        DeviceKind.TOR))
    in_first_block = [name for name in tors
                     if name.startswith("p0.b0.")]
    tors = in_first_block or tors
    rng = random.Random(f"resilience-cli:{seed}")
    return [
        FaultSpec(cause=RootCause.SWITCH_BUG,
                  manifestation=manifestation,
                  target=rng.choice(tors),
                  at_time_s=first_at_s + index * spacing_s)
        for index in range(n_faults)
    ]


def run_campaign_matrix(seeds, scale: str = "small",
                        workers: int = 1, use_cache: bool = False,
                        cache_dir: Optional[str] = None,
                        **campaign_params) -> List[Dict[str, Any]]:
    """Fan a seed matrix of resilience campaigns across farm workers.

    Each seed becomes one ``resilience-campaign``
    :class:`~repro.farm.spec.TaskSpec` (params mirror the
    ``repro resilience`` CLI); results come back as
    :meth:`ResilienceReport.to_dict` payloads in seed order.  Raises
    ``RuntimeError`` listing the failed seeds if any campaign did not
    complete.
    """
    from ..farm import ResultCache, run_sweep, seed_specs
    specs = seed_specs("resilience-campaign",
                       base={"scale": scale, **campaign_params},
                       seeds=list(seeds))
    cache = ResultCache(root=cache_dir) if cache_dir else None
    sweep = run_sweep(specs, workers=workers, use_cache=use_cache,
                      cache=cache)
    failed = [result.spec.params["seed"]
              for result in sweep.results if not result.ok]
    if failed:
        raise RuntimeError(
            f"resilience campaigns failed for seeds {failed}: "
            f"{[r.error for r in sweep.results if not r.ok][0]}")
    return [result.result for result in sweep.results]


@dataclass
class JobOutcome:
    """Roll-up of one job's run (all times in simulated seconds)."""

    name: str
    completed_s: Optional[float]
    iterations: int
    restarts: int
    checkpoints: int
    lost_s: float
    gave_up: bool
    timeline: List[Tuple[float, str]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "completed_s": self.completed_s,
            "iterations": self.iterations,
            "restarts": self.restarts,
            "checkpoints": self.checkpoints,
            "lost_s": self.lost_s,
            "gave_up": self.gave_up,
            "timeline": [list(entry) for entry in self.timeline],
        }


class ResilientJob:
    """One training job as a simcore process with live collectives."""

    def __init__(self, name: str, engine: FabricEngine,
                 allocator: GpuAllocator, n_hosts: int,
                 n_iterations: int, compute_s: float,
                 collective_bits: float,
                 checkpoint_interval_s: float = 1200.0,
                 recovery: Optional[RecoveryManager] = None,
                 rail: int = 0,
                 placement: PlacementPolicy = PlacementPolicy.CONTIGUOUS,
                 alloc_retry_s: float = 60.0,
                 max_alloc_retries: int = 240):
        if n_iterations < 1:
            raise ValueError("job needs at least one iteration")
        self.name = name
        self.engine = engine
        self.sim = engine.sim
        self.allocator = allocator
        self.n_hosts = n_hosts
        self.n_iterations = n_iterations
        self.compute_s = compute_s
        self.collective_bits = collective_bits
        self.checkpoint_interval_s = checkpoint_interval_s
        self.recovery = recovery or RecoveryManager(
            checkpoint=CheckpointPolicy(
                interval_s=checkpoint_interval_s))
        self.rail = rail
        self.placement = placement
        self.alloc_retry_s = alloc_retry_s
        self.max_alloc_retries = max_alloc_retries

        self.hosts: List[str] = []
        self.finished = self.sim.event(f"{name}.finished")
        self.completed_s: Optional[float] = None
        self.iteration = 0
        self.checkpoint_iteration = 0
        self.last_checkpoint_s = 0.0
        self.restarts = 0
        self.checkpoints = 0
        self.lost_s = 0.0
        self.gave_up = False
        self.timeline: List[Tuple[float, str]] = []
        self._interrupt = None
        self._active_flow_ids: set = set()

    # -- external control ---------------------------------------------------
    def interrupt(self, reason: str = "cordoned") -> bool:
        """Fail the current attempt (recovery pipeline / strand handler)."""
        if self._interrupt is None or self._interrupt.triggered:
            return False
        self._interrupt.succeed(f"interrupt:{reason}")
        return True

    def owns_host(self, host: str) -> bool:
        return host in self.hosts

    def outcome(self) -> JobOutcome:
        return JobOutcome(
            name=self.name, completed_s=self.completed_s,
            iterations=self.iteration, restarts=self.restarts,
            checkpoints=self.checkpoints, lost_s=self.lost_s,
            gave_up=self.gave_up, timeline=list(self.timeline))

    # -- the process --------------------------------------------------------
    def run(self):
        sim = self.sim
        self._mark("submitted")
        acquired = yield from self._acquire_hosts()
        if not acquired:
            return
        self.last_checkpoint_s = sim.now
        while self.iteration < self.n_iterations:
            self._interrupt = sim.event(
                f"{self.name}.interrupt.{self.restarts}."
                f"{self.iteration}")
            outcome = yield sim.any_of([
                sim.timeout(self.compute_s, value="step"),
                self._interrupt])
            if outcome != "step":
                ok = yield from self._restart(outcome)
                if not ok:
                    return
                continue
            flows = self._ring_flows()
            if flows:
                self._active_flow_ids = {f.flow_id for f in flows}
                done = self.engine.submit_many(flows)
                yield sim.any_of([done, self._interrupt])
                self._active_flow_ids = set()
                if self._interrupt.triggered:
                    ok = yield from self._restart(
                        self._interrupt.value, flows=flows)
                    if not ok:
                        return
                    continue
            self.iteration += 1
            if sim.now - self.last_checkpoint_s \
                    >= self.checkpoint_interval_s:
                self.checkpoint_iteration = self.iteration
                self.last_checkpoint_s = sim.now
                self.checkpoints += 1
                self._mark(f"checkpoint:{self.iteration}")
        self.allocator.release(self.name)
        self.hosts = []
        self.completed_s = sim.now
        self._mark("completed")
        self.finished.succeed(sim.now)

    # -- internals ----------------------------------------------------------
    def _mark(self, what: str) -> None:
        self.timeline.append((self.sim.now, what))

    def _acquire_hosts(self):
        """Allocate (retrying while the pool is cordoned-out); returns
        False — after finishing the job as given-up — when the cluster
        never frees enough healthy hosts."""
        for _ in range(self.max_alloc_retries):
            try:
                allocation = self.allocator.allocate(
                    self.name, self.n_hosts, self.placement)
            except AllocationError:
                yield self.sim.timeout(self.alloc_retry_s)
                continue
            self.hosts = list(allocation.hosts)
            self._mark(f"placed:{','.join(self.hosts)}")
            return True
        self.gave_up = True
        self._mark("gave-up:no-hosts")
        self.finished.succeed(None)
        return False

    def _ring_flows(self):
        endpoints = [Endpoint(host=h, rail=self.rail)
                     for h in self.hosts]
        return ring_allreduce_flows(
            endpoints, self.collective_bits,
            CollectiveConfig(job=self.name))

    def _restart(self, reason: str, flows=None):
        """Roll back to the last checkpoint and re-place the job."""
        sim = self.sim
        self.restarts += 1
        self._mark(f"{reason}@iter{self.iteration}")
        if flows is not None:
            for flow in flows:
                if self.engine.is_active(flow.flow_id):
                    self.engine.cancel(flow.flow_id)
        # Everything since the last checkpoint is lost — including the
        # progress made while the fault was being detected/localized.
        self.lost_s += sim.now - self.last_checkpoint_s
        self.iteration = self.checkpoint_iteration
        self.allocator.release(self.name)
        self.hosts = []
        if self.restarts > self.recovery.policy.max_restarts:
            self.gave_up = True
            self._mark("gave-up:max-restarts")
            self.finished.succeed(None)
            return False
        # Scheduling + checkpoint load + communicator re-init.
        yield sim.timeout(self.recovery.checkpoint.restart_s)
        acquired = yield from self._acquire_hosts()
        if not acquired:
            return False
        self.last_checkpoint_s = sim.now
        return True


@dataclass
class ResilienceReport:
    """Measured vs predicted cost of a fault campaign."""

    seed: int
    n_faults: int
    baseline_completion_s: Dict[str, float]
    faulted_completion_s: Dict[str, Optional[float]]
    predicted_penalty_s: float
    jobs: List[JobOutcome]
    recoveries: List[Dict[str, object]]
    reroutes: int
    stranded: int
    fault_log: List[Tuple[float, str, str]]

    @property
    def measured_penalty_s(self) -> float:
        """Extra wall-clock of the restarted jobs vs their clean runs."""
        penalties = [
            self.faulted_completion_s[job.name]
            - self.baseline_completion_s[job.name]
            for job in self.jobs
            if job.restarts > 0
            and self.faulted_completion_s.get(job.name) is not None
        ]
        return sum(penalties) / len(penalties) if penalties else 0.0

    @property
    def wedged_jobs(self) -> List[str]:
        """Jobs that neither completed nor cleanly gave up."""
        return [job.name for job in self.jobs
                if job.completed_s is None and not job.gave_up]

    @property
    def goodput_fraction(self) -> float:
        """Clean wall-clock over faulted wall-clock, averaged."""
        ratios = [
            self.baseline_completion_s[job.name]
            / self.faulted_completion_s[job.name]
            for job in self.jobs
            if self.faulted_completion_s.get(job.name)
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "n_faults": self.n_faults,
            "baseline_completion_s": dict(self.baseline_completion_s),
            "faulted_completion_s": dict(self.faulted_completion_s),
            "measured_penalty_s": self.measured_penalty_s,
            "predicted_penalty_s": self.predicted_penalty_s,
            "goodput_fraction": self.goodput_fraction,
            "wedged_jobs": self.wedged_jobs,
            "reroutes": self.reroutes,
            "stranded": self.stranded,
            "jobs": [job.as_dict() for job in self.jobs],
            "recoveries": list(self.recoveries),
            "fault_log": [list(entry) for entry in self.fault_log],
        }


class ResilienceCampaign:
    """One seeded workload, run clean and run through a fault schedule."""

    def __init__(self, params: Optional[AstralParams] = None,
                 faults: Optional[List[FaultSpec]] = None,
                 n_jobs: int = 1, hosts_per_job: int = 4,
                 n_iterations: int = 120, compute_s: float = 20.0,
                 collective_bits: float = 2e11,
                 checkpoint_interval_s: float = 1200.0,
                 probe_interval_s: float = 30.0,
                 dampening_s: float = 10.0,
                 manifestation: Manifestation = Manifestation.FAIL_STOP,
                 recovery: Optional[RecoveryManager] = None,
                 seed: int = 0):
        self.params = params or AstralParams.small()
        self.faults = list(faults or [])
        self.n_jobs = n_jobs
        self.hosts_per_job = hosts_per_job
        self.n_iterations = n_iterations
        self.compute_s = compute_s
        self.collective_bits = collective_bits
        self.checkpoint_interval_s = checkpoint_interval_s
        self.probe_interval_s = probe_interval_s
        self.dampening_s = dampening_s
        self.manifestation = manifestation
        self.seed = seed
        self.recovery = recovery or RecoveryManager(
            checkpoint=CheckpointPolicy(
                interval_s=checkpoint_interval_s),
            seed=seed)

    # -- analytic prediction ------------------------------------------------
    def predicted_penalty_s(self, n_hosts: int) -> float:
        """What :func:`training_goodput`'s model charges one failure."""
        mttlf = MttlfModel(n_hosts=max(2, n_hosts), jitter_frac=0.0)
        return failure_penalty_s(
            self.checkpoint_interval_s,
            mttlf.automated_hours(self.manifestation),
            self.recovery.checkpoint.restart_s)

    # -- execution ----------------------------------------------------------
    def run(self) -> ResilienceReport:
        baseline = self._run_once(inject=False)
        faulted = self._run_once(inject=True)
        topology_hosts = len(build_astral(self.params).hosts())
        return ResilienceReport(
            seed=self.seed,
            n_faults=len(self.faults),
            baseline_completion_s={
                job.name: job.completed_s
                for job in baseline["jobs"]},
            faulted_completion_s={
                job.name: job.completed_s
                for job in faulted["jobs"]},
            predicted_penalty_s=self.predicted_penalty_s(
                topology_hosts),
            jobs=[job for job in faulted["jobs"]],
            recoveries=faulted["recoveries"],
            reroutes=faulted["reroutes"],
            stranded=faulted["stranded"],
            fault_log=faulted["fault_log"],
        )

    def _make_jobs(self, engine: FabricEngine,
                   allocator: GpuAllocator) -> List[ResilientJob]:
        return [
            ResilientJob(
                name=f"job{index}", engine=engine, allocator=allocator,
                n_hosts=self.hosts_per_job,
                n_iterations=self.n_iterations,
                compute_s=self.compute_s,
                collective_bits=self.collective_bits,
                checkpoint_interval_s=self.checkpoint_interval_s,
                recovery=self.recovery)
            for index in range(self.n_jobs)
        ]

    def _run_once(self, inject: bool) -> Dict[str, object]:
        reset_flow_ids()
        topology = build_astral(self.params)
        fabric = Fabric(topology, solver=self.params.solver)
        engine = FabricEngine(fabric)
        allocator = GpuAllocator(topology)
        jobs = self._make_jobs(engine, allocator)
        by_name = {job.name: job for job in jobs}

        pipeline = None
        injector = None
        if inject:
            injector = FailureInjector(engine,
                                       dampening_s=self.dampening_s)
            for spec in self.faults:
                injector.schedule(spec)

            def on_cordon(record) -> List[str]:
                cordoned = set(record.cordoned_hosts)
                hit = []
                for job in jobs:
                    if cordoned & set(job.hosts) \
                            and job.interrupt("cordoned"):
                        hit.append(job.name)
                return hit

            pipeline = RecoveryPipeline(
                engine, allocator,
                mttlf=MttlfModel(
                    n_hosts=max(2, len(topology.hosts())),
                    jitter_frac=0.0),
                recovery=self.recovery,
                probe_interval_s=self.probe_interval_s,
                manifestation=self.manifestation,
                on_cordon=on_cordon)
            pipeline.start()

            def on_stranded(flow, exc: RoutingError) -> None:
                engine.cancel(flow.flow_id)
                owner = by_name.get(flow.job)
                if owner is not None:
                    owner.interrupt("stranded")

            engine.on_stranded(on_stranded)

        for job in jobs:
            engine.sim.process(job.run(), name=f"job:{job.name}")

        def supervisor():
            yield engine.sim.all_of([job.finished for job in jobs])
            if pipeline is not None:
                pipeline.stop()

        engine.sim.process(supervisor(), name="campaign-supervisor")
        engine.sim.run()
        return {
            "jobs": [job.outcome() for job in jobs],
            "recoveries": [record.as_dict()
                           for record in pipeline.records]
            if pipeline else [],
            "reroutes": sum(engine.reroutes.values()),
            "stranded": len(engine.stranded),
            "fault_log": [(event.at_s, event.action, event.target)
                          for event in injector.log]
            if injector else [],
        }

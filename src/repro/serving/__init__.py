"""Planetary-scale inference serving on the digital twin.

The paper's tidal power story (Figure 16) closed end to end: diurnal
regional demand (:mod:`.trace`), prefill/decode disaggregation across
pod pairs (:mod:`.pools`), KV-transfer traffic contending with training
collectives on one fabric clock (:mod:`.cosim`), a tidal autoscaler
whose residual power budget preempts/admits training jobs through the
cluster scheduler (:mod:`.autoscale`), and TTFT/TPOT/goodput SLOs over
a symmetry-folded request population (:mod:`.run`, :mod:`.report`).

Entry points: ``repro serve`` (CLI), the ``serving-run`` farm kind, and
the ``serving`` validation profile.
"""

from .autoscale import (
    AutoscaleConfig,
    AutoscalePlan,
    BucketPlan,
    TidalAutoscaler,
)
from .cosim import CosimConfig, CosimResult, KvCosim
from .pools import (
    PoolPlan,
    SlicePlacement,
    place_slice,
    plan_pools,
    slice_params,
)
from .report import ServingReport, weighted_percentile
from .run import SERVING_MODELS, ServingRun, ServingScenario
from .trace import (
    DEFAULT_REGIONS,
    RegionProfile,
    RequestTrace,
    TraceBucket,
    TraceConfig,
)

__all__ = [
    "AutoscaleConfig",
    "AutoscalePlan",
    "BucketPlan",
    "CosimConfig",
    "CosimResult",
    "DEFAULT_REGIONS",
    "KvCosim",
    "PoolPlan",
    "RegionProfile",
    "RequestTrace",
    "SERVING_MODELS",
    "ServingReport",
    "ServingRun",
    "ServingScenario",
    "SlicePlacement",
    "TidalAutoscaler",
    "TraceBucket",
    "TraceConfig",
    "place_slice",
    "plan_pools",
    "slice_params",
    "weighted_percentile",
]

"""SLO roll-up for a serving run: the numbers an operator pages on.

TTFT (time-to-first-token) and TPOT (time-per-output-token) percentiles
come from the folded pool simulations — each distinct per-replica rate
class is simulated once and its samples weighted by the requests the
class actually served across all pairs and buckets, so percentiles are
exact over the full (replicated) population without simulating millions
of requests.  KV-transfer latency from the fabric co-simulation is a
separate additive component of TTFT and is reported both ways.

``to_dict`` is pure JSON and fully deterministic — it is the farm cache
payload and the object every bit-identity test compares with ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ServingReport", "weighted_percentile"]


def weighted_percentile(samples: Sequence[Tuple[float, float]],
                        q: float) -> Optional[float]:
    """Nearest-rank percentile over ``(value, weight)`` samples.

    Deterministic (stable sort on value, then cumulative weight); no
    interpolation, so the result is always an actual sample value and
    survives ``==`` comparison across backends.  Empty input → None.
    """
    if not samples:
        return None
    ordered = sorted(samples, key=lambda s: s[0])
    total = sum(weight for _, weight in ordered)
    if total <= 0:
        return ordered[0][0]
    target = q / 100.0 * total
    cumulative = 0.0
    for value, weight in ordered:
        cumulative += weight
        if cumulative >= target:
            return value
    return ordered[-1][0]


@dataclass
class ServingReport:
    """End-to-end results of one diurnal serving scenario."""

    scenario: Dict                   # config echo (excluded from oracles)
    trace: Dict
    pools: Dict
    autoscale: Dict
    slo: Dict
    cosim: Dict
    training: Optional[Dict]
    power: Dict
    fold: Dict

    # -- convenience accessors ------------------------------------------
    @property
    def p50_ttft_s(self) -> Optional[float]:
        return self.slo.get("ttft_p50_s")

    @property
    def p99_ttft_s(self) -> Optional[float]:
        return self.slo.get("ttft_p99_s")

    @property
    def goodput_fraction(self) -> Optional[float]:
        return self.slo.get("goodput_fraction")

    @property
    def flatness_cv_total(self) -> Optional[float]:
        return self.power.get("flatness_cv_total")

    def to_dict(self) -> Dict:
        return {
            "scenario": self.scenario,
            "trace": self.trace,
            "pools": self.pools,
            "autoscale": self.autoscale,
            "slo": self.slo,
            "cosim": self.cosim,
            "training": self.training,
            "power": self.power,
            "fold": self.fold,
        }

    def fingerprint(self) -> Dict:
        """The physics, minus the config echo and power economics.

        This is what the power-cap identity oracle compares: a cap that
        never binds must leave every simulated quantity bit-identical,
        while ``scenario`` (the knob itself) and ``power`` (contract
        arithmetic mentioning the knob) legitimately differ.
        """
        return {
            "trace": self.trace,
            "pools": self.pools,
            "autoscale": self.autoscale,
            "slo": self.slo,
            "cosim": self.cosim,
            "training": self.training,
            "fold": self.fold,
        }

    def render(self) -> str:
        """Operator-facing text summary."""
        slo = self.slo
        lines = [
            f"serving — {self.scenario.get('preset') or 'custom'} "
            f"seed={self.scenario.get('seed')}",
            f"  requests  : {self.trace['total_requests']:,} over "
            f"{self.trace['n_buckets']} buckets "
            f"(peak {self.trace['peak_rate_per_s']:.1f}/s, trough "
            f"{self.trace['trough_rate_per_s']:.1f}/s)",
            f"  pools     : {self.pools['n_pairs']} pod pair(s), "
            f"replicas/pair {self.autoscale['trough_replicas_per_pair']}"
            f"–{self.autoscale['peak_replicas_per_pair']}, "
            f"train fleet {self.pools['train_hosts']} hosts",
            f"  fold      : {self.fold['n_pool_sims']} pool sim(s) for "
            f"{self.fold['replica_buckets']} replica-buckets "
            f"({self.fold['fold_factor']:.0f}x)",
        ]
        if slo.get("ttft_p50_s") is not None:
            lines.append(
                f"  TTFT      : p50 {slo['ttft_p50_s'] * 1e3:.0f} ms, "
                f"p95 {slo['ttft_p95_s'] * 1e3:.0f} ms, "
                f"p99 {slo['ttft_p99_s'] * 1e3:.0f} ms "
                f"(+KV p95 {slo['kv_p95_s'] * 1e3:.0f} ms)")
            lines.append(
                f"  TPOT      : p50 {slo['tpot_p50_s'] * 1e3:.1f} ms, "
                f"p99 {slo['tpot_p99_s'] * 1e3:.1f} ms; goodput "
                f"{slo['goodput_fraction']:.1%} under SLO "
                f"{slo['slo_ttft_s']:.1f}s")
        else:
            lines.append("  TTFT      : no completed requests")
        lines.append(
            f"  cosim     : training efficiency "
            f"{self.cosim['training_efficiency']:.3f} vs clean, "
            f"{self.cosim['n_kv_flows']} KV flows timed")
        if self.training is not None:
            lines.append(
                f"  training  : {self.training['status']} "
                f"(preemptions {self.training['preemptions']})")
        power = self.power
        if power.get("flatness_cv_total") is not None:
            fill = power.get("trough_fill_fraction")
            lines.append(
                f"  power     : CV serving-only "
                f"{power['flatness_cv_serving']:.3f} -> total "
                f"{power['flatness_cv_total']:.3f} "
                f"(trough fill "
                f"{'n/a' if fill is None else format(fill, '.1%')}, "
                f"contract {power.get('contract_mw')} MW)")
        return "\n".join(lines)

"""Prefill/decode disaggregation: pool sizing and pod placement.

Disaggregated serving splits each request across two pools — a
compute-bound prefill pool and a memory-bound decode pool — with the
KV cache shipped between them over the fabric.  On an Astral cluster
the natural unit is a *pod pair*: prefill pools fill one pod, decode
replicas the next, so every KV transfer crosses the Agg/Core tiers and
contends with whatever training traffic shares them (the "99 Problems"
observation that serving and training stress different tiers).

Two views are produced:

* :func:`plan_pools` — full-scale arithmetic over ``AstralParams``:
  how many identical pod pairs the cluster folds into, host budgets per
  pool, and the residual training fleet.  All pairs are symmetric by
  construction, so per-pair simulation results replicate exactly — the
  same folding argument :mod:`repro.hierarchy` proves for training.
* :func:`place_slice` — an operator-faithful placement of one
  *representative* pair on a small 2-pod slice topology via
  :class:`~repro.core.placement.GpuAllocator` (packed prefill, cordon
  the remainder, packed decode into the far pod, fragmented training
  tenant spanning both), producing the concrete host names the KV
  co-simulation injects flows between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.placement import GpuAllocator, PlacementPolicy
from ..topology.astral import AstralParams, build_astral
from ..topology.elements import Topology

__all__ = ["PoolPlan", "SlicePlacement", "plan_pools", "place_slice",
           "slice_params"]


@dataclass(frozen=True)
class PoolPlan:
    """Full-scale pool accounting over one cluster."""

    n_pairs: int                     # identical (prefill, decode) pod pairs
    prefill_hosts_per_pair: int
    decode_hosts_per_pair: int       # decode pool ceiling per pair
    replica_hosts: int               # hosts per decode replica
    train_hosts: int                 # residual training fleet
    total_hosts: int

    @property
    def max_replicas_per_pair(self) -> int:
        return self.decode_hosts_per_pair // self.replica_hosts

    @property
    def serving_hosts_max(self) -> int:
        return self.n_pairs * (self.prefill_hosts_per_pair
                               + self.decode_hosts_per_pair)

    def serving_hosts_at(self, replicas_per_pair: int) -> int:
        """Hosts powered for serving at a given replica count."""
        return self.n_pairs * (self.prefill_hosts_per_pair
                               + replicas_per_pair * self.replica_hosts)

    def to_dict(self) -> Dict:
        return {
            "n_pairs": self.n_pairs,
            "prefill_hosts_per_pair": self.prefill_hosts_per_pair,
            "decode_hosts_per_pair": self.decode_hosts_per_pair,
            "replica_hosts": self.replica_hosts,
            "max_replicas_per_pair": self.max_replicas_per_pair,
            "train_hosts": self.train_hosts,
            "total_hosts": self.total_hosts,
        }


def plan_pools(params: AstralParams,
               prefill_hosts_per_pair: Optional[int] = None,
               decode_hosts_per_pair: Optional[int] = None,
               replica_hosts: int = 2) -> PoolPlan:
    """Carve a cluster into symmetric serving pod pairs plus training.

    Defaults scale with the pod: the decode pool may grow to half a
    pod, prefill to 1/32nd (prefill is compute-dense; one prefill host
    feeds many decode replicas).
    """
    if params.pods < 2:
        raise ValueError("disaggregated serving needs at least 2 pods")
    hosts_per_pod = params.blocks_per_pod * params.hosts_per_block
    total_hosts = params.pods * hosts_per_pod
    if prefill_hosts_per_pair is None:
        prefill_hosts_per_pair = max(1, hosts_per_pod // 32)
    if decode_hosts_per_pair is None:
        decode_hosts_per_pair = hosts_per_pod // 2
    if replica_hosts < 1:
        raise ValueError("replica_hosts must be positive")
    if prefill_hosts_per_pair > hosts_per_pod \
            or decode_hosts_per_pair > hosts_per_pod:
        raise ValueError("pool does not fit in one pod")
    if decode_hosts_per_pair < replica_hosts:
        raise ValueError("decode pool smaller than one replica")
    n_pairs = params.pods // 2
    train_hosts = total_hosts - n_pairs * (
        prefill_hosts_per_pair + decode_hosts_per_pair)
    return PoolPlan(
        n_pairs=n_pairs,
        prefill_hosts_per_pair=prefill_hosts_per_pair,
        decode_hosts_per_pair=decode_hosts_per_pair,
        replica_hosts=replica_hosts,
        train_hosts=max(0, train_hosts),
        total_hosts=total_hosts,
    )


def slice_params(params: AstralParams,
                 hosts_per_block: int = 16,
                 gpus_per_host: int = 2) -> AstralParams:
    """A 2-pod, 1-block representative slice of ``params``.

    Small enough to flow-simulate in milliseconds, shaped enough that
    prefill→decode KV transfers genuinely climb the Agg/Core tiers.
    """
    return AstralParams(
        pods=2,
        blocks_per_pod=1,
        hosts_per_block=min(params.hosts_per_block, hosts_per_block),
        gpus_per_host=min(params.gpus_per_host, gpus_per_host),
        aggs_per_group=min(params.aggs_per_group, 4),
        cores_per_group=min(params.cores_per_group, 4),
        tier3_oversubscription=params.tier3_oversubscription,
        solver=params.solver,
    )


@dataclass
class SlicePlacement:
    """One representative pod pair placed on a slice topology."""

    topology: Topology
    prefill_hosts: List[str]         # pod 0
    decode_hosts: List[str]          # pod 1
    train_hosts: List[str]           # spans both pods

    def to_dict(self) -> Dict:
        return {
            "prefill_hosts": list(self.prefill_hosts),
            "decode_hosts": list(self.decode_hosts),
            "train_hosts": list(self.train_hosts),
        }


def place_slice(params: AstralParams,
                prefill_hosts: int = 2,
                decode_hosts: int = 4,
                train_hosts: int = 8) -> SlicePlacement:
    """Place prefill / decode / training on a 2-pod slice via the allocator.

    The operator runbook: pack the prefill pool into pod 0, cordon the
    rest of pod 0 so the decode pool packs into pod 1 (pools must not
    share a pod — that is the disaggregation), uncordon, then admit a
    training tenant fragmented across both pods (the production
    fragmentation Figure 2 studies), so training collectives share
    uplinks with the KV path.
    """
    if params.pods != 2:
        raise ValueError("slice placement expects a 2-pod slice")
    topology = build_astral(params)
    allocator = GpuAllocator(topology)
    prefill = allocator.allocate("serve-prefill", prefill_hosts,
                                 PlacementPolicy.PACKED)
    pod0_free = [
        name for pod, names in allocator.free_hosts_by_pod().items()
        if pod == 0 for name in names
    ]
    allocator.cordon(pod0_free)
    decode = allocator.allocate("serve-decode", decode_hosts,
                                PlacementPolicy.PACKED)
    allocator.uncordon(pod0_free)
    train = allocator.allocate("train", train_hosts,
                               PlacementPolicy.FRAGMENTED)
    if allocator.pods_spanned("serve-decode") != 1:
        raise AssertionError("decode pool leaked out of its pod")
    return SlicePlacement(
        topology=topology,
        prefill_hosts=list(prefill.hosts),
        decode_hosts=list(decode.hosts),
        train_hosts=list(train.hosts),
    )

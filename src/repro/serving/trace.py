"""Diurnal request traces: millions of users, per-region tides.

The paper's Figure 16 argument starts from user behaviour: inference
demand follows the waking hours of each serving region, producing the
daily tide that training jobs later flatten.  This module synthesizes
that demand as a bucketed arrival-rate trace:

* each :class:`RegionProfile` contributes ``users_m`` million users at
  ``requests_per_user_day`` requests/day, shaped by the *same*
  :class:`~repro.power.tidal.TidalProfile` ramp the power model uses —
  evaluated at the region's local hour (``tz_offset_h``), so the peaks
  of Asia, Europe, and the Americas interleave;
* per-bucket request counts are drawn once from a string-seeded
  generator (``serving-trace:{seed}:{region}:{bucket}``), using a
  normal approximation to the Poisson count (exact at the millions-of-
  requests-per-bucket scale this models) — deterministic across
  processes regardless of ``PYTHONHASHSEED``.

Individual request arrivals are *not* materialized here: the trace is
the demand envelope the autoscaler plans against; per-request timing is
simulated per decode replica by :class:`repro.seer.ServingSimulator`
on a folded representative (see :mod:`repro.serving.run`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from ..power.tidal import TidalProfile, demand_fraction

__all__ = ["RegionProfile", "DEFAULT_REGIONS", "TraceConfig",
           "TraceBucket", "RequestTrace"]

_SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class RegionProfile:
    """One serving region's user base and clock offset."""

    name: str
    users_m: float                  # millions of users
    tz_offset_h: float              # local = UTC-ish sim clock + offset
    requests_per_user_day: float = 4.0

    @property
    def peak_rate_per_s(self) -> float:
        """Requests/s this region offers at its daytime plateau."""
        return self.users_m * 1e6 * self.requests_per_user_day \
            / _SECONDS_PER_DAY


#: Three-continent default (~42M users): peaks interleave across the
#: sim day, sized so a 64k cluster's decode ceiling is ~95% used at the
#: global peak and the daytime contract visibly squeezes training.
DEFAULT_REGIONS: Tuple[RegionProfile, ...] = (
    RegionProfile(name="apac", users_m=14.0, tz_offset_h=8.0),
    RegionProfile(name="emea", users_m=10.5, tz_offset_h=1.0),
    RegionProfile(name="amer", users_m=17.5, tz_offset_h=-5.0),
)


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the diurnal trace."""

    regions: Tuple[RegionProfile, ...] = DEFAULT_REGIONS
    duration_s: float = _SECONDS_PER_DAY
    bucket_s: float = 1800.0
    start_hour: float = 0.0         # sim t=0 on the wall clock
    profile: TidalProfile = field(default_factory=TidalProfile)
    seed: Union[int, str] = 0

    def __post_init__(self) -> None:
        if self.bucket_s <= 0 or self.duration_s < 0:
            raise ValueError("bucket_s must be positive, duration_s >= 0")

    @property
    def n_buckets(self) -> int:
        return max(1, int(math.ceil(self.duration_s / self.bucket_s)))


@dataclass(frozen=True)
class TraceBucket:
    """Aggregate demand in one time bucket."""

    index: int
    t_start_s: float
    bucket_s: float
    counts: Dict[str, int]          # region name -> requests

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def rate_per_s(self) -> float:
        return self.total / self.bucket_s


@dataclass(frozen=True)
class RequestTrace:
    """A generated demand trace: the envelope everything plans against."""

    config: TraceConfig
    buckets: Tuple[TraceBucket, ...]

    @classmethod
    def generate(cls, config: TraceConfig) -> "RequestTrace":
        buckets: List[TraceBucket] = []
        for index in range(config.n_buckets):
            t_start = index * config.bucket_s
            mid_hour = config.start_hour \
                + (t_start + config.bucket_s / 2.0) / 3600.0
            counts: Dict[str, int] = {}
            for region in config.regions:
                local_hour = (mid_hour + region.tz_offset_h) % 24.0
                expected = region.peak_rate_per_s \
                    * demand_fraction(config.profile, local_hour) \
                    * config.bucket_s
                counts[region.name] = _poisson_count(
                    expected,
                    f"serving-trace:{config.seed}:{region.name}:{index}")
            buckets.append(TraceBucket(
                index=index, t_start_s=t_start,
                bucket_s=config.bucket_s, counts=counts))
        return cls(config=config, buckets=tuple(buckets))

    # -- aggregates ------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return sum(bucket.total for bucket in self.buckets)

    @property
    def peak_rate_per_s(self) -> float:
        return max((b.rate_per_s for b in self.buckets), default=0.0)

    @property
    def trough_rate_per_s(self) -> float:
        return min((b.rate_per_s for b in self.buckets), default=0.0)

    def totals_by_region(self) -> Dict[str, int]:
        totals: Dict[str, int] = {
            region.name: 0 for region in self.config.regions}
        for bucket in self.buckets:
            for name, count in bucket.counts.items():
                totals[name] += count
        return totals

    def to_dict(self) -> Dict:
        return {
            "n_buckets": len(self.buckets),
            "bucket_s": self.config.bucket_s,
            "total_requests": self.total_requests,
            "peak_rate_per_s": round(self.peak_rate_per_s, 6),
            "trough_rate_per_s": round(self.trough_rate_per_s, 6),
            "by_region": self.totals_by_region(),
            "rates_per_s": [round(b.rate_per_s, 6) for b in self.buckets],
        }


def _poisson_count(expected: float, seed_key: str) -> int:
    """Seeded Poisson draw via the normal approximation.

    At planetary scale a bucket holds 1e5–1e6 requests, where
    ``N(λ, λ)`` is indistinguishable from ``Poisson(λ)``; zero expected
    demand draws exactly zero, which is what makes the zero-arrival
    metamorphic oracle a strict no-op.
    """
    if expected <= 0.0:
        return 0
    rng = random.Random(seed_key)
    jittered = expected + rng.gauss(0.0, 1.0) * math.sqrt(expected)
    return max(0, int(round(jittered)))

"""Tidal autoscaling: decode replicas vs. the constant-power contract.

The loop the paper's Figure 16 implies but never spells out: as the
request tide rises, decode replicas scale out and draw power; whatever
headroom the constant-power contract leaves becomes the *training* host
budget, handed to the cluster scheduler as a piecewise-constant
:class:`~repro.cluster.powercap.ScheduleHostCap`.  At dawn the serving
fleet grows, the budget steps down, and the scheduler preempts training
jobs back under the line; at dusk the budget steps up and the trough
fills with admitted training work.

Everything here is pure arithmetic over the demand trace — no RNG, no
simulation — so the plan is trivially bit-identical across processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cluster.powercap import ScheduleHostCap
from .pools import PoolPlan
from .trace import RequestTrace

__all__ = ["AutoscaleConfig", "BucketPlan", "AutoscalePlan",
           "TidalAutoscaler"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Autoscaler policy and the power economics it answers to."""

    target_util: float = 0.7        # replica load factor the SLO allows
    min_replicas_per_pair: int = 1
    host_kw: float = 10.0           # per powered host, IT + cooling share
    #: contract as a fraction of the whole cluster at full power;
    #: ``None`` disables the cap entirely, ``1.0`` keeps a cap that can
    #: never bind (provably equal to ``None`` — the validation oracle).
    contract_frac: Optional[float] = 0.85

    def contract_mw(self, total_hosts: int) -> Optional[float]:
        if self.contract_frac is None:
            return None
        return self.contract_frac * total_hosts * self.host_kw / 1000.0


@dataclass(frozen=True)
class BucketPlan:
    """The autoscaler's decision for one trace bucket."""

    index: int
    t_start_s: float
    rate_per_s: float               # global offered load
    per_pair_rate: float
    replicas_per_pair: int
    per_replica_rate: float
    serving_hosts: int              # powered for serving, all pairs
    serving_mw: float
    train_hosts_allowed: int

    def to_dict(self) -> Dict:
        return {
            "t_start_s": self.t_start_s,
            "rate_per_s": round(self.rate_per_s, 6),
            "replicas_per_pair": self.replicas_per_pair,
            "per_replica_rate": round(self.per_replica_rate, 6),
            "serving_hosts": self.serving_hosts,
            "serving_mw": round(self.serving_mw, 6),
            "train_hosts_allowed": self.train_hosts_allowed,
        }


@dataclass(frozen=True)
class AutoscalePlan:
    """Per-bucket replica counts and the training host budget."""

    buckets: Tuple[BucketPlan, ...]
    pool_plan: PoolPlan
    config: AutoscaleConfig

    @property
    def peak_replicas_per_pair(self) -> int:
        return max((b.replicas_per_pair for b in self.buckets), default=0)

    @property
    def trough_replicas_per_pair(self) -> int:
        return min((b.replicas_per_pair for b in self.buckets), default=0)

    def train_cap_schedule(self) -> Tuple[Tuple[float, ...],
                                          Tuple[int, ...]]:
        """(times_s, allowed) step function of the training budget."""
        times = tuple(b.t_start_s for b in self.buckets)
        allowed = tuple(b.train_hosts_allowed for b in self.buckets)
        return times, allowed

    def train_host_cap(self, total_hosts: int,
                       scale: float = 1.0) -> Optional[ScheduleHostCap]:
        """The budget as a scheduler cap, optionally folded down.

        ``scale`` maps the full training fleet onto a representative
        slice of ``total_hosts`` (the same symmetry-folding trick the
        hierarchy uses): ``allowed`` is divided by ``scale`` and
        clipped to the slice.  With no contract there is no cap.
        """
        if self.config.contract_frac is None:
            return None
        times, allowed = self.train_cap_schedule()
        folded = tuple(
            max(0, min(total_hosts, int(math.floor(n / scale))))
            for n in allowed)
        return ScheduleHostCap(total_hosts=total_hosts,
                               times_s=times, allowed=folded)

    def to_dict(self) -> Dict:
        return {
            "peak_replicas_per_pair": self.peak_replicas_per_pair,
            "trough_replicas_per_pair": self.trough_replicas_per_pair,
            "buckets": [b.to_dict() for b in self.buckets],
        }


class TidalAutoscaler:
    """Plan replica counts and the residual training budget."""

    def __init__(self, config: Optional[AutoscaleConfig] = None):
        self.config = config or AutoscaleConfig()

    def plan(self, trace: RequestTrace, pools: PoolPlan,
             per_replica_capacity: float) -> AutoscalePlan:
        """``per_replica_capacity`` is sustainable requests/s per decode
        replica (from Seer step costs); the autoscaler provisions to run
        replicas at ``target_util`` of it.
        """
        if per_replica_capacity <= 0:
            raise ValueError("per-replica capacity must be positive")
        cfg = self.config
        usable = cfg.target_util * per_replica_capacity
        contract_mw = cfg.contract_mw(pools.total_hosts)
        buckets: List[BucketPlan] = []
        for bucket in trace.buckets:
            per_pair = bucket.rate_per_s / pools.n_pairs
            want = int(math.ceil(per_pair / usable)) if per_pair > 0 \
                else 0
            replicas = max(cfg.min_replicas_per_pair,
                           min(pools.max_replicas_per_pair, want))
            serving_hosts = pools.serving_hosts_at(replicas)
            serving_mw = serving_hosts * cfg.host_kw / 1000.0
            if contract_mw is None:
                allowed = pools.train_hosts
            else:
                headroom_hosts = int(math.floor(
                    contract_mw * 1000.0 / cfg.host_kw)) - serving_hosts
                allowed = max(0, min(pools.train_hosts, headroom_hosts))
            buckets.append(BucketPlan(
                index=bucket.index,
                t_start_s=bucket.t_start_s,
                rate_per_s=bucket.rate_per_s,
                per_pair_rate=per_pair,
                replicas_per_pair=replicas,
                per_replica_rate=per_pair / replicas if replicas else 0.0,
                serving_hosts=serving_hosts,
                serving_mw=serving_mw,
                train_hosts_allowed=allowed,
            ))
        return AutoscalePlan(buckets=tuple(buckets), pool_plan=pools,
                             config=cfg)

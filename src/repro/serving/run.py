"""End-to-end diurnal serving scenario on the digital twin.

One :class:`ServingRun` closes the paper's tidal loop on a single
deterministic pipeline:

1. **Trace** — regional diurnal demand (:mod:`.trace`).
2. **Pools** — the cluster folds into symmetric prefill/decode pod
   pairs plus a residual training fleet (:mod:`.pools`).
3. **Autoscale** — per-bucket decode replica counts against the
   constant-power contract; the leftover becomes the training host
   budget (:mod:`.autoscale`).
4. **Pool simulation, folded** — every (pair, bucket, replica) cell
   runs at one of a handful of distinct per-replica arrival rates, so
   each distinct rate class is simulated *once* with
   :class:`~repro.seer.ServingSimulator` and its TTFT/TPOT samples are
   weighted by the requests the class served — exact percentiles over
   the full population at a tiny fraction of the cost (the serving
   analogue of the hierarchy's symmetry folding).
5. **Fabric co-simulation** — KV transfers of the peak rate class
   contend with a training tenant on one representative pod pair
   (:mod:`.cosim`).
6. **Training co-schedule** — the budget schedule drives
   :class:`~repro.cluster.scheduler.ClusterScheduler` (cap-enforcing
   preemption on) over a seeded workload on a folded slice of the
   training fleet.
7. **Power roll-up** — serving + training MW per bucket, flatness CV,
   and how much of the serving deficit training actually filled.

Every draw is string-seeded, every aggregate is pure arithmetic, and
the two max-min solver backends see identical flows — so the resulting
:class:`~repro.serving.report.ServingReport` is bit-identical across
processes, workers, and backends.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cluster.scheduler import ClusterScheduler, SchedulingPolicy
from ..cluster.workload import WorkloadGenerator
from ..hierarchy.presets import preset_params
from ..network.flows import reset_flow_ids
from ..seer import (
    DEEPSEEK_MOE,
    GPT3_175B,
    HUNYUAN_MOE,
    LLAMA2_70B,
    LLAMA3_70B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
    ServingConfig,
    ServingSimulator,
)
from ..topology.astral import AstralParams, build_astral
from .autoscale import AutoscaleConfig, AutoscalePlan, TidalAutoscaler
from .cosim import CosimConfig, KvCosim
from .pools import PoolPlan, place_slice, plan_pools, slice_params
from .report import ServingReport, weighted_percentile
from .trace import (
    DEFAULT_REGIONS,
    RegionProfile,
    RequestTrace,
    TraceConfig,
)

__all__ = ["ServingScenario", "ServingRun", "SERVING_MODELS"]

#: Models a scenario may name (kept to ones with inference graphs).
SERVING_MODELS = {
    "HUNYUAN_MOE": HUNYUAN_MOE,
    "DEEPSEEK_MOE": DEEPSEEK_MOE,
    "LLAMA3_70B": LLAMA3_70B,
    "LLAMA2_70B": LLAMA2_70B,
    "GPT3_175B": GPT3_175B,
}

#: Per-(gpu, model, tp, ep, context) step-cost memo shared by every run
#: in this process — Seer forecasts are pure, so sharing is free and
#: makes fuzz batteries ~an order of magnitude cheaper.
_COST_MEMO: Dict[Tuple, Dict] = {}


@dataclass(frozen=True)
class ServingScenario:
    """Everything a diurnal serving run depends on, JSON-pure.

    ``dims`` (an ``AstralParams`` kwargs dict) overrides ``preset``;
    all seeds accept ints or strings and feed string-keyed streams.
    """

    preset: Optional[str] = "64k"
    dims: Optional[Dict[str, int]] = None
    # -- demand ----------------------------------------------------------
    duration_s: float = 86400.0
    bucket_s: float = 1800.0
    start_hour: float = 0.0
    users_m_scale: float = 1.0
    regions: Optional[Sequence[Dict]] = None
    seed: Union[int, str] = 0
    # -- deployment ------------------------------------------------------
    gpu: str = "H800"
    model: str = "HUNYUAN_MOE"
    tp: int = 8
    ep: int = 16
    batch_max: int = 16
    context_len: int = 2048
    output_len_mean: int = 128
    prefill_hosts_per_pair: Optional[int] = None
    decode_hosts_per_pair: Optional[int] = None
    replica_hosts: int = 2
    # -- power / SLO -----------------------------------------------------
    target_util: float = 0.7
    host_kw: float = 10.0
    power_cap_frac: Optional[float] = 0.85
    slo_ttft_s: float = 5.0
    # -- simulation granularity -----------------------------------------
    pool_window_s: float = 30.0
    train_jobs: int = 96
    kv_bits: float = 8e9
    cosim_iterations: int = 6
    cosim_compute_s: float = 0.05
    cosim_comm_bits: float = 2e9
    max_kv_flows: int = 64
    slice_prefill_hosts: int = 2
    slice_decode_hosts: int = 4
    slice_train_hosts: int = 8

    def params(self) -> AstralParams:
        if self.dims is not None:
            return AstralParams(**self.dims)
        return preset_params(self.preset or "64k")

    def region_profiles(self) -> Tuple[RegionProfile, ...]:
        base = [RegionProfile(**r) for r in self.regions] \
            if self.regions is not None else list(DEFAULT_REGIONS)
        return tuple(
            RegionProfile(
                name=r.name,
                users_m=r.users_m * self.users_m_scale,
                tz_offset_h=r.tz_offset_h,
                requests_per_user_day=r.requests_per_user_day)
            for r in base)

    def to_params(self) -> Dict:
        """Farm-spec payload (canonical-JSON friendly)."""
        payload = asdict(self)
        if payload["regions"] is not None:
            payload["regions"] = [dict(r) for r in payload["regions"]]
        return payload

    @classmethod
    def from_params(cls, params: Dict) -> "ServingScenario":
        return cls(**params)


class ServingRun:
    """Execute one scenario; see the module docstring for the pipeline."""

    def __init__(self, scenario: Optional[ServingScenario] = None,
                 solver: Optional[str] = None):
        self.scenario = scenario or ServingScenario()
        self.solver = solver

    def run(self) -> ServingReport:
        s = self.scenario
        reset_flow_ids()
        params = s.params()
        model = SERVING_MODELS[s.model]
        parallel = ParallelismConfig(tp=s.tp, pp=1, dp=1, ep=s.ep)
        seer = Seer(gpu=s.gpu, network=NetworkSuite())
        cost_cache = _COST_MEMO.setdefault(
            (s.gpu, s.model, s.tp, s.ep, s.context_len), {})

        # 1. demand trace ------------------------------------------------
        trace = RequestTrace.generate(TraceConfig(
            regions=s.region_profiles(),
            duration_s=s.duration_s, bucket_s=s.bucket_s,
            start_hour=s.start_hour, seed=s.seed))

        # 2. pools -------------------------------------------------------
        pools = plan_pools(
            params,
            prefill_hosts_per_pair=s.prefill_hosts_per_pair,
            decode_hosts_per_pair=s.decode_hosts_per_pair,
            replica_hosts=s.replica_hosts)

        # 3. autoscale against the contract ------------------------------
        probe = ServingSimulator(
            seer, model, parallel,
            ServingConfig(batch_max=s.batch_max,
                          context_len=s.context_len,
                          output_len_mean=s.output_len_mean,
                          seed=s.seed),
            cost_cache=cost_cache)
        # Engine time one request consumes: its own prefill step plus
        # its share of each full-batch decode step.  1/that is the
        # replica's sustainable throughput.
        per_request_s = probe.prefill_step_s() \
            + s.output_len_mean * probe.decode_step_s(s.batch_max) \
            / s.batch_max
        capacity = 1.0 / per_request_s
        autoscale_cfg = AutoscaleConfig(
            target_util=s.target_util, host_kw=s.host_kw,
            contract_frac=s.power_cap_frac)
        plan = TidalAutoscaler(autoscale_cfg).plan(trace, pools, capacity)

        # 4. folded pool simulations ------------------------------------
        slo, kv_starts, fold = self._pool_slo(
            s, seer, model, parallel, cost_cache, trace, pools, plan)

        # 5. fabric co-simulation of one representative pair ------------
        placement = place_slice(
            slice_params(params),
            prefill_hosts=s.slice_prefill_hosts,
            decode_hosts=s.slice_decode_hosts,
            train_hosts=s.slice_train_hosts)
        cosim = KvCosim(
            placement,
            CosimConfig(iterations=s.cosim_iterations,
                        compute_time_s=s.cosim_compute_s,
                        comm_size_bits=s.cosim_comm_bits,
                        kv_bits=s.kv_bits,
                        max_kv_flows=s.max_kv_flows),
            kv_starts_s=kv_starts,
            solver=self.solver).run()
        kv_sorted = cosim.kv_transfer_s
        kv_mean = sum(kv_sorted) / len(kv_sorted) if kv_sorted else 0.0
        slo["kv_mean_s"] = round(kv_mean, 9)
        slo["kv_p50_s"] = _maybe_round(
            weighted_percentile([(t, 1.0) for t in kv_sorted], 50.0))
        slo["kv_p95_s"] = _maybe_round(
            weighted_percentile([(t, 1.0) for t in kv_sorted], 95.0))
        for key in ("ttft_p50_s", "ttft_p95_s", "ttft_p99_s"):
            if slo[key] is not None:
                slo[key] = round(slo[key] + kv_mean, 9)

        # 6. training co-schedule under the budget ----------------------
        training, train_mw = self._train_schedule(s, pools, plan)

        # 7. power roll-up ----------------------------------------------
        power = self._power_rollup(s, plan, train_mw)

        return ServingReport(
            scenario=s.to_params(),
            trace=trace.to_dict(),
            pools=pools.to_dict(),
            autoscale=plan.to_dict(),
            slo=slo,
            cosim=cosim.to_dict(),
            training=training,
            power=power,
            fold=fold,
        )

    # -- stage 4: folded pool sims --------------------------------------
    def _pool_slo(self, s: ServingScenario, seer, model, parallel,
                  cost_cache, trace: RequestTrace, pools: PoolPlan,
                  plan: AutoscalePlan):
        classes: Dict[float, float] = {}
        replica_buckets = 0
        for bucket, decision in zip(trace.buckets, plan.buckets):
            replica_buckets += decision.replicas_per_pair * pools.n_pairs
            if bucket.total <= 0 or decision.per_replica_rate <= 0:
                continue
            rate_class = round(decision.per_replica_rate, 3)
            classes[rate_class] = classes.get(rate_class, 0.0) \
                + float(bucket.total)

        ttft_samples: List[Tuple[float, float]] = []
        tpot_samples: List[Tuple[float, float]] = []
        total_weight = sum(classes.values())
        completed_weight = 0.0
        good_weight = 0.0
        n_samples = 0
        peak_class = max(classes) if classes else 0.0
        kv_starts: List[float] = []

        for rate_class in sorted(classes):
            weight = classes[rate_class]
            cfg = ServingConfig(
                batch_max=s.batch_max, context_len=s.context_len,
                output_len_mean=s.output_len_mean,
                arrival_rate_per_s=rate_class,
                duration_s=s.pool_window_s,
                seed=f"{s.seed}:pool:{rate_class:.3f}")
            report = ServingSimulator(
                seer, model, parallel, cfg,
                cost_cache=cost_cache).run()
            if report.arrived > 0:
                completed_weight += weight \
                    * len(report.completed) / report.arrived
            if not report.completed:
                continue
            per_sample = weight / len(report.completed)
            good = 0
            for record in report.completed:
                ttft_samples.append((record.ttft_s, per_sample))
                tpot_samples.append((record.tpot_s, per_sample))
                if record.ttft_s <= s.slo_ttft_s:
                    good += 1
            good_weight += weight * good / report.arrived
            n_samples += len(report.completed)
            if rate_class == peak_class:
                kv_starts = sorted(
                    record.first_token_s for record in report.completed)

        slo = {
            "offered_requests": trace.total_requests,
            "n_rate_classes": len(classes),
            "n_samples": n_samples,
            "slo_ttft_s": s.slo_ttft_s,
            "ttft_p50_s": _maybe_round(
                weighted_percentile(ttft_samples, 50.0)),
            "ttft_p95_s": _maybe_round(
                weighted_percentile(ttft_samples, 95.0)),
            "ttft_p99_s": _maybe_round(
                weighted_percentile(ttft_samples, 99.0)),
            "tpot_p50_s": _maybe_round(
                weighted_percentile(tpot_samples, 50.0)),
            "tpot_p99_s": _maybe_round(
                weighted_percentile(tpot_samples, 99.0)),
            "completion_fraction": round(
                completed_weight / total_weight, 9)
            if total_weight > 0 else None,
            "goodput_fraction": round(good_weight / total_weight, 9)
            if total_weight > 0 else None,
        }
        fold = {
            "replica_buckets": replica_buckets,
            "n_pool_sims": len(classes),
            "fold_factor": round(
                replica_buckets / len(classes), 6) if classes else 0.0,
        }
        return slo, kv_starts, fold

    # -- stage 6: training under the stepped budget ---------------------
    def _train_schedule(self, s: ServingScenario, pools: PoolPlan,
                        plan: AutoscalePlan):
        if pools.train_hosts <= 0 or s.train_jobs <= 0:
            return None, [0.0] * len(plan.buckets)
        params = s.params()
        sched_params = AstralParams(
            pods=2,
            blocks_per_pod=min(2, params.blocks_per_pod),
            hosts_per_block=min(16, params.hosts_per_block),
            gpus_per_host=2,
            aggs_per_group=2, cores_per_group=2)
        topology = build_astral(sched_params)
        slice_hosts = sched_params.pods * sched_params.blocks_per_pod \
            * sched_params.hosts_per_block
        fold_scale = pools.train_hosts / slice_hosts
        cap = plan.train_host_cap(slice_hosts, scale=fold_scale)
        jobs = WorkloadGenerator(seed=f"{s.seed}:train").generate(
            s.train_jobs, max_hosts=max(1, slice_hosts // 2))
        scheduler = ClusterScheduler(
            topology, jobs, policy=SchedulingPolicy.PRIORITY,
            power_cap=cap, enforce_cap=True, seed=0)
        report = scheduler.run(until=s.duration_s)

        # Training power per bucket: hosts occupied at bucket midpoints,
        # unfolded back to the real fleet.
        train_mw: List[float] = []
        for decision in plan.buckets:
            mid = decision.t_start_s + s.bucket_s / 2.0
            hosts = 0
            for record in report.records:
                if any(start <= mid < end
                       for start, end in record.intervals):
                    hosts += record.n_hosts_requested
            train_mw.append(
                hosts * fold_scale * s.host_kw / 1000.0)

        summary = report.to_dict()
        training = {
            "slice_hosts": slice_hosts,
            "fold_scale": round(fold_scale, 9),
            "status": ", ".join(
                f"{k}={v}" for k, v in summary["status"].items()),
            "preemptions": summary["preemptions"],
            "utilization": summary["utilization"],
            "mean_queue_delay_s": summary["mean_queue_delay_s"],
            "report": summary,
        }
        return training, train_mw

    # -- stage 7: power roll-up -----------------------------------------
    def _power_rollup(self, s: ServingScenario, plan: AutoscalePlan,
                      train_mw: List[float]):
        serving_mw = [b.serving_mw for b in plan.buckets]
        total_mw = [sv + tr for sv, tr in zip(serving_mw, train_mw)]
        peak_serving = max(serving_mw, default=0.0)
        deficit = [max(0.0, peak_serving - sv) for sv in serving_mw]
        fill = [min(tr, d) for tr, d in zip(train_mw, deficit)]
        deficit_total = sum(deficit)
        contract = plan.config.contract_mw(plan.pool_plan.total_hosts)
        return {
            "contract_mw": None if contract is None
            else round(contract, 6),
            "serving_mw": [round(v, 6) for v in serving_mw],
            "training_mw": [round(v, 6) for v in train_mw],
            "total_mw": [round(v, 6) for v in total_mw],
            "flatness_cv_serving": _cv(serving_mw),
            "flatness_cv_total": _cv(total_mw),
            "trough_fill_fraction": round(
                sum(fill) / deficit_total, 9)
            if deficit_total > 0 else None,
        }


def _cv(series: Sequence[float]) -> Optional[float]:
    if not series:
        return None
    mean = sum(series) / len(series)
    if mean == 0.0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in series) / len(series)
    return round(math.sqrt(variance) / mean, 9)


def _maybe_round(value: Optional[float], digits: int = 9
                 ) -> Optional[float]:
    return None if value is None else round(value, digits)

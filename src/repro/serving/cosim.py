"""KV-transfer / training-collective co-simulation on one fabric clock.

Disaggregated serving ships each request's KV cache from its prefill
host to its decode replica; on an Astral pod pair that transfer crosses
the Agg/Core tiers the training tenants' cross-pod collectives also
climb.  This module puts both on one :class:`~repro.network.engine.
FabricEngine` — the training loop as a simcore process issuing ring
all-reduce flows each iteration, the KV transfers as individually
timed flows released at their prefill-completion instants — and
measures the contention both ways:

* per-transfer KV times (they stretch when a collective saturates the
  uplinks: serving tail latency inherits training's bursts);
* per-iteration training times against a *clean* baseline run without
  serving traffic (training efficiency lost to the KV stream).

Both passes reset flow ids and share nothing mutable, so a zero-KV
co-simulation is bit-identical to its baseline — the validation
harness's no-op oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..network.collectives import CollectiveConfig, Endpoint, \
    ring_allreduce_flows
from ..network.engine import FabricEngine
from ..network.fabric import Fabric
from ..network.flows import make_flow, reset_flow_ids
from ..simcore.engine import Simulator
from .pools import SlicePlacement

__all__ = ["CosimConfig", "CosimResult", "KvCosim"]


@dataclass(frozen=True)
class CosimConfig:
    """Shape of the co-simulated traffic."""

    iterations: int = 6
    compute_time_s: float = 0.05
    comm_size_bits: float = 2e9     # training all-reduce per iteration
    kv_bits: float = 8e9            # one request's KV cache (~1 GB)
    max_kv_flows: int = 64
    #: horizon the KV admission pattern is replayed into.  The pool sim
    #: models ONE decode replica; the pair's prefill pool feeds every
    #: replica at once, so inter-arrival gaps compress by the replica
    #: count — rebasing the pattern onto this window reproduces that
    #: density against the training iterations (which span seconds, not
    #: the half-hour trace bucket).
    kv_window_s: float = 2.0
    rail: int = 0


@dataclass
class CosimResult:
    """Contended vs. clean timings from one pod-pair co-simulation."""

    kv_transfer_s: List[float]      # sorted ascending
    iteration_s: List[float]        # contended training iterations
    clean_iteration_s: List[float]  # serving-free baseline
    n_kv_flows: int

    @property
    def training_efficiency(self) -> float:
        """Clean/contended mean iteration time (1.0 = no interference)."""
        if not self.iteration_s:
            return 1.0
        contended = sum(self.iteration_s) / len(self.iteration_s)
        clean = sum(self.clean_iteration_s) / len(self.clean_iteration_s)
        return clean / contended if contended > 0 else 1.0

    def to_dict(self) -> Dict:
        return {
            "n_kv_flows": self.n_kv_flows,
            "kv_transfer_s": [round(t, 9) for t in self.kv_transfer_s],
            "iteration_s": [round(t, 9) for t in self.iteration_s],
            "clean_iteration_s": [round(t, 9)
                                  for t in self.clean_iteration_s],
            "training_efficiency": round(self.training_efficiency, 9),
        }


class KvCosim:
    """Run the contended pass and the clean baseline on a slice pair."""

    def __init__(self, placement: SlicePlacement,
                 config: Optional[CosimConfig] = None,
                 kv_starts_s: Sequence[float] = (),
                 solver: Optional[str] = None):
        self.placement = placement
        self.config = config or CosimConfig()
        self.kv_starts_s = self._rebase(
            sorted(kv_starts_s)[:self.config.max_kv_flows])
        self.solver = solver

    def _rebase(self, starts: List[float]) -> List[float]:
        """Replay the admission pattern inside ``kv_window_s``.

        Relative spacing is preserved; only the overall span is scaled
        (see :attr:`CosimConfig.kv_window_s`).  Zero or one transfer
        needs no rebasing beyond shifting to t=0.
        """
        if not starts:
            return []
        first, last = starts[0], starts[-1]
        span = last - first
        if span <= 0.0:
            return [0.0 for _ in starts]
        scale = self.config.kv_window_s / span
        return [(t - first) * scale for t in starts]

    def run(self) -> CosimResult:
        kv_times, iteration_s = self._pass(with_kv=True)
        _, clean_iteration_s = self._pass(with_kv=False)
        return CosimResult(
            kv_transfer_s=sorted(kv_times),
            iteration_s=iteration_s,
            clean_iteration_s=clean_iteration_s,
            n_kv_flows=len(self.kv_starts_s),
        )

    # -- one engine pass -------------------------------------------------
    def _pass(self, with_kv: bool):
        cfg = self.config
        place = self.placement
        reset_flow_ids()
        sim = Simulator()
        fabric = Fabric(place.topology, solver=self.solver)
        engine = FabricEngine(fabric, sim)

        kv_times: List[float] = []
        iteration_ends: List[float] = []

        def kv_watch(flow, start):
            done = engine.submit(flow, start_time_s=start)
            yield done
            kv_times.append(sim.now - start)

        if with_kv and place.prefill_hosts and place.decode_hosts:
            for k, start in enumerate(self.kv_starts_s):
                src = place.prefill_hosts[k % len(place.prefill_hosts)]
                dst = place.decode_hosts[k % len(place.decode_hosts)]
                flow = make_flow(src, dst, cfg.rail, cfg.kv_bits,
                                 job="serving", collective="kv")
                sim.process(kv_watch(flow, start), name=f"kv:{k}")

        endpoints = [Endpoint(host, cfg.rail)
                     for host in place.train_hosts]
        if len(endpoints) >= 2 and cfg.iterations > 0:
            sim.process(
                self._training(sim, engine, endpoints, iteration_ends),
                name="train")
        sim.run()

        starts = [0.0] + iteration_ends[:-1]
        iterations = [end - start
                      for start, end in zip(starts, iteration_ends)]
        return kv_times, iterations

    def _training(self, sim, engine, endpoints, iteration_ends):
        cfg = self.config
        for _ in range(cfg.iterations):
            yield sim.timeout(cfg.compute_time_s)
            flows = ring_allreduce_flows(
                endpoints, cfg.comm_size_bits,
                CollectiveConfig(job="train"))
            yield engine.submit_many(flows)
            iteration_ends.append(sim.now)

"""Command-line interface: ``python -m repro <command>``.

Commands map to the library's main entry points:

* ``describe``  — scale numbers of an Astral deployment;
* ``forecast``  — Seer training forecast for a model + parallelism;
* ``inference`` — Seer inference forecast (prefill/decode);
* ``memory``    — HBM footprint of a layout;
* ``sweep``     — rank parallelism layouts for a GPU budget;
* ``pue``       — the Figure-6 PUE evolution report;
* ``taxonomy``  — sample a Figure-7 fault campaign;
* ``overhead``  — Appendix-C monitoring overhead for a cluster size;
* ``goodput``   — training goodput vs scale, manual vs Astral MTTLF;
* ``diagnose-demo`` — inject a fault and print the diagnosis chain;
* ``cluster``   — schedule a multi-tenant job trace on the fabric;
* ``resilience`` — seeded failure-injection campaign through the
  detect → localize → cordon → requeue → repair loop;
* ``validate`` — fuzz the simulator stack against the invariant,
  differential, and metamorphic oracles (``repro.validation``),
  optionally fanned out across farm workers with result caching;
* ``farm`` — run an arbitrary task-spec file (explicit tasks and/or
  parameter-grid sweeps) on the parallel experiment farm
  (``repro.farm``);
* ``scale`` — symmetry-folded hierarchical simulation at paper scale
  (``repro.hierarchy``): named presets up to the published 512K-GPU
  deployment, or explicit dimensions for small differential runs;
* ``serve`` — diurnal inference serving co-scheduled with training on
  the twin (``repro.serving``): regional demand tides, prefill/decode
  pod pairs, KV traffic on the training fabric, and the tidal
  autoscaler preempting/admitting training against the power contract;
* ``twin`` — the long-running digital-twin service (``repro.twin``):
  ``twin serve`` hosts persistent simulated datacenters behind an
  HTTP API with live telemetry streams and a closed operator action
  loop; ``twin demo`` runs the scripted cordon → fault → power-cap →
  heal scenario and verifies the replay digest.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser", "package_version"]


def package_version() -> str:
    """The installed ``repro`` version, or the pyproject dev value.

    ``importlib.metadata`` answers for installed checkouts (including
    ``pip install -e .``); a source tree run straight off
    ``PYTHONPATH=src`` falls back to parsing ``pyproject.toml`` next
    to the package, and finally to a dev marker.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
        return version("repro")
    except PackageNotFoundError:
        pass
    except Exception:  # noqa: BLE001 — metadata is best-effort
        pass
    try:
        import os
        import tomllib
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        with open(os.path.join(root, "pyproject.toml"), "rb") as handle:
            project = tomllib.load(handle)
        return project["project"]["version"] + "+dev"
    except Exception:  # noqa: BLE001 — any miss means unknown dev tree
        return "0.0.0+dev"

_MODELS = {
    "gpt3-175b": "GPT3_175B",
    "llama2-70b": "LLAMA2_70B",
    "llama3-70b": "LLAMA3_70B",
    "hunyuan-moe": "HUNYUAN_MOE",
    "deepseek-moe": "DEEPSEEK_MOE",
}


def _resolve_model(name: str):
    from repro import seer
    try:
        return getattr(seer, _MODELS[name])
    except KeyError:
        raise SystemExit(
            f"unknown model {name!r}; choose from "
            f"{', '.join(sorted(_MODELS))}")


def _add_solver_arg(parser) -> None:
    parser.add_argument(
        "--solver", default=None,
        choices=("auto", "python", "vector"),
        help="max-min solver backend (auto picks the vectorized "
             "kernel when numpy is available; backends are "
             "bit-identical, this only changes wall clock)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Astral (SIGCOMM 2025) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="deployment scale numbers") \
        .add_argument("--paper-scale", action="store_true",
                      help="use the published 512K-GPU dimensions")

    forecast = sub.add_parser("forecast",
                              help="Seer training forecast")
    forecast.add_argument("--model", default="llama3-70b",
                          choices=sorted(_MODELS))
    forecast.add_argument("--gpu", default="H800")
    forecast.add_argument("--tp", type=int, default=8)
    forecast.add_argument("--pp", type=int, default=4)
    forecast.add_argument("--dp", type=int, default=4)
    forecast.add_argument("--ep", type=int, default=1)
    forecast.add_argument("--microbatches", type=int, default=8)
    forecast.add_argument("--uncorrected", action="store_true",
                          help="disable self-correction (basic model)")

    inference = sub.add_parser("inference",
                               help="Seer inference forecast")
    inference.add_argument("--model", default="llama3-70b",
                           choices=sorted(_MODELS))
    inference.add_argument("--gpu", default="H800")
    inference.add_argument("--tp", type=int, default=8)
    inference.add_argument("--ep", type=int, default=1)
    inference.add_argument("--batch", type=int, default=8)
    inference.add_argument("--context", type=int, default=2048)

    memory = sub.add_parser("memory", help="HBM footprint of a layout")
    memory.add_argument("--model", default="llama3-70b",
                        choices=sorted(_MODELS))
    memory.add_argument("--gpu", default="H800")
    memory.add_argument("--tp", type=int, default=8)
    memory.add_argument("--pp", type=int, default=4)
    memory.add_argument("--dp", type=int, default=4)
    memory.add_argument("--ep", type=int, default=1)
    memory.add_argument("--zero", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="rank parallelism layouts for a GPU budget")
    sweep.add_argument("--model", default="llama3-70b",
                       choices=sorted(_MODELS))
    sweep.add_argument("--gpu", default="H800")
    sweep.add_argument("--gpus", type=int, default=64)
    sweep.add_argument("--microbatches", type=int, default=16)
    sweep.add_argument("--top", type=int, default=5)

    sub.add_parser("pue", help="PUE evolution report (Figure 6)")

    taxonomy = sub.add_parser("taxonomy",
                              help="sample a fault campaign (Fig. 7)")
    taxonomy.add_argument("--count", type=int, default=1000)
    taxonomy.add_argument("--seed", type=int, default=0)

    overhead = sub.add_parser(
        "overhead", help="monitoring overhead (Appendix C)")
    overhead.add_argument("--gpus", type=int, default=100_000)

    goodput = sub.add_parser(
        "goodput",
        help="training goodput vs scale, manual vs Astral MTTLF")
    goodput.add_argument("--gpus", type=int, nargs="+",
                         default=[1024, 8192, 65536])

    sub.add_parser("diagnose-demo",
                   help="inject a fault and print the diagnosis")

    cluster = sub.add_parser(
        "cluster",
        help="schedule a multi-tenant job trace on the fabric")
    cluster.add_argument("--policy", default="topology",
                         choices=["fifo", "topology", "priority",
                                  "preemptive"])
    cluster.add_argument("--jobs", type=int, default=50)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--scale", default="cluster",
                         choices=["tiny", "small", "cluster"],
                         help="fabric size (cluster = 256 hosts)")
    cluster.add_argument("--failure-scale", type=float, default=1.0,
                         help="MTBF multiplier; 0 disables failures")
    cluster.add_argument("--no-tidal", action="store_true",
                         help="disable the 22:00-08:00 host cap")
    cluster.add_argument("--contention", action="store_true",
                         help="co-run the peak tenant set on the "
                              "fabric and report interference")
    _add_solver_arg(cluster)
    cluster.add_argument("--rows", type=int, default=20,
                         help="job rows to print in the report")

    resilience = sub.add_parser(
        "resilience",
        help="seeded failure-injection campaign with the recovery loop")
    resilience.add_argument("--seed", type=int, default=0)
    resilience.add_argument("--scale", default="small",
                            choices=["tiny", "small", "cluster"])
    resilience.add_argument("--jobs", type=int, default=1)
    resilience.add_argument("--hosts-per-job", type=int, default=4)
    resilience.add_argument("--iterations", type=int, default=180)
    resilience.add_argument("--faults", type=int, default=1,
                            help="structural faults to draw and inject")
    resilience.add_argument("--fault-at", type=float, default=1800.0,
                            help="injection time of the first fault (s)")
    resilience.add_argument("--checkpoint-interval", type=float,
                            default=3600.0)
    _add_solver_arg(resilience)
    resilience.add_argument("--json", action="store_true",
                            help="emit the full report as JSON")

    validate = sub.add_parser(
        "validate",
        help="fuzz the simulator stack against the validation oracles")
    validate.add_argument("--seed", type=int, default=7,
                          help="campaign seed; each case is derived "
                               "from (seed, index)")
    validate.add_argument("--cases", type=int, default=25,
                          help="number of scenarios to generate")
    validate.add_argument("--case", type=int, default=None,
                          help="re-run exactly one case index "
                               "(reproduces a printed failure)")
    validate.add_argument("--profile", default=None,
                          help="pin every case to one scenario "
                               "profile (e.g. 'faulted-hierarchical'):"
                               " runs the first --cases indices that "
                               "map to it")
    validate.add_argument("--json", metavar="PATH", default=None,
                          help="write the full campaign report "
                               "(including failing specs) to PATH")
    validate.add_argument("--fast", action="store_true",
                          help="skip the packet-granular differential "
                               "(CI smoke budget)")
    validate.add_argument("--workers", type=int, default=1,
                          help="fan cases out across N worker "
                               "processes (bit-identical to serial)")
    validate.add_argument("--cache-dir", metavar="PATH", default=None,
                          help="serve unchanged cases from the farm's "
                               "content-addressed result cache at PATH")
    _add_solver_arg(validate)

    farm = sub.add_parser(
        "farm",
        help="run a task-spec file on the parallel experiment farm")
    farm.add_argument("specfile",
                      help="JSON document with 'tasks' and/or 'sweep' "
                           "entries (see repro.farm.specs_from_document)")
    farm.add_argument("--workers", type=int, default=1)
    farm.add_argument("--no-cache", action="store_true",
                      help="recompute every task (results still warm "
                           "the cache for later runs)")
    farm.add_argument("--cache-dir", metavar="PATH", default=None,
                      help="cache location (default ~/.cache/repro-farm "
                           "or $REPRO_FARM_CACHE)")
    farm.add_argument("--timeout", type=float, default=None,
                      help="per-task wall-clock budget in seconds")
    farm.add_argument("--retries", type=int, default=1,
                      help="retry budget for tasks whose worker dies")
    farm.add_argument("--json", metavar="PATH", default=None,
                      help="write the full farm report to PATH")

    scale = sub.add_parser(
        "scale",
        help="symmetry-folded hierarchical run up to 512K GPUs")
    scale.add_argument("--gpus", default="4k",
                       choices=["4k", "64k", "512k"],
                       help="named scale preset (512k = the paper's "
                            "published deployment dimensions)")
    scale.add_argument("--pods", type=int, default=None,
                       help="explicit topology instead of a preset; "
                            "combines with the other --*-per-* flags")
    scale.add_argument("--blocks-per-pod", type=int, default=2)
    scale.add_argument("--hosts-per-block", type=int, default=4)
    scale.add_argument("--gpus-per-host", type=int, default=2)
    scale.add_argument("--aggs-per-group", type=int, default=2)
    scale.add_argument("--cores-per-group", type=int, default=2)
    scale.add_argument("--hosts-per-job", type=int, default=None,
                       help="tenant size (default: one block)")
    scale.add_argument("--iterations", type=int, default=4)
    scale.add_argument("--compute-s", type=float, default=0.5)
    scale.add_argument("--comm-bits", type=float, default=8e9)
    scale.add_argument("--collective", default="allreduce",
                       choices=["allreduce", "alltoall"])
    scale.add_argument("--seed", type=int, default=0)
    scale.add_argument("--tail-shapes", type=int, default=1,
                       help="2 gives the last pod a distinct job "
                            "shape (exercises multiple pod classes)")
    scale.add_argument("--faults", default="0", metavar="N|FILE",
                       help="an integer arms N deterministic ToR "
                            "fail-slow faults; a path reads a JSON "
                            "fault document ({'domains': [...], "
                            "'faults': [...]}) of correlated fault "
                            "domains and explicit fault specs")
    scale.add_argument("--refine", default="bounded",
                       choices=["bounded", "pod"],
                       help="fault refinement scope: 'bounded' unfolds "
                            "only the blast-radius blocks, 'pod' the "
                            "whole pod (results are identical; bounded "
                            "simulates fewer hosts)")
    scale.add_argument("--power-cap", action="append", default=[],
                       metavar="POD=FACTOR",
                       help="cap a pod's compute rate, e.g. 1=0.8 "
                            "(repeatable)")
    scale.add_argument("--workers", type=int, default=1,
                       help="route through the experiment farm with "
                            "N workers")
    scale.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="serve unchanged runs from the farm's "
                            "content-addressed result cache at PATH")
    _add_solver_arg(scale)
    scale.add_argument("--json", metavar="PATH", default=None,
                       help="write the full report to PATH")

    serve = sub.add_parser(
        "serve",
        help="diurnal inference serving co-scheduled with training")
    serve.add_argument("--preset", default="64k",
                       choices=["4k", "64k", "512k"],
                       help="cluster scale preset the pools carve up")
    serve.add_argument("--seed", default="0",
                       help="campaign seed (int or string); feeds every "
                            "string-keyed draw stream")
    serve.add_argument("--duration", type=float, default=86400.0,
                       help="simulated horizon in seconds (default one "
                            "day)")
    serve.add_argument("--bucket", type=float, default=1800.0,
                       help="trace/autoscale bucket width in seconds")
    serve.add_argument("--users-scale", type=float, default=1.0,
                       help="multiply every region's user base "
                            "(0 = zero-arrival no-op)")
    serve.add_argument("--power-cap-frac", type=float, default=0.85,
                       help="constant-power contract as a fraction of "
                            "the fleet's nameplate draw; 1.0 never "
                            "binds, negative disables the cap")
    serve.add_argument("--train-jobs", type=int, default=96,
                       help="training jobs co-scheduled in the trough "
                            "(0 disables the training tenant)")
    serve.add_argument("--slo-ttft", type=float, default=5.0,
                       help="TTFT goodput threshold in seconds")
    serve.add_argument("--workers", type=int, default=1,
                       help="route through the experiment farm with "
                            "N workers")
    serve.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="serve unchanged runs from the farm's "
                            "content-addressed result cache at PATH")
    _add_solver_arg(serve)
    serve.add_argument("--json", metavar="PATH", default=None,
                       help="write the full report to PATH")

    twin = sub.add_parser(
        "twin",
        help="long-running digital-twin service (repro.twin)")
    twin_sub = twin.add_subparsers(dest="twin_command", required=True)
    twin_serve = twin_sub.add_parser(
        "serve", help="host persistent simulated datacenters over "
                      "HTTP until Ctrl-C")
    twin_serve.add_argument("--host", default="127.0.0.1",
                            help="bind address")
    twin_serve.add_argument("--port", type=int, default=8787,
                            help="bind port (0 picks a free port)")
    twin_serve.add_argument("--workers", type=int, default=0,
                            help="shard sessions across N worker "
                                 "processes (0 = in-process)")
    twin_demo = twin_sub.add_parser(
        "demo", help="scripted operator scenario + replay-digest "
                     "verification against an in-process server")
    twin_demo.add_argument("--scale", default="small",
                           choices=["tiny", "small", "cluster",
                                    "4k", "64k"],
                           help="session cluster scale")
    twin_demo.add_argument("--seed", default="0",
                           help="session seed (int or string)")
    twin_demo.add_argument("--workers", type=int, default=0,
                           help="shard sessions across N worker "
                                "processes (0 = in-process)")

    return parser


def _cmd_describe(args) -> int:
    from repro.core import AstralInfrastructure
    from repro.topology import AstralParams
    if args.paper_scale:
        params = AstralParams()
        print("Astral at published scale (not instantiated):")
        print(f"  total GPUs      : {params.total_gpus:,}")
        print(f"  GPUs per pod    : {params.gpus_per_pod:,}")
        print(f"  GPUs per rail   : {params.rail_size:,}")
        print(f"  pods            : {params.pods}")
        return 0
    infra = AstralInfrastructure(params=AstralParams.small())
    for key, value in infra.describe().items():
        print(f"  {key}: {value}")
    return 0


def _cmd_forecast(args) -> int:
    from repro.seer import NetworkSuite, ParallelismConfig, Seer
    model = _resolve_model(args.model)
    parallel = ParallelismConfig(tp=args.tp, pp=args.pp, dp=args.dp,
                                 ep=args.ep,
                                 microbatches=args.microbatches)
    seer = Seer(gpu=args.gpu, network=NetworkSuite(),
                corrected=not args.uncorrected)
    forecast = seer.forecast_training(model, parallel)
    print(f"model            : {model.name}")
    print(f"world size       : {parallel.world_size} GPUs "
          f"(TP{args.tp} x PP{args.pp} x DP{args.dp})")
    print(f"iteration time   : {forecast.iteration_time_s:.4f} s")
    print(f"tokens/s         : {forecast.tokens_per_s:,.0f}")
    print(f"tokens/s/GPU     : {forecast.throughput_per_gpu:,.1f}")
    print(f"exposed comm     : {forecast.exposed_comm_fraction():.1%}")
    if not args.uncorrected:
        deviation = seer.accuracy_deviation(model, parallel)
        print(f"vs testbed       : {deviation:.3%} deviation")
    return 0


def _cmd_inference(args) -> int:
    from repro.seer import NetworkSuite, ParallelismConfig, Seer
    model = _resolve_model(args.model)
    seer = Seer(gpu=args.gpu, network=NetworkSuite())
    forecast = seer.forecast_inference(
        model, ParallelismConfig(tp=args.tp, pp=1, dp=1, ep=args.ep),
        batch=args.batch, context_len=args.context)
    print(f"model            : {model.name}")
    print(f"time to 1st token: {forecast.prefill_time_s:.4f} s")
    print(f"prefill tokens/s : {forecast.prefill_tokens_per_s:,.0f}")
    print(f"decode tokens/s  : {forecast.decode_tokens_per_s:,.1f}")
    return 0


def _cmd_memory(args) -> int:
    from repro.seer import ParallelismConfig, estimate_memory, gpu_suite
    model = _resolve_model(args.model)
    parallel = ParallelismConfig(tp=args.tp, pp=args.pp, dp=args.dp,
                                 ep=args.ep, zero_stage=args.zero)
    estimate = estimate_memory(model, parallel)
    gpu = gpu_suite(args.gpu)
    print(f"model        : {model.name}")
    print(f"weights      : {estimate.weights / 1e9:8.2f} GB")
    print(f"gradients    : {estimate.gradients / 1e9:8.2f} GB")
    print(f"optimizer    : {estimate.optimizer / 1e9:8.2f} GB")
    print(f"activations  : {estimate.activations / 1e9:8.2f} GB")
    print(f"total        : {estimate.total_gb:8.2f} GB")
    verdict = "fits" if estimate.fits(gpu) else "DOES NOT FIT"
    print(f"on {gpu.name} ({gpu.hbm_gb:.0f} GB): {verdict}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.seer import NetworkSuite, Seer, sweep_parallelism
    model = _resolve_model(args.model)
    seer = Seer(gpu=args.gpu, network=NetworkSuite())
    candidates = sweep_parallelism(seer, model, args.gpus,
                                   microbatches=args.microbatches)
    if not candidates:
        print("no feasible layout fits this GPU's HBM")
        return 1
    print(f"top layouts for {model.name} on {args.gpus} x {args.gpu}:")
    for rank, candidate in enumerate(candidates[:args.top], start=1):
        print(f"  #{rank} {candidate.label:<18} "
              f"{candidate.tokens_per_s:>12,.0f} tok/s   "
              f"{candidate.memory_gb:6.1f} GB/GPU")
    return 0


def _cmd_pue(args) -> int:
    from repro.power import astral_vs_traditional, pue_evolution
    for report in pue_evolution():
        print(f"  {report.label:<30} PUE {report.pue:.3f}")
    comparison = astral_vs_traditional()
    print(f"  improvement vs traditional: "
          f"{comparison['improvement_frac']:.2%}")
    return 0


def _cmd_taxonomy(args) -> int:
    from collections import Counter

    from repro.monitoring import sample_faults
    faults = sample_faults(args.count, seed=args.seed)
    manifestations = Counter(f.manifestation.value for f in faults)
    causes = Counter(f.cause.value for f in faults)
    print("manifestations:")
    for name, count in manifestations.most_common():
        print(f"  {name:<15} {count / args.count:6.1%}")
    print("root causes:")
    for name, count in causes.most_common():
        print(f"  {name:<18} {count / args.count:6.1%}")
    return 0


def _cmd_overhead(args) -> int:
    from repro.monitoring import MonitoringOverhead
    report = MonitoringOverhead().report(args.gpus)
    print(f"cluster          : {report['n_gpus']:,} GPUs")
    print(f"mirror traffic   : {report['mirror_gbps']:.1f} Gbps "
          f"({report['mirror_fraction']:.7%} of fabric)")
    print(f"INT storage      : {report['int_gb_per_day']:,.0f} GB/day, "
          f"{report['int_gb_retained']:,.0f} GB retained")
    return 0


def _cmd_goodput(args) -> int:
    from repro.core import training_goodput
    print(f"{'GPUs':>8} {'MTBF(h)':>9} {'manual':>8} {'Astral':>8} "
          f"{'gain':>7}")
    for n_gpus in args.gpus:
        manual = training_goodput(n_gpus, localization="manual")
        auto = training_goodput(n_gpus, localization="automated")
        print(f"{n_gpus:>8,} {auto.mtbf_hours:>9.1f} "
              f"{manual.goodput_fraction:>8.1%} "
              f"{auto.goodput_fraction:>8.1%} "
              f"{auto.goodput_fraction - manual.goodput_fraction:>+7.1%}")
    return 0


def _cmd_diagnose_demo(args) -> int:
    from repro.core import AstralInfrastructure
    from repro.monitoring import FaultSpec, Manifestation, RootCause
    from repro.topology import AstralParams
    infra = AstralInfrastructure(params=AstralParams.small())
    allocation = infra.allocate("demo", 4)
    fault = FaultSpec(RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP,
                      allocation.hosts[1], at_iteration=2)
    infra.run_monitored_job("demo", fault=fault, iterations=4)
    diagnosis = infra.diagnose("demo")
    print(f"injected    : {fault.cause.value} on {fault.target}")
    print(f"manifested  : {diagnosis.manifestation.value}")
    print(f"localized to: {diagnosis.root_cause_device} "
          f"({diagnosis.inferred_cause})")
    print(f"action      : {diagnosis.recommended_action}")
    for step in diagnosis.evidence:
        print(f"  -> {step}")
    return 0


def _cmd_cluster(args) -> int:
    from dataclasses import replace

    from repro.core import AstralInfrastructure
    from repro.topology import AstralParams
    params = {
        "tiny": AstralParams.tiny,
        "small": AstralParams.small,
        "cluster": AstralParams.cluster,
    }[args.scale]()
    if args.solver is not None:
        params = replace(params, solver=args.solver)
    infra = AstralInfrastructure(params=params, seed=args.seed)
    report = infra.run_cluster(
        jobs=args.jobs, policy=args.policy, seed=args.seed,
        failure_scale=args.failure_scale,
        tidal_cap=not args.no_tidal)
    print(report.render(max_rows=args.rows))
    if args.contention:
        outcomes = infra.cluster_contention(report)
        print("peak-set fabric contention:")
        for name in sorted(outcomes):
            outcome = outcomes[name]
            print(f"  {name:<10} efficiency {outcome.efficiency:6.1%} "
                  f"({outcome.mean_iteration_s:.3f} s/iter)")
    return 0


def _cmd_resilience(args) -> int:
    import json

    from repro.resilience import ResilienceCampaign, default_tor_faults
    from repro.topology import AstralParams

    params = {
        "tiny": AstralParams.tiny,
        "small": AstralParams.small,
        "cluster": AstralParams.cluster,
    }[args.scale]()
    if args.solver is not None:
        from dataclasses import replace
        params = replace(params, solver=args.solver)
    faults = default_tor_faults(params, seed=args.seed,
                                n_faults=args.faults,
                                first_at_s=args.fault_at)
    campaign = ResilienceCampaign(
        params=params, faults=faults, n_jobs=args.jobs,
        hosts_per_job=args.hosts_per_job,
        n_iterations=args.iterations,
        checkpoint_interval_s=args.checkpoint_interval,
        seed=args.seed)
    report = campaign.run()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    print(f"seed            : {report.seed}")
    print(f"faults injected : {report.n_faults}")
    for at_s, action, target in report.fault_log:
        print(f"  t={at_s:>9.1f}s  {action:<14} {target}")
    print("recovery loop:")
    for record in report.recoveries:
        print(f"  {record['target']}: detected {record['detected_s']:.0f}s"
              f", localized {record['localized_s']:.0f}s, cordoned "
              f"{len(record['cordoned_hosts'])} hosts, interrupted "
              f"{record['interrupted_jobs']}, repaired "
              f"{record['repaired_s']:.0f}s")
    print("jobs (faulted vs clean completion):")
    for job in report.jobs:
        clean = report.baseline_completion_s.get(job.name)
        faulted = report.faulted_completion_s.get(job.name)
        status = "gave up" if job.gave_up else (
            f"{faulted:.0f}s vs {clean:.0f}s" if faulted else "wedged")
        print(f"  {job.name:<8} {status}  restarts={job.restarts} "
              f"lost={job.lost_s:.0f}s")
    print(f"reroutes        : {report.reroutes}")
    print(f"stranded flows  : {report.stranded}")
    print(f"measured penalty: {report.measured_penalty_s:,.0f} s")
    print(f"predicted       : {report.predicted_penalty_s:,.0f} s")
    print(f"goodput         : {report.goodput_fraction:.1%}")
    if report.wedged_jobs:
        print(f"WEDGED JOBS     : {report.wedged_jobs}")
        return 1
    return 0


def _cmd_validate(args) -> int:
    import json
    import time

    from repro.validation import run_campaign

    def _progress(case) -> None:
        verdict = "ok" if case.ok else "FAIL"
        print(f"  case {case.index:>3} "
              f"[{case.profile}/{case.family}] {verdict} "
              f"({len(case.checks)} checks, {case.elapsed_s:6.2f}s)")

    if args.case is not None:
        indices = [args.case]
    elif args.profile is not None:
        from repro.validation.scenarios import PROFILES
        if args.profile not in PROFILES:
            raise SystemExit(
                f"unknown profile {args.profile!r}; expected one of "
                f"{list(PROFILES)}")
        # The profile cycle is index % len(PROFILES): the first
        # --cases indices landing on the requested profile.
        offset = PROFILES.index(args.profile)
        indices = [offset + step * len(PROFILES)
                   for step in range(args.cases)]
    else:
        indices = None
    started = time.perf_counter()
    report = run_campaign(args.seed, args.cases, indices=indices,
                          fast=args.fast, progress=_progress,
                          workers=args.workers,
                          use_cache=args.cache_dir is not None,
                          cache_dir=args.cache_dir,
                          solver=args.solver)
    wall_s = time.perf_counter() - started
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.json}")
    print(f"seed {report.seed}: {len(report.cases)} cases, "
          f"{len(report.failures)} failing")
    rate = len(report.cases) / wall_s if wall_s > 0 else 0.0
    print(f"wall {wall_s:.2f}s ({rate:.2f} cases/s, "
          f"case-time sum {report.total_elapsed_s:.2f}s, "
          f"workers {args.workers})")
    if report.farm is not None:
        stats = report.farm.cache_stats or {}
        print(f"cache: {stats.get('hits', 0)} hits, "
              f"{stats.get('misses', 0)} misses; "
              f"{report.farm.n_executed} simulated, "
              f"{report.farm.n_cached} from cache")
    for case in report.failures:
        print(f"FAIL case {case.index} [{case.profile}/{case.family}]")
        for violation in case.violations:
            print(f"  {violation}")
        print(f"  reproduce with: {case.repro_command}")
    return 1 if report.failures else 0


def _cmd_farm(args) -> int:
    import json

    from repro.farm import (FarmExecutor, ResultCache,
                            specs_from_document)

    with open(args.specfile, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    specs = specs_from_document(document)

    def _progress(result, done, total) -> None:
        tag = "cache" if result.cached else \
            f"{result.elapsed_s:6.2f}s"
        verdict = "ok" if result.ok else result.status.upper()
        print(f"  [{done:>3}/{total}] {result.spec.describe():<48} "
              f"{verdict:<8} ({tag})")

    cache = ResultCache(root=args.cache_dir) if args.cache_dir \
        else ResultCache()
    executor = FarmExecutor(
        workers=args.workers, use_cache=not args.no_cache,
        cache=cache, timeout_s=args.timeout,
        max_retries=args.retries, progress=_progress)
    report = executor.run(specs)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.json}")
    stats = report.cache_stats or {}
    print(f"{len(report.results)} tasks: {report.n_ok} ok, "
          f"{len(report.failures)} failed; "
          f"{report.n_cached} from cache, "
          f"{report.n_executed} executed")
    print(f"wall {report.wall_s:.2f}s "
          f"({report.throughput:.2f} tasks/s, "
          f"workers {report.workers}); "
          f"cache {stats.get('hits', 0)} hits / "
          f"{stats.get('misses', 0)} misses")
    for result in report.failures:
        print(f"FAILED {result.spec.describe()} "
              f"[{result.status}] {result.error.splitlines()[0]}"
              if result.error else
              f"FAILED {result.spec.describe()} [{result.status}]")
    if report.interrupted:
        print("interrupted: partial report above (unfinished tasks "
              "are marked skipped)")
        return 130
    return 0 if report.ok else 1


def _cmd_scale(args) -> int:
    import json
    import time

    from repro.farm import TaskSpec, execute_spec
    from repro.hierarchy import preset_params

    task_params = {
        "hosts_per_job": args.hosts_per_job,
        "iterations": args.iterations,
        "compute_s": args.compute_s,
        "comm_bits": args.comm_bits,
        "collective": args.collective,
        "seed": args.seed,
        "tail_shapes": args.tail_shapes,
        "refine": args.refine,
    }
    fault_document = None
    try:
        task_params["faults"] = int(args.faults)
    except ValueError:
        task_params["faults"] = 0
        try:
            with open(args.faults, "r", encoding="utf-8") as handle:
                fault_document = json.load(handle)
        except OSError as exc:
            raise SystemExit(
                f"--faults {args.faults!r} is neither an integer nor "
                f"a readable file: {exc}")
        except json.JSONDecodeError as exc:
            raise SystemExit(
                f"--faults file {args.faults!r} is not valid JSON: "
                f"{exc}")
        task_params["fault_document"] = fault_document
    if args.solver is not None:
        # Resolve to a concrete backend name so the farm's content
        # hash never mixes "auto" runs across machines with and
        # without numpy.
        from repro.network.solver import resolve_backend
        task_params["solver"] = resolve_backend(args.solver)
    if args.pods is not None:
        task_params["dims"] = {
            "pods": args.pods,
            "blocks_per_pod": args.blocks_per_pod,
            "hosts_per_block": args.hosts_per_block,
            "gpus_per_host": args.gpus_per_host,
            "aggs_per_group": args.aggs_per_group,
            "cores_per_group": args.cores_per_group,
        }
        hosts_per_block = args.hosts_per_block
    else:
        task_params["scale"] = args.gpus
        hosts_per_block = preset_params(args.gpus).hosts_per_block
    if args.hosts_per_job is None:
        task_params["hosts_per_job"] = hosts_per_block
    if fault_document is not None:
        # Validate the document against the actual cluster shape and
        # tenant placement up front: a malformed target must fail here
        # with the offending fault named, not as a KeyError from deep
        # inside a farm worker's topology renaming.
        from repro.hierarchy import uniform_jobs
        from repro.hierarchy.virtual import place_jobs
        from repro.resilience import faults_from_document
        from repro.topology import AstralParams
        topo = (AstralParams(**task_params["dims"])
                if args.pods is not None else preset_params(args.gpus))
        jobs = uniform_jobs(
            topo, task_params["hosts_per_job"],
            iterations=args.iterations, compute_time_s=args.compute_s,
            comm_size_bits=args.comm_bits, collective=args.collective,
            seed=args.seed, tail_shapes=args.tail_shapes)
        try:
            faults_from_document(topo, place_jobs(topo, jobs),
                                 fault_document)
        except ValueError as exc:
            raise SystemExit(f"--faults {args.faults}: {exc}")
    caps = {}
    for entry in args.power_cap:
        pod, _, factor = entry.partition("=")
        try:
            caps[str(int(pod))] = float(factor)
        except ValueError:
            raise SystemExit(
                f"bad --power-cap {entry!r}; expected POD=FACTOR")
    if caps:
        task_params["power_caps"] = caps

    spec = TaskSpec("hierarchy-run", task_params, label="cli")
    started = time.perf_counter()
    if args.workers > 1 or args.cache_dir is not None:
        from repro.farm import FarmExecutor, ResultCache
        cache = ResultCache(root=args.cache_dir) if args.cache_dir \
            else ResultCache()
        report = executor_report = FarmExecutor(
            workers=args.workers,
            use_cache=args.cache_dir is not None,
            cache=cache).run([spec])
        if not report.ok:
            failure = report.failures[0]
            print(f"FAILED [{failure.status}] "
                  f"{(failure.error or '').splitlines()[0]}")
            return 1
        result = report.results[0].result
        print(f"farm: {executor_report.n_executed} executed, "
              f"{executor_report.n_cached} from cache "
              f"(workers {args.workers})")
    else:
        result = execute_spec(spec)
    wall_s = time.perf_counter() - started

    scenario, fold = result["scenario"], result["fold"]
    aggregate = result["aggregate"]
    print(f"cluster         : {scenario['total_gpus']:,} GPUs, "
          f"{scenario['n_pods']} pods")
    print(f"jobs            : {scenario['n_jobs']:,} on "
          f"{scenario['n_job_hosts']:,} hosts")
    mode = "EXACT" if fold["exact"] else (
        "flat-fallback" if fold["flat_fallback"] else "hybrid")
    print(f"fold            : {fold['n_pod_classes']} pod classes, "
          f"{fold['n_refined_groups']} refined groups "
          f"({fold['n_refined_pods']} pods), "
          f"{fold['n_analytic_jobs']} analytic jobs [{mode}]")
    print(f"engine          : {fold['n_engine_sims']} sims over "
          f"{fold['engine_hosts']:,} hosts "
          f"(fold factor {fold['fold_factor']:,.0f}x, "
          f"{fold['n_memo_hits']} memo hits)")
    refine = fold.get("refine", {})
    if refine.get("levels"):
        levels = ", ".join(f"{count} {level}" for level, count
                           in sorted(refine["levels"].items()))
        print(f"refine          : mode {refine['mode']} "
              f"[{levels}] — {refine['engine_hosts']:,} engine hosts "
              f"vs {refine['full_unfold_hosts']:,} at full-pod scope")
    print(f"mean efficiency : {aggregate['mean_efficiency']:.1%} "
          f"({aggregate['mean_iteration_s']:.4f} s/iter)")
    print(f"wall            : {wall_s:.2f} s")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
        print(f"report written to {args.json}")
    return 0


def _cmd_serve(args) -> int:
    import json
    import time

    from repro.farm import TaskSpec, execute_spec
    from repro.serving import ServingReport, ServingScenario

    seed = args.seed
    try:
        seed = int(seed)
    except ValueError:
        pass  # string seeds are first-class in the draw convention
    cap = args.power_cap_frac
    scenario = ServingScenario(
        preset=args.preset,
        duration_s=args.duration,
        bucket_s=args.bucket,
        users_m_scale=args.users_scale,
        seed=seed,
        power_cap_frac=None if cap is not None and cap < 0 else cap,
        train_jobs=args.train_jobs,
        slo_ttft_s=args.slo_ttft)
    task_params = {"scenario": scenario.to_params()}
    if args.solver is not None:
        # Resolve to a concrete backend name so the farm's content
        # hash never mixes "auto" runs across machines with and
        # without numpy (same discipline as `repro scale`).
        from repro.network.solver import resolve_backend
        task_params["solver"] = resolve_backend(args.solver)
    spec = TaskSpec("serving-run", task_params, label="cli")
    started = time.perf_counter()
    if args.workers > 1 or args.cache_dir is not None:
        from repro.farm import FarmExecutor, ResultCache
        cache = ResultCache(root=args.cache_dir) if args.cache_dir \
            else ResultCache()
        report = FarmExecutor(
            workers=args.workers,
            use_cache=args.cache_dir is not None,
            cache=cache).run([spec])
        if not report.ok:
            failure = report.failures[0]
            print(f"FAILED [{failure.status}] "
                  f"{(failure.error or '').splitlines()[0]}")
            return 1
        result = report.results[0].result
        print(f"farm: {report.n_executed} executed, "
              f"{report.n_cached} from cache "
              f"(workers {args.workers})")
    else:
        result = execute_spec(spec)
    wall_s = time.perf_counter() - started

    print(ServingReport(**{key: result[key] for key in (
        "scenario", "trace", "pools", "autoscale", "slo", "cosim",
        "training", "power", "fold")}).render())
    print(f"  wall      : {wall_s:.2f} s")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
        print(f"report written to {args.json}")
    return 0


def _cmd_twin(args) -> int:
    if args.twin_command == "serve":
        import asyncio

        from repro.twin import serve_forever
        return asyncio.run(serve_forever(
            host=args.host, port=args.port, workers=args.workers))
    seed = args.seed
    try:
        seed = int(seed)
    except ValueError:
        pass  # string seeds are first-class in the draw convention
    from repro.twin import run_demo
    return run_demo(scale=args.scale, workers=args.workers, seed=seed)


_HANDLERS = {
    "describe": _cmd_describe,
    "forecast": _cmd_forecast,
    "inference": _cmd_inference,
    "memory": _cmd_memory,
    "pue": _cmd_pue,
    "sweep": _cmd_sweep,
    "taxonomy": _cmd_taxonomy,
    "overhead": _cmd_overhead,
    "goodput": _cmd_goodput,
    "diagnose-demo": _cmd_diagnose_demo,
    "cluster": _cmd_cluster,
    "resilience": _cmd_resilience,
    "validate": _cmd_validate,
    "farm": _cmd_farm,
    "scale": _cmd_scale,
    "serve": _cmd_serve,
    "twin": _cmd_twin,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

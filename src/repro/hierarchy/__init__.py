"""Symmetry-folded hierarchical simulation to paper scale (512K GPUs).

The flat :class:`~repro.network.engine.FabricEngine` is exact but tops
out around 256 hosts; Astral's real deployment is 65,536.  This
package bridges the gap the way ASTRA-sim 2.0 does — hierarchical
composition of analytic and event-driven tiers — plus one structural
observation: packed pod-major placement makes large clusters mostly
*copies*, so detecting pod/block equivalence classes (``symmetry``),
engine-solving one representative per class and replicating
(``fold``), composing the cross-pod tier analytically (``compose``),
and unfolding anything a fault or power cap de-symmetrises back into
exact flat simulation (``refine``) reproduces flat results at a tiny
fraction of the cost — bit-for-bit when the line-rate certificate
holds, tolerance-bounded otherwise.

Entry point: :class:`HierarchicalRun`, result-compatible with
:class:`~repro.monitoring.multijob.MultiJobRun`.
"""

from .compose import analytic_outcomes, compute_draws, pod_egress_gbps
from .presets import SCALE_PRESETS, preset_params, uniform_jobs
from .refine import (REFINE_MODES, FaultEvidence, RefinePlan,
                     plan_refined_group)
from .run import (HierarchicalReport, HierarchicalRun,
                  build_flat_fabric, flat_job_configs)
from .symmetry import (PodClass, RefinedGroup, SymmetryMap,
                       detect_symmetry, job_shape,
                       line_rate_certificate, pod_signature)
from .virtual import HierJob, PlacedJob, place_jobs

__all__ = [
    "FaultEvidence",
    "HierJob",
    "HierarchicalReport",
    "HierarchicalRun",
    "PlacedJob",
    "PodClass",
    "REFINE_MODES",
    "RefinePlan",
    "RefinedGroup",
    "SCALE_PRESETS",
    "SymmetryMap",
    "plan_refined_group",
    "analytic_outcomes",
    "build_flat_fabric",
    "compute_draws",
    "detect_symmetry",
    "flat_job_configs",
    "job_shape",
    "line_rate_certificate",
    "place_jobs",
    "pod_egress_gbps",
    "pod_signature",
    "preset_params",
    "uniform_jobs",
]

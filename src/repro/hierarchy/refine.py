"""Bounded unfolding: broken symmetry re-simulated at the smallest
exact scope.

A fault — from ``repro.resilience``'s campaigns, a monitoring fault
spec, anything carrying a :class:`FaultSpec` — breaks the symmetry of
every pod it touches.  Refinement answers *how much* of the broken pod
must be simulated exactly, walking an escalation ladder:

* **block** — the fault's cut set stays inside a known block set, so
  only the touched blocks (plus the shared ToR->Agg uplink tier, which
  every bounded sub-topology keeps at full width) run on the engine;
  the pod's healthy blocks keep folding through the same
  representative-block path the pod classes use, so their sub-sims
  memo-hit against the healthy classes.
* **pod** — the whole broken pod (or transitively-merged pod group)
  runs exactly, faults armed, as one sub-simulation.  This is the
  pre-bounded behaviour and the fallback whenever the block-level
  certificate is void.
* **flat** — an unlocatable or globally-coupled target (``link:<id>``
  ids shift under renaming; core switches are shared by every pod)
  forces the identity-mapped full-cluster refinement group that
  degenerates to a flat :class:`MultiJobRun` bit-identically.

The **block-level certificate** is the exactness proof: bounded
results must equal full-pod refinement ``==``, never approximately.
It holds when every group fault's *effect* is hash-free (its outcome
cannot depend on ECMP hash draws, which renaming re-salts), every
fault is iteration-indexed (a timestamp fault lands mid-flight, where
remaining-bits re-integration splits at whatever solve epochs the
sub-simulation's co-residents generate), every fault target resolves
to a block (host or ToR name) or to its own job,
the group's pods are a single pod of pod-local ring tenants, the
line-rate certificate pins every healthy flow to the host line rate,
and a blast-radius probe on a one-block topology confirms the target's
cut set strands nothing beyond the block
(:func:`repro.topology.blast_radius.device_blast_radius` /
:func:`~repro.topology.blast_radius.impacted_hosts`).  Hash-free
effects are the host-scoped ones (crash / hang / compute-only config
error), job-state faults (which pick victims by position, not name),
and telemetry-only switch drops; congestive effects (ECN storms, PFC
spreading, switch fail-stop) route damage through hash-dependent paths
and escalate to **pod** — as does the flaky-NIC crawl (NIC_ERRCQE
fail-slow), which keeps transmitting below line rate where co-resident
solve epochs reschedule its flows.

Within a bounded pod, blocks are grouped into connected components
(jobs union the blocks they span; each fault unions its target block
with its job's blocks).  Components containing a fault run exactly on
a ``pods=1, blocks_per_pod=len(component)`` sub-topology with the agg
tier preserved; healthy single-block components fold by block
signature; healthy multi-block components run as compacted pod slices.
Per-component simulation is exact for the same reason the fold is:
certified traffic never contends across components, so separate clocks
observe identical allocations.

Every group decision is recorded in a :class:`RefinePlan` — the ladder
level, why, per-fault blast evidence, and the engine-host bill versus
what a full-pod unfold would have paid — so callers can assert the
ladder, not just the result.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..monitoring.faults import Effect, FaultSpec, Manifestation
from ..monitoring.multijob import JobOutcome
from ..topology.astral import AstralParams, build_astral
from ..topology.blast_radius import device_blast_radius, impacted_hosts
from .compose import scaled_compute_s
from .fold import (EngineRunner, _config_for, _fold_rep_blocks,
                   _solve_rep_pod)
from .symmetry import RefinedGroup, SymmetryMap, line_rate_certificate
from .virtual import PlacedJob, parse_host, rename_device, rename_host

__all__ = [
    "REFINE_MODES",
    "FaultEvidence",
    "RefinePlan",
    "plan_refined_group",
    "run_refined_group",
    "run_refined_groups",
]

#: ``bounded`` walks the full ladder; ``pod`` skips the block rung —
#: the knob the differential oracle uses to compare both paths ``==``.
REFINE_MODES = ("bounded", "pod")

#: Effects whose simulated outcome is provably independent of ECMP
#: hash draws, hence invariant under the device renaming a bounded
#: sub-topology performs.  Host crashes/hangs mutate job state keyed
#: by config position; NIC_ERRCQE degrades *all* of one host's links
#: symmetrically (its flows bottleneck on their own dedicated host
#: links, whatever the uplink hash); CONFIG_ERROR is compute-only;
#: MULTI_HOST_SOFTWARE samples victims by position from the config
#: host list.  Everything else — congestion storms, switch fail-stop,
#: PFC spreading — damages whichever paths the hash picked.
#: Hash-freedom is necessary but not sufficient: see the
#: capacity-degrading check in :func:`_fault_evidence`.
_HASH_FREE_EFFECTS = frozenset({
    Effect.CONFIG_ERROR,
    Effect.NIC_ERRCQE,
    Effect.GPU_FATAL,
    Effect.ECC_FATAL,
    Effect.HOST_HANG,
    Effect.MULTI_HOST_SOFTWARE,
})


@dataclass(frozen=True)
class FaultEvidence:
    """Blast-radius evidence for one group fault."""

    name: str                 # job the fault is keyed to
    target: str               # original (unrenamed) target
    scope: str                # "block" | "job" | "pod"
    blocks: Tuple[int, ...]   # touched blocks, original indices
    stranded_gpus: int = 0    # probe: GPU-rails stranded beyond target
    impacted_hosts: int = 0   # probe: conservative cordon set size
    note: str = ""            # why scope escalated, when it did


@dataclass(frozen=True)
class RefinePlan:
    """What one refinement group cost and why — the assertable ladder."""

    pods: Tuple[int, ...]
    level: str                      # "block" | "pod" | "flat"
    reasons: Tuple[str, ...]
    evidence: Tuple[FaultEvidence, ...]
    #: hosts a full-pod unfold would engine-simulate for this group.
    n_full_hosts: int = 0
    #: hosts actually billed to the engine (after fold memo hits).
    n_engine_hosts: int = 0


def _device_block(target: str) -> Optional[Tuple[int, int]]:
    """(pod, block) of a host- or ToR-named target, else None.

    Aggs carry only a pod prefix, cores none, ``link:`` ids none —
    all of those are outside block scope.
    """
    parts = target.split(".")
    if (len(parts) >= 3 and parts[0][:1] == "p" and parts[0][1:].isdigit()
            and parts[1][:1] == "b" and parts[1][1:].isdigit()):
        return int(parts[0][1:]), int(parts[1][1:])
    return None


@lru_cache(maxsize=256)
def _probe_evidence(sub_params: AstralParams,
                    target: str) -> Tuple[int, int]:
    """(stranded_gpus, n_impacted_hosts) of *target* failing on the
    one-block probe topology.

    The probe is the same blast-radius measurement the topology layer
    publishes, run in block-relative coordinates: it proves the
    device's cut set (host links, or ToR host-links plus its uplinks —
    both present in every bounded sub-topology) strands nothing beyond
    the block.  Cached per (sub-params, renamed target); the topology
    is rebuilt per entry and mutations are restore-on-exit.
    """
    topology = build_astral(sub_params)
    radius = device_blast_radius(topology, target)
    return radius.stranded_gpus, len(impacted_hosts(topology, target))


def _fault_evidence(params: AstralParams, name: str, fault: FaultSpec,
                    job: PlacedJob) -> FaultEvidence:
    """Classify one fault: block-scoped (with probe evidence) or not."""
    effect = fault.effect
    hash_free = effect in _HASH_FREE_EFFECTS or (
        effect is Effect.SWITCH_DROPS
        and fault.manifestation is Manifestation.FAIL_SLOW)
    if not hash_free:
        return FaultEvidence(
            name=name, target=fault.target, scope="pod",
            blocks=job.blocks,
            note=f"effect {effect.value}/{fault.manifestation.value} "
                 "is hash-sensitive")
    if (effect is Effect.NIC_ERRCQE
            and fault.manifestation is Manifestation.FAIL_SLOW):
        # The flaky-NIC crawl scales the host's link capacities while
        # the job keeps transmitting: its flows run *below* line rate,
        # where every co-resident solve epoch re-integrates and
        # reschedules them — epochs the block scope excludes.  Every
        # other certified effect leaves surviving flows pinned at line
        # rate (their scheduled deadlines stand across solves).
        return FaultEvidence(
            name=name, target=fault.target, scope="pod",
            blocks=job.blocks,
            note="capacity-degrading fail-slow leaves flows off line "
                 "rate: co-resident solve epochs reschedule them")
    if fault.at_time_s is not None:
        # A timestamp fault lands mid-flight; mid-flight re-integration
        # splits at whatever solve epochs co-resident tenants generate,
        # so the result is only reproducible at the full refinement
        # scope, not in a smaller sub-simulation.
        return FaultEvidence(
            name=name, target=fault.target, scope="pod",
            blocks=job.blocks,
            note=f"timestamp fault (at_time_s={fault.at_time_s}) "
                 "lands mid-flight: epoch-sensitive")
    if fault.target == job.name:
        # Job-state fault: victims picked by config position, no
        # device cut set at all — touched blocks are the job's own.
        return FaultEvidence(name=name, target=fault.target,
                             scope="job", blocks=job.blocks)
    located = _device_block(fault.target)
    if located is None:
        return FaultEvidence(
            name=name, target=fault.target, scope="pod",
            blocks=job.blocks,
            note=f"target {fault.target!r} is not block-scoped")
    pod, block = located
    if pod not in job.pods:
        return FaultEvidence(
            name=name, target=fault.target, scope="pod",
            blocks=job.blocks,
            note=f"target pod {pod} is outside job {job.name!r}'s "
                 "placement")
    probe_params = dc_replace(params, pods=1, blocks_per_pod=1)
    renamed = rename_device(fault.target, {pod: 0}, {block: 0})
    stranded, impacted = _probe_evidence(probe_params, renamed)
    if stranded:
        return FaultEvidence(
            name=name, target=fault.target, scope="pod",
            blocks=tuple(sorted({block, *job.blocks})),
            stranded_gpus=stranded, impacted_hosts=impacted,
            note=f"cut set strands {stranded} GPU-rails beyond "
                 f"{fault.target}")
    return FaultEvidence(
        name=name, target=fault.target, scope="block",
        blocks=tuple(sorted({block, *job.blocks})),
        stranded_gpus=stranded, impacted_hosts=impacted)


def plan_refined_group(params: AstralParams, group: RefinedGroup,
                       mode: str = "bounded",
                       flat: bool = False) -> RefinePlan:
    """Decide the ladder level for one group and collect the evidence."""
    if mode not in REFINE_MODES:
        raise ValueError(
            f"unknown refine mode {mode!r}; expected one of "
            f"{REFINE_MODES}")
    n_full = sum(len(p.hosts) for p in group.jobs)
    if flat:
        return RefinePlan(
            pods=group.pods, level="flat",
            reasons=tuple(group.reasons), evidence=(),
            n_full_hosts=n_full)
    by_name = {p.name: p for p in group.jobs}
    evidence = tuple(
        _fault_evidence(params, name, fault, by_name[name])
        for name, fault in sorted(group.faults.items()))
    reasons: List[str] = []
    if mode == "pod":
        reasons.append("refine mode forces pod-level unfolding")
    if len(group.pods) != 1 or not all(p.pod_local for p in group.jobs):
        reasons.append("group spans pods (cross-pod tenant): "
                       "bounded certificate void")
    if not line_rate_certificate(params, group.jobs):
        reasons.append("line-rate certificate void for group traffic")
    reasons.extend(f"fault {ev.name}: {ev.note}"
                   for ev in evidence if ev.scope == "pod")
    if reasons:
        return RefinePlan(pods=group.pods, level="pod",
                          reasons=tuple(reasons), evidence=evidence,
                          n_full_hosts=n_full)
    return RefinePlan(pods=group.pods, level="block", reasons=(),
                      evidence=evidence, n_full_hosts=n_full)


def _run_group_pod(params: AstralParams, group: RefinedGroup,
                   power_caps: Dict[int, float],
                   runner: EngineRunner) -> Dict[str, JobOutcome]:
    """Whole-pod (or whole-group) exact refinement.

    The group runs on a ``pods=len(group)`` sub-topology with the full
    block range preserved (an escalated fault's blast radius may reach
    any block-level device) and only pod indices rebased; fault targets
    are renamed with the same map.  Core switch names are pod-free and
    pass through untouched.  When *every* pod is refined the pod map is
    the identity, the sub-topology equals the flat one, and — because
    group jobs keep their original placement order, hence their
    original flow ids — the result is bit-identical to a flat
    :class:`MultiJobRun`: full unfold degenerates to flat, by
    construction rather than by approximation.
    """
    pod_map = {pod: index for index, pod in enumerate(group.pods)}
    sub = dc_replace(params, pods=len(group.pods))
    configs = [
        _config_for(
            placed,
            tuple(rename_host(h, pod_map) for h in placed.hosts),
            scaled_compute_s(placed.job, placed.pods, power_caps))
        for placed in group.jobs
    ]
    faults = {
        name: dc_replace(fault,
                         target=rename_device(fault.target, pod_map))
        for name, fault in group.faults.items()
    }
    return runner.run(sub, configs, faults=faults or None)


def _run_group_bounded(params: AstralParams, group: RefinedGroup,
                       plan: RefinePlan, power_caps: Dict[int, float],
                       runner: EngineRunner) -> Dict[str, JobOutcome]:
    """Block-bounded exact refinement of a single broken pod."""
    pod = group.pods[0]
    by_name = {p.name: p for p in group.jobs}
    evidence_blocks = {ev.name: ev.blocks for ev in plan.evidence}

    # Connected components over blocks: jobs union the blocks they
    # span; faults union their touched blocks with their job's.
    parent: Dict[int, int] = {}

    def _find(block: int) -> int:
        parent.setdefault(block, block)
        while parent[block] != block:
            parent[block] = parent[parent[block]]
            block = parent[block]
        return block

    def _union(a: int, b: int) -> None:
        ra, rb = _find(a), _find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for placed in group.jobs:
        blocks = placed.blocks
        for block in blocks:
            _union(blocks[0], block)
    for name in group.faults:
        touched = evidence_blocks[name]
        anchor = by_name[name].blocks[0]
        for block in touched:
            _union(anchor, block)

    faulted_roots = {_find(by_name[name].blocks[0])
                     for name in group.faults}
    comp_jobs: Dict[int, List[PlacedJob]] = {}
    for placed in group.jobs:            # original placement order
        comp_jobs.setdefault(_find(placed.blocks[0]), []).append(placed)
    comp_blocks: Dict[int, List[int]] = {}
    for block in parent:
        comp_blocks.setdefault(_find(block), []).append(block)

    compute_scale = power_caps.get(pod, 1.0)
    outcomes: Dict[str, JobOutcome] = {}
    healthy_single: List[PlacedJob] = []
    for root in sorted(comp_jobs):
        jobs = comp_jobs[root]
        if root not in faulted_roots:
            if len(comp_blocks[root]) == 1:
                # Healthy lone blocks fold by signature, sharing the
                # runner memo with the healthy pod classes.
                healthy_single.extend(jobs)
            else:
                outcomes.update(_solve_rep_pod(
                    params, jobs, pod, compute_scale, runner))
            continue
        blocks = sorted(comp_blocks[root])
        block_map = {block: index
                     for index, block in enumerate(blocks)}
        # Touched blocks plus the shared ToR->Agg uplink tier: block
        # count compacts, agg/core widths stay — ToR->Agg wiring and
        # capacities are invariant under block compaction.
        sub = dc_replace(params, pods=1, blocks_per_pod=len(blocks))
        names = {placed.name for placed in jobs}
        configs = [
            _config_for(
                placed,
                tuple(rename_host(h, {pod: 0}, block_map)
                      for h in placed.hosts),
                scaled_compute_s(placed.job, placed.pods, power_caps))
            for placed in jobs
        ]
        faults = {
            name: dc_replace(
                fault,
                target=rename_device(fault.target, {pod: 0}, block_map))
            for name, fault in group.faults.items() if name in names
        }
        outcomes.update(runner.run(sub, configs, faults=faults or None))
    if healthy_single:
        outcomes.update(_fold_rep_blocks(
            params, healthy_single, pod, compute_scale, runner))
    return outcomes


def run_refined_group(params: AstralParams, group: RefinedGroup,
                      power_caps: Dict[int, float],
                      runner: EngineRunner, mode: str = "bounded",
                      flat: bool = False
                      ) -> Tuple[Dict[str, JobOutcome], RefinePlan]:
    """Refine one group at the cheapest certified ladder level."""
    plan = plan_refined_group(params, group, mode=mode, flat=flat)
    hosts_before = runner.engine_hosts
    if plan.level == "block":
        outcomes = _run_group_bounded(params, group, plan, power_caps,
                                      runner)
    else:
        outcomes = _run_group_pod(params, group, power_caps, runner)
    plan = dc_replace(plan,
                      n_engine_hosts=runner.engine_hosts - hosts_before)
    return outcomes, plan


def run_refined_groups(params: AstralParams, symmetry: SymmetryMap,
                       runner: EngineRunner, mode: str = "bounded"
                       ) -> Tuple[Dict[str, JobOutcome],
                                  List[RefinePlan]]:
    outcomes: Dict[str, JobOutcome] = {}
    plans: List[RefinePlan] = []
    for group in symmetry.refined:
        solved, plan = run_refined_group(
            params, group, symmetry.power_caps, runner, mode=mode,
            flat=symmetry.flat_fallback)
        outcomes.update(solved)
        plans.append(plan)
    return outcomes, plans

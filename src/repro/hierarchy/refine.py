"""Unfolding: broken symmetry falls back to exact flat simulation.

A fault — from ``repro.resilience``'s campaigns, a monitoring fault
spec, anything carrying a :class:`FaultSpec` — breaks the symmetry of
every pod it touches: the faulted pod no longer behaves like its
classmates, so its class membership is revoked and it is simulated
*exactly*, faults armed, on the real event-driven engine.  Pods that
share a cross-pod tenant with a refined pod are dragged in
transitively (``symmetry.detect_symmetry`` closes this), so each
:class:`RefinedGroup` is self-contained: no flow of its jobs touches
anything outside the group's pods.

The group runs on a ``pods=len(group)`` sub-topology with the full
block range preserved (fault blast radius may reach any block-level
device) and only pod indices rebased; fault targets are renamed with
the same map.  Core switch names are pod-free and pass through
untouched.  When *every* pod is refined the pod map is the identity,
the sub-topology equals the flat one, and — because group jobs keep
their original placement order, hence their original flow ids — the
result is bit-identical to a flat :class:`MultiJobRun`: full unfold
degenerates to flat, by construction rather than by approximation.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Dict

from ..monitoring.multijob import JobOutcome
from ..topology.astral import AstralParams
from .compose import scaled_compute_s
from .fold import EngineRunner, _config_for
from .symmetry import RefinedGroup, SymmetryMap
from .virtual import rename_device, rename_host

__all__ = ["run_refined_group", "run_refined_groups"]


def run_refined_group(params: AstralParams, group: RefinedGroup,
                      power_caps: Dict[int, float],
                      runner: EngineRunner) -> Dict[str, JobOutcome]:
    pod_map = {pod: index for index, pod in enumerate(group.pods)}
    sub = dc_replace(params, pods=len(group.pods))
    configs = [
        _config_for(
            placed,
            tuple(rename_host(h, pod_map) for h in placed.hosts),
            scaled_compute_s(placed.job, placed.pods, power_caps))
        for placed in group.jobs
    ]
    faults = {
        name: dc_replace(fault,
                         target=rename_device(fault.target, pod_map))
        for name, fault in group.faults.items()
    }
    return runner.run(sub, configs, faults=faults or None)


def run_refined_groups(params: AstralParams, symmetry: SymmetryMap,
                       runner: EngineRunner) -> Dict[str, JobOutcome]:
    outcomes: Dict[str, JobOutcome] = {}
    for group in symmetry.refined:
        outcomes.update(
            run_refined_group(params, group, symmetry.power_caps,
                              runner))
    return outcomes

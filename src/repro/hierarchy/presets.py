"""Scale presets and scenario builders for hierarchical runs.

The three named scales ladder up to the paper's deployment:

===== ======= ====== ================ ===========================
label GPUs    hosts  dims (p/b/h/g)   role
===== ======= ====== ================ ===========================
4k    4,096   512    2/4/64/8         laptop sanity scale
64k   65,536  8,192  4/16/128/8       datacenter-hall scale
512k  524,288 65,536 8/64/128/8       the paper's full deployment
===== ======= ====== ================ ===========================

``512k`` is exactly ``AstralParams()`` — the published Figure 3
dimensions.  ``uniform_jobs`` carves the cluster into equal
single-rail tenants in placement order, optionally splitting the tail
pods onto a second job shape so scenarios exercise multiple pod
classes rather than one degenerate fold.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..topology.astral import AstralParams
from .virtual import HierJob

__all__ = ["SCALE_PRESETS", "preset_params", "uniform_jobs"]

SCALE_PRESETS = ("4k", "64k", "512k")


def preset_params(scale: str) -> AstralParams:
    if scale == "4k":
        return AstralParams(pods=2, blocks_per_pod=4,
                            hosts_per_block=64, gpus_per_host=8,
                            aggs_per_group=4, cores_per_group=4)
    if scale == "64k":
        return AstralParams(pods=4, blocks_per_pod=16,
                            hosts_per_block=128, gpus_per_host=8,
                            aggs_per_group=8, cores_per_group=8)
    if scale == "512k":
        return AstralParams()
    raise ValueError(
        f"unknown scale {scale!r}; expected one of {SCALE_PRESETS}")


def uniform_jobs(params: AstralParams, hosts_per_job: int,
                 iterations: int = 4, compute_time_s: float = 0.5,
                 comm_size_bits: float = 8e9,
                 collective: str = "allreduce", seed: int = 0,
                 tail_shapes: int = 1) -> List[HierJob]:
    """Equal-size tenants tiling the whole cluster, placement order.

    ``hosts_per_job`` should divide ``hosts_per_block`` (or be a
    multiple of it) so jobs align to block boundaries and pods stay
    mutually symmetric.  With ``tail_shapes=2`` the last pod's jobs get
    a distinct seed, producing two pod classes instead of one.
    """
    total = params.pods * params.blocks_per_pod * params.hosts_per_block
    if hosts_per_job < 1 or hosts_per_job > total:
        raise ValueError(f"hosts_per_job out of range: {hosts_per_job}")
    n_jobs = total // hosts_per_job
    per_pod = total // params.pods // hosts_per_job
    width = max(4, len(str(n_jobs)))
    jobs = []
    for index in range(n_jobs):
        tail = (tail_shapes > 1 and per_pod > 0
                and index >= (params.pods - 1) * per_pod)
        jobs.append(HierJob(
            name=f"job{index:0{width}d}",
            n_hosts=hosts_per_job,
            compute_time_s=compute_time_s,
            comm_size_bits=comm_size_bits,
            iterations=iterations,
            collective=collective,
            seed=seed + (1 if tail else 0)))
    return jobs

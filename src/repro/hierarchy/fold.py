"""Solve one representative, replicate to the class — the fold itself.

Two granularities, chosen per pod class:

* **Block fold** — when every local job of the class fits in a single
  block, blocks within the representative pod are themselves grouped
  by signature and one representative *block* is engine-simulated on a
  minimal 1-pod/1-block topology.  Single-block traffic is ToR-local
  (host -> ToR -> host, 2 hops), so the Agg/Core tiers are provably
  untouched and the sub-topology shrinks them to 1 — at paper scale
  this turns a 8192-host pod into one 128-host simulation.
* **Pod fold** — otherwise the representative pod runs whole, on a
  1-pod topology containing only the blocks its jobs occupy
  (compacted, order-preserving).  ToR->Agg wiring and capacities are
  invariant under block compaction, which is what the line-rate
  certificate's boundary-leg analysis relies on.

Replication is pure bookkeeping: member jobs are matched to rep jobs
k-th to k-th under the canonical (shape, positions, name) sort that
the signatures are built from, and receive copies of the rep's
iteration times.  Device renaming (pod -> 0, block -> 0/compacted)
re-salts ECMP hashes, so replicated results are bit-exact exactly when
the class is certified hash-independent; otherwise they are
tolerance-bounded — ``SymmetryMap.exact`` tracks which claim holds.

An :class:`EngineRunner` memoises sub-simulations on their full input
(sub-params + configs): identical block classes recurring across pod
classes (e.g. pods that differ only in cross-pod footprint) are solved
once per process.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..monitoring.faults import FaultSpec
from ..monitoring.jobsim import JobConfig
from ..monitoring.multijob import JobOutcome, MultiJobRun
from ..network.fabric import Fabric
from ..network.flows import reset_flow_ids
from ..topology.astral import AstralParams, build_astral
from .compose import scaled_compute_s
from .symmetry import PodClass, block_signature, job_shape
from .virtual import PlacedJob, rename_host

__all__ = ["EngineRunner", "fold_pod_class"]


class EngineRunner:
    """Runs (and memoises) exact sub-simulations; tracks fold stats."""

    def __init__(self) -> None:
        self._memo: Dict[Tuple, Dict[str, JobOutcome]] = {}
        self.n_sims = 0
        self.n_memo_hits = 0
        self.engine_hosts = 0

    def run(self, params: AstralParams,
            configs: Sequence[JobConfig],
            faults: Optional[Dict[str, FaultSpec]] = None
            ) -> Dict[str, JobOutcome]:
        configs = tuple(configs)
        key = None
        if not faults:
            key = (params, configs)
            cached = self._memo.get(key)
            if cached is not None:
                self.n_memo_hits += 1
                return cached
        # Fresh flow ids per sub-simulation: flow-id-derived source
        # ports feed the ECMP hash, so every group must start from the
        # same counter regardless of how many groups ran before it.
        reset_flow_ids()
        topology = build_astral(params)
        fabric = Fabric(topology,
                        host_line_rate_gbps=params.nic_port_gbps,
                        solver=params.solver)
        outcomes = MultiJobRun(fabric, list(configs),
                               faults=faults or None).run()
        self.n_sims += 1
        self.engine_hosts += sum(len(c.hosts) for c in configs)
        if key is not None:
            self._memo[key] = outcomes
        return outcomes


def _copy_outcome(name: str, rep: JobOutcome) -> JobOutcome:
    return JobOutcome(job=name,
                      iteration_times_s=list(rep.iteration_times_s),
                      expected_iteration_s=rep.expected_iteration_s)


def _config_for(placed: PlacedJob, hosts: Tuple[str, ...],
                compute_time_s: float) -> JobConfig:
    job = placed.job
    return JobConfig(
        name=placed.name, hosts=hosts, rail=job.rail,
        compute_time_s=compute_time_s,
        comm_size_bits=job.comm_size_bits,
        iterations=job.iterations, collective=job.collective,
        compute_noise_frac=job.compute_noise_frac, seed=job.seed,
        start_time_s=job.start_time_s)


def _block_sort_key(placed: PlacedJob):
    return (job_shape(placed.job),
            tuple(h for _, _, h in placed.coords), placed.name)


def _fold_rep_blocks(params: AstralParams, rep_jobs: List[PlacedJob],
                     rep_pod: int, compute_scale: float,
                     runner: EngineRunner) -> Dict[str, JobOutcome]:
    """Solve the representative pod by folding its identical blocks."""
    by_block: Dict[int, List[PlacedJob]] = {}
    for placed in rep_jobs:
        by_block.setdefault(placed.blocks[0], []).append(placed)

    block_classes: Dict[Tuple, List[int]] = {}
    for block in sorted(by_block):
        block_classes.setdefault(
            block_signature(by_block[block]), []).append(block)

    # Single-block traffic never leaves its ToRs, so the Agg/Core
    # tiers are dead weight: shrink them to the minimum.
    sub = replace(params, pods=1, blocks_per_pod=1,
                  aggs_per_group=1, cores_per_group=1)
    outcomes: Dict[str, JobOutcome] = {}
    for blocks in block_classes.values():
        rep_block = blocks[0]
        rep_sorted = sorted(by_block[rep_block], key=_block_sort_key)
        configs = [
            _config_for(
                placed,
                tuple(rename_host(h, {rep_pod: 0}, {rep_block: 0})
                      for h in placed.hosts),
                placed.job.compute_time_s / compute_scale)
            for placed in rep_sorted
        ]
        solved = runner.run(sub, configs)
        for block in blocks:
            members = sorted(by_block[block], key=_block_sort_key)
            for member, rep in zip(members, rep_sorted):
                outcomes[member.name] = _copy_outcome(
                    member.name, solved[rep.name])
    return outcomes


def _solve_rep_pod(params: AstralParams, rep_jobs: List[PlacedJob],
                   rep_pod: int, compute_scale: float,
                   runner: EngineRunner) -> Dict[str, JobOutcome]:
    """Engine-simulate the whole representative pod (multi-block jobs)."""
    used_blocks = sorted({b for placed in rep_jobs
                          for b in placed.blocks})
    block_map = {block: index
                 for index, block in enumerate(used_blocks)}
    sub = replace(params, pods=1, blocks_per_pod=len(used_blocks))
    configs = [
        _config_for(
            placed,
            tuple(rename_host(h, {rep_pod: 0}, block_map)
                  for h in placed.hosts),
            placed.job.compute_time_s / compute_scale)
        for placed in rep_jobs
    ]
    return runner.run(sub, configs)


def fold_pod_class(params: AstralParams, cls: PodClass,
                   power_caps: Dict[int, float],
                   runner: EngineRunner) -> Dict[str, JobOutcome]:
    """Solve the class representative once, replicate to every member."""
    rep_jobs = cls.jobs_by_pod[cls.rep]
    if not rep_jobs:
        return {}
    # A cap factor f stretches compute by 1/f; members share the rep's
    # factor by signature, and x/1.0 == x keeps the uncapped path
    # bit-identical to an unscaled config.
    compute_scale = power_caps.get(cls.rep, 1.0)
    if cls.foldable_by_block:
        rep_outcomes = _fold_rep_blocks(params, rep_jobs, cls.rep,
                                        compute_scale, runner)
    else:
        rep_outcomes = _solve_rep_pod(params, rep_jobs, cls.rep,
                                      compute_scale, runner)
    outcomes = dict(rep_outcomes)
    for member in cls.members:
        if member == cls.rep:
            continue
        for member_job, rep_job in zip(cls.jobs_by_pod[member],
                                       rep_jobs):
            outcomes[member_job.name] = _copy_outcome(
                member_job.name, rep_outcomes[rep_job.name])
    return outcomes

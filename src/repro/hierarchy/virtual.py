"""Arithmetic view of an Astral fabric: coordinates without objects.

The flat builder (:func:`repro.topology.astral.build_astral`)
instantiates every host, switch, and link as a Python object — ~78K
devices at paper scale, which is exactly what the hierarchical layer
must avoid.  This module works purely in *coordinates*: a host is a
``(pod, block, host)`` triple, devices are names derived from the same
formulas the builder uses, and placement is integer arithmetic over
:class:`~repro.topology.astral.AstralParams`.  Nothing here allocates
per-device state, so a 512K-GPU cluster costs a dataclass.

Name formats (kept bit-compatible with ``build_astral`` so folded
sub-simulations and flat reference runs agree on every identifier):

* host  ``p{pod}.b{block}.h{host}``
* ToR   ``p{pod}.b{block}.r{rail}.g{group}.tor``
* Agg   ``p{pod}.r{rail}.g{group}.a{rank}.agg``
* Core  ``cg{group}.c{index}.core`` (pod-free: never renamed)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..topology.astral import AstralParams

__all__ = [
    "Coord",
    "HierJob",
    "PlacedJob",
    "host_name",
    "parse_host",
    "pod_of_device",
    "place_jobs",
    "rename_device",
    "rename_host",
]

#: (pod, block, host) — one host's coordinates in the fabric.
Coord = Tuple[int, int, int]


def host_name(pod: int, block: int, host: int) -> str:
    return f"p{pod}.b{block}.h{host}"


def parse_host(name: str) -> Coord:
    """``p1.b2.h3`` -> ``(1, 2, 3)``; raises ValueError otherwise."""
    parts = name.split(".")
    if len(parts) != 3 or parts[0][:1] != "p" or parts[1][:1] != "b" \
            or parts[2][:1] != "h":
        raise ValueError(f"not an Astral host name: {name!r}")
    return int(parts[0][1:]), int(parts[1][1:]), int(parts[2][1:])


def pod_of_device(name: str) -> Optional[int]:
    """Pod index encoded in a device name, or None (core tier, links).

    Works for hosts, ToRs, and Aggs, whose names all begin ``p<pod>.``;
    core switches (``cg...``) and opaque targets return None.
    """
    head = name.split(".", 1)[0]
    if head[:1] == "p" and head[1:].isdigit():
        return int(head[1:])
    return None


def rename_host(name: str, pod_map: Dict[int, int],
                block_map: Optional[Dict[int, int]] = None) -> str:
    pod, block, host = parse_host(name)
    if block_map is not None:
        block = block_map[block]
    return host_name(pod_map[pod], block, host)


def rename_device(name: str, pod_map: Dict[int, int],
                  block_map: Optional[Dict[int, int]] = None) -> str:
    """Rename any pod-scoped device into a sub-simulation's coordinates.

    Hosts and ToRs carry ``p<pod>.b<block>`` prefixes, Aggs only a
    ``p<pod>``; core names and unrecognised targets pass through
    unchanged (cores are shared and pod-free by construction).
    """
    parts = name.split(".")
    head = parts[0]
    if head[:1] != "p" or not head[1:].isdigit():
        return name
    pod = int(head[1:])
    if pod not in pod_map:
        return name
    parts[0] = f"p{pod_map[pod]}"
    if len(parts) > 1 and parts[1][:1] == "b" and parts[1][1:].isdigit():
        block = int(parts[1][1:])
        if block_map is not None:
            parts[1] = f"b{block_map[block]}"
    return ".".join(parts)


@dataclass(frozen=True)
class HierJob:
    """Shape of one tenant in a hierarchical scenario.

    Mirrors :class:`repro.monitoring.jobsim.JobConfig`, minus concrete
    host names: jobs are placed by the contiguous virtual placer unless
    ``hosts`` pins them explicitly.  Identically-shaped jobs (same
    field values except ``name``/``hosts``) at identical pod-relative
    positions are what the symmetry detector folds together — note
    ``seed`` is part of the shape, because the compute-noise draws it
    feeds must replicate bit-for-bit.
    """

    name: str
    n_hosts: int = 0
    hosts: Tuple[str, ...] = ()
    rail: int = 0
    compute_time_s: float = 0.5
    comm_size_bits: float = 8e9
    iterations: int = 4
    collective: str = "allreduce"
    compute_noise_frac: float = 0.01
    seed: int = 0
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.hosts and self.n_hosts < 1:
            raise ValueError(
                f"job {self.name!r} needs n_hosts >= 1 or explicit hosts")


@dataclass(frozen=True)
class PlacedJob:
    """A job bound to concrete host coordinates."""

    job: HierJob
    hosts: Tuple[str, ...]
    coords: Tuple[Coord, ...] = field(default=())

    @property
    def name(self) -> str:
        return self.job.name

    @property
    def pods(self) -> Tuple[int, ...]:
        return tuple(sorted({coord[0] for coord in self.coords}))

    @property
    def pod_local(self) -> bool:
        return len(self.pods) == 1

    @property
    def pod(self) -> int:
        """The single pod of a pod-local job."""
        pods = self.pods
        if len(pods) != 1:
            raise ValueError(f"job {self.name!r} spans pods {pods}")
        return pods[0]

    @property
    def blocks(self) -> Tuple[int, ...]:
        return tuple(sorted({coord[1] for coord in self.coords}))

    def positions_in_pod(self) -> Tuple[Tuple[int, int], ...]:
        """Pod-relative host slots, in ring (placement) order."""
        return tuple((block, host) for _, block, host in self.coords)


def _host_at(params: AstralParams, index: int) -> Coord:
    per_block = params.hosts_per_block
    per_pod = params.blocks_per_pod * per_block
    pod, rest = divmod(index, per_pod)
    block, host = divmod(rest, per_block)
    return pod, block, host


def place_jobs(params: AstralParams,
               jobs: Sequence[HierJob]) -> List[PlacedJob]:
    """Contiguously place *jobs* on the virtual fabric, in order.

    The cursor walks hosts pod-major (pod, block, host) — the same
    order a contiguous flat allocator fills — so identical job
    sequences land at identical pod-relative slots in every pod, which
    is what gives the symmetry detector something to fold.  Jobs with
    explicit ``hosts`` are honoured verbatim (and may overlap the
    cursor only if the caller wants them to: explicitly-placed hosts
    are reserved before the cursor starts).
    """
    total = params.pods * params.blocks_per_pod * params.hosts_per_block
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError("job names must be unique")
    reserved = set()
    for job in jobs:
        for host in job.hosts:
            coord = parse_host(host)
            if coord in reserved:
                raise ValueError(
                    f"host {host} pinned by more than one job")
            reserved.add(coord)
    placed: List[PlacedJob] = []
    cursor = 0
    for job in jobs:
        if job.hosts:
            coords = tuple(parse_host(host) for host in job.hosts)
            placed.append(PlacedJob(job=job, hosts=tuple(job.hosts),
                                    coords=coords))
            continue
        coords_list: List[Coord] = []
        while len(coords_list) < job.n_hosts:
            if cursor >= total:
                raise ValueError(
                    f"cluster exhausted placing job {job.name!r}: "
                    f"{total} hosts, need {job.n_hosts} more")
            coord = _host_at(params, cursor)
            cursor += 1
            if coord in reserved:
                continue
            coords_list.append(coord)
        coords = tuple(coords_list)
        placed.append(PlacedJob(
            job=job,
            hosts=tuple(host_name(*coord) for coord in coords),
            coords=coords))
    return placed

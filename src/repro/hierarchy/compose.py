"""Analytic per-tier models stitched to the event-driven tiers.

ASTRA-sim 2.0's hierarchical trick: tiers whose behaviour has a closed
form don't need events.  Here the Core tier is that tier — healthy
cross-pod jobs ride analytic ring/all-to-all forms (the same per-leg
payloads ``network.collectives`` generates: ``2(n-1)/n * size`` per
ring neighbour, ``size/n`` per all-to-all pair) under two first-order
capacity constraints:

* the host NIC: each endpoint drains its per-iteration payload at most
  at ``nic_port_gbps``;
* pod egress: all analytic legs leaving a pod on one rail share that
  pod's aggregate uplink capacity, max-min style — every saturating
  tenant sees the same drain time ``total_bits / capacity``.

Ingress is assumed symmetric with egress (true for rings and uniform
all-to-all) and is not double-counted.  This tier is deliberately
*tolerance-bounded*, never exact: flat runs hash cross-pod flows over
Core paths we do not model per-link.  Exactness claims live entirely
with the certificate in ``symmetry.py``.

Compute, by contrast, is replayed **bit-for-bit**: the same
``random.Random(seed)`` gauss stream :class:`MonitoredTrainingJob`
draws, host-count x iterations, so the compute component of an
analytic job's iteration times is identical to what the engine tier
would have produced.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..monitoring.multijob import JobOutcome
from ..topology.astral import AstralParams
from .virtual import PlacedJob

__all__ = [
    "analytic_outcomes",
    "compute_draws",
    "pod_egress_gbps",
    "scaled_compute_s",
]


def compute_draws(compute_time_s: float, noise_frac: float, seed: int,
                  n_hosts: int, iterations: int) -> List[float]:
    """Per-iteration slowest-host compute time, replaying the job RNG.

    Mirrors ``MonitoredTrainingJob._compute_time`` exactly: one
    ``gauss(0, noise_frac)`` draw per host per iteration, in host
    order, floored at 10% of nominal; the iteration's compute phase is
    the max across hosts.
    """
    rng = random.Random(seed)
    draws = []
    for _ in range(iterations):
        worst = 0.0
        for _ in range(n_hosts):
            sample = compute_time_s \
                * max(0.1, 1.0 + rng.gauss(0.0, noise_frac))
            if sample > worst:
                worst = sample
        draws.append(worst)
    return draws


def scaled_compute_s(job, pods: Sequence[int],
                     power_caps: Dict[int, float]) -> float:
    """Nominal compute under tidal power caps: the slowest pod rules.

    A cap factor ``f`` in (0, 1] stretches compute by ``1/f`` (GPUs
    clock down; NICs do not).  A job spanning several capped pods runs
    at the pace of its most-capped pod.
    """
    factor = min((power_caps.get(pod, 1.0) for pod in pods),
                 default=1.0)
    return job.compute_time_s / factor


def pod_egress_gbps(params: AstralParams) -> float:
    """Aggregate Core-bound capacity of one pod on one rail, Gbps."""
    uplink = (params.blocks_per_pod * params.tor_agg_gbps
              / params.cores_per_group / params.tier3_oversubscription)
    return (params.tor_groups * params.aggs_per_group
            * params.cores_per_group * uplink)


def _egress_bits_by_pod(placed: PlacedJob) -> Dict[int, float]:
    """Bits one iteration of *placed* pushes out of each pod it spans."""
    job = placed.job
    n = len(placed.coords)
    out: Dict[int, float] = {}
    if n < 2:
        return out
    if job.collective == "all_to_all":
        per_pod = {}
        for pod, _, _ in placed.coords:
            per_pod[pod] = per_pod.get(pod, 0) + 1
        for pod, members in per_pod.items():
            out[pod] = members * (n - members) * job.comm_size_bits / n
        return out
    per_neighbor = 2.0 * (n - 1) / n * job.comm_size_bits
    for index, src in enumerate(placed.coords):
        dst = placed.coords[(index + 1) % n]
        if src[0] != dst[0]:
            out[src[0]] = out.get(src[0], 0.0) + per_neighbor
    return out


def _host_bottleneck_bits(placed: PlacedJob) -> float:
    """Bits the busiest endpoint must push per iteration."""
    job = placed.job
    n = len(placed.coords)
    if n < 2:
        return 0.0
    if job.collective == "all_to_all":
        return (n - 1) / n * job.comm_size_bits
    return 2.0 * (n - 1) / n * job.comm_size_bits


def analytic_outcomes(params: AstralParams,
                      jobs: Sequence[PlacedJob],
                      power_caps: Optional[Dict[int, float]] = None
                      ) -> Dict[str, JobOutcome]:
    """Closed-form outcomes for the healthy cross-pod tier.

    Shared comm time per job is ``max(NIC drain, worst shared pod
    egress drain)``; expected (solo) time replaces the shared egress
    totals with the job's own bits, so ``efficiency <= 1`` by
    construction whenever other tenants contend for the same pod
    uplinks.
    """
    power_caps = power_caps or {}
    nic_bps = params.nic_port_gbps * 1e9
    egress_bps = pod_egress_gbps(params) * 1e9

    per_job_bits: Dict[str, Dict[int, float]] = {}
    totals: Dict[int, float] = {}
    for placed in jobs:
        bits = _egress_bits_by_pod(placed)
        per_job_bits[placed.name] = bits
        for pod, amount in bits.items():
            totals[pod] = totals.get(pod, 0.0) + amount

    outcomes: Dict[str, JobOutcome] = {}
    for placed in jobs:
        job = placed.job
        host_term = _host_bottleneck_bits(placed) / nic_bps
        own = per_job_bits[placed.name]
        shared = max([host_term]
                     + [totals[pod] / egress_bps for pod in own])
        solo = max([host_term]
                   + [bits / egress_bps for bits in own.values()])
        compute = scaled_compute_s(job, placed.pods, power_caps)
        draws = compute_draws(compute, job.compute_noise_frac,
                              job.seed, len(placed.hosts),
                              job.iterations)
        outcomes[placed.name] = JobOutcome(
            job=placed.name,
            iteration_times_s=[draw + shared for draw in draws],
            expected_iteration_s=compute + solo)
    return outcomes

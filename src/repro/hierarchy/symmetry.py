"""Equivalence classes of identical pods — what makes folding legal.

Astral's allocation discipline (packed, rail-aligned, pod-major) means
a large cluster is mostly *copies*: pods running the same mix of
identically-shaped tenants at the same pod-relative slots.  Two pods
whose **signatures** match produce identical simulation results, so the
folded runner solves one representative and replicates (``fold.py``).

A pod signature captures everything its local simulation can depend
on:

* the sorted multiset of (job shape, pod-relative host slots) of its
  pod-local jobs — shape includes the RNG ``seed``, because compute
  noise must replicate bit-for-bit;
* the pod's power-cap factor (tidal capping rescales compute);
* the pod-relative footprint of any cross-pod job passing through
  (analytic today, but pods with different cross footprints must not
  share a class).

Symmetry *breaks* per pod: a fault pins every pod its job touches (and
the pod named by the fault target) into exact refinement
(``refine.py``); cross-pod jobs touching a refined pod drag their other
pods in transitively, closing refinement under shared tenancy.

The **line-rate certificate** is the exactness proof: when it holds for
a class, every flow of the representative is allocated exactly the
host line rate at every instant *regardless of ECMP hash outcomes*, so
renaming devices (which re-salts the hashes) cannot change any finish
time and folded results equal flat results ``==``, not approximately.
The certificate requires ring collectives (out-degree 1 per host per
rail) and, per (block, rail), that even if every block-boundary ring
leg hashed onto one ToR->Agg uplink it still could not saturate it:
``legs * nic_port_gbps <= tor_agg_gbps``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..monitoring.faults import FaultSpec
from ..topology.astral import AstralParams
from .virtual import PlacedJob, pod_of_device

__all__ = [
    "PodClass",
    "RefinedGroup",
    "SymmetryMap",
    "block_signature",
    "detect_symmetry",
    "job_shape",
    "line_rate_certificate",
    "pod_signature",
]


def job_shape(job) -> Tuple:
    """Everything about a job that affects its simulation, minus identity.

    ``name`` and concrete hosts are excluded; ``seed`` is *included*
    (folded copies must replay the same compute-noise stream).
    """
    return (job.rail, job.compute_time_s, job.comm_size_bits,
            job.iterations, job.collective, job.compute_noise_frac,
            job.seed, job.start_time_s)


def pod_signature(pod: int, local: Sequence[PlacedJob],
                  cross: Sequence[PlacedJob],
                  power_cap: float = 1.0) -> Tuple:
    local_part = tuple(sorted(
        (job_shape(p.job), p.positions_in_pod()) for p in local))
    cross_part = tuple(sorted(
        (job_shape(p.job),
         tuple((b, h) for q, b, h in p.coords if q == pod),
         len(p.hosts), p.pods.index(pod))
        for p in cross))
    return (local_part, cross_part, power_cap)


def block_signature(block_jobs: Sequence[PlacedJob]) -> Tuple:
    """Signature of one block's (single-block) jobs, block-relative."""
    return tuple(sorted(
        (job_shape(p.job), tuple(h for _, _, h in p.coords))
        for p in block_jobs))


def line_rate_certificate(params: AstralParams,
                          jobs: Sequence[PlacedJob]) -> bool:
    """True when every flow is pinned to exactly the host line rate.

    Holds when (a) every job is a ring collective, so each host has one
    outgoing and one incoming flow per rail — the dedicated host<->ToR
    links carry exactly one flow each; and (b) for every (block, rail),
    the count of ring legs exiting (or entering) the block cannot
    oversubscribe a single ToR->Agg uplink even in the worst hash
    placement.  Then no ECMP-ambiguous hop is ever a bottleneck, the
    max-min allocation is ``nic_port_gbps`` for every flow at every
    solve, and finish times are invariant under device renaming —
    folding is exact.  Pod-crossing legs (which climb to the Core tier)
    void the certificate.
    """
    enter: Counter = Counter()
    exits: Counter = Counter()
    for placed in jobs:
        if placed.job.collective != "allreduce":
            return False
        coords = placed.coords
        n = len(coords)
        if n < 2:
            continue
        rail = placed.job.rail
        for index, src in enumerate(coords):
            dst = coords[(index + 1) % n]
            if src[0] != dst[0]:
                return False          # pod-crossing leg: core tier
            if src[1] == dst[1]:
                continue              # same block: ToR-local, dedicated
            exits[(src[0], src[1], rail)] += 1
            enter[(dst[0], dst[1], rail)] += 1
    limit = params.tor_agg_gbps / params.nic_port_gbps
    worst = max(list(enter.values()) + list(exits.values()), default=0)
    return worst <= limit


@dataclass
class PodClass:
    """Healthy pods sharing one signature; the rep is solved once."""

    signature: Tuple
    rep: int
    members: List[int]
    #: pod -> its local jobs, sorted by (shape, positions, name) — the
    #: k-th job of any member maps onto the k-th job of the rep.
    jobs_by_pod: Dict[int, List[PlacedJob]]
    certified: bool = False

    @property
    def foldable_by_block(self) -> bool:
        """All local jobs single-block: the rep itself sub-folds."""
        return all(len(p.blocks) == 1
                   for p in self.jobs_by_pod[self.rep])


@dataclass
class RefinedGroup:
    """Pods whose symmetry is broken, simulated together exactly."""

    pods: Tuple[int, ...]
    jobs: List[PlacedJob]               # in original placement order
    faults: Dict[str, FaultSpec] = field(default_factory=dict)
    reasons: List[str] = field(default_factory=list)


@dataclass
class SymmetryMap:
    """The fold/refine plan for one scenario."""

    params: AstralParams
    placed: List[PlacedJob]
    classes: List[PodClass]
    refined: List[RefinedGroup]
    analytic: List[PlacedJob]           # healthy cross-pod jobs
    broken: Dict[int, List[str]]
    power_caps: Dict[int, float]
    #: an unlocatable fault target (e.g. ``link:<id>``) forced a full
    #: flat fallback: one identity-mapped refined group of every pod.
    flat_fallback: bool = False

    @property
    def exact(self) -> bool:
        """Folded results provably equal flat results bit-for-bit."""
        return (not self.refined and not self.analytic
                and all(cls.certified for cls in self.classes))


def _sort_key(placed: PlacedJob):
    return (job_shape(placed.job), placed.positions_in_pod(),
            placed.name)


def detect_symmetry(params: AstralParams, placed: Sequence[PlacedJob],
                    faults: Optional[Dict[str, FaultSpec]] = None,
                    power_caps: Optional[Dict[int, float]] = None
                    ) -> SymmetryMap:
    """Partition pods into foldable classes, refined groups, and the
    analytic cross-pod tier."""
    faults = dict(faults or {})
    power_caps = dict(power_caps or {})
    for pod, factor in power_caps.items():
        if not 0.0 < factor <= 1.0:
            raise ValueError(
                f"power cap for pod {pod} must be in (0, 1]: {factor}")
    by_name = {p.name: p for p in placed}
    for name in faults:
        if name not in by_name:
            raise ValueError(f"fault names unknown job {name!r}")

    local_by_pod: Dict[int, List[PlacedJob]] = {}
    cross_jobs: List[PlacedJob] = []
    for p in placed:
        if p.pod_local:
            local_by_pod.setdefault(p.pod, []).append(p)
        else:
            cross_jobs.append(p)

    # -- which pods does each fault break? -----------------------------
    broken: Dict[int, List[str]] = {}
    flat_fallback = False

    def _break(pod: int, reason: str) -> None:
        broken.setdefault(pod, []).append(reason)

    for name, fault in faults.items():
        job = by_name[name]
        target_pod = pod_of_device(fault.target)
        if target_pod is None and not job.pod_local:
            flat_fallback = True
        elif target_pod is None:
            # An unlocatable target (link id, opaque name) on a
            # pod-local job still pins at least that job's pod; link
            # ids shift under renaming and core switches are shared by
            # every pod, so both escalate straight to flat.
            if (fault.target.startswith("link:")
                    or fault.target.split(".")[-1] == "core"):
                flat_fallback = True
            else:
                _break(job.pod, f"fault {name}: {fault.target}")
        else:
            _break(target_pod, f"fault {name}: {fault.target}")
            for pod in job.pods:
                if pod != target_pod:
                    _break(pod, f"fault {name} on co-tenant pod")

    if flat_fallback:
        group = RefinedGroup(
            pods=tuple(range(params.pods)),
            jobs=list(placed),
            faults=faults,
            reasons=["unlocatable fault target: flat fallback"])
        return SymmetryMap(
            params=params, placed=list(placed), classes=[],
            refined=[group], analytic=[], broken=broken,
            power_caps=power_caps, flat_fallback=True)

    # Close refinement under shared cross-pod tenancy: a cross job with
    # one broken pod must be simulated whole, so its other pods break.
    changed = True
    while changed:
        changed = False
        for p in cross_jobs:
            pods = p.pods
            if any(pod in broken for pod in pods):
                for pod in pods:
                    if pod not in broken:
                        _break(pod, f"cross job {p.name} spans a "
                                    "refined pod")
                        changed = True

    # -- refined groups: union-find over broken pods via cross jobs ---
    parent: Dict[int, int] = {pod: pod for pod in broken}

    def _find(pod: int) -> int:
        while parent[pod] != pod:
            parent[pod] = parent[parent[pod]]
            pod = parent[pod]
        return pod

    def _union(a: int, b: int) -> None:
        ra, rb = _find(a), _find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    refined_cross: List[PlacedJob] = []
    analytic: List[PlacedJob] = []
    for p in cross_jobs:
        if any(pod in broken for pod in p.pods):
            refined_cross.append(p)
            pods = p.pods
            for pod in pods[1:]:
                _union(pods[0], pod)
        else:
            analytic.append(p)

    groups: Dict[int, List[int]] = {}
    for pod in sorted(broken):
        groups.setdefault(_find(pod), []).append(pod)

    refined: List[RefinedGroup] = []
    for root in sorted(groups):
        pods = tuple(sorted(groups[root]))
        pod_set = set(pods)
        jobs = [p for p in placed
                if (p.pod_local and p.pod in pod_set)
                or (not p.pod_local and p in refined_cross
                    and p.pods[0] in pod_set)]
        group_faults = {name: fault for name, fault in faults.items()
                        if any(pod in pod_set
                               for pod in by_name[name].pods)}
        refined.append(RefinedGroup(
            pods=pods, jobs=jobs, faults=group_faults,
            reasons=sorted({reason for pod in pods
                            for reason in broken[pod]})))

    # -- fold the healthy pods by signature ----------------------------
    cross_by_pod: Dict[int, List[PlacedJob]] = {}
    for p in analytic:
        for pod in p.pods:
            cross_by_pod.setdefault(pod, []).append(p)

    classes: Dict[Tuple, PodClass] = {}
    for pod in sorted(local_by_pod):
        if pod in broken:
            continue
        jobs = sorted(local_by_pod[pod], key=_sort_key)
        signature = pod_signature(
            pod, jobs, cross_by_pod.get(pod, ()),
            power_caps.get(pod, 1.0))
        cls = classes.get(signature)
        if cls is None:
            classes[signature] = PodClass(
                signature=signature, rep=pod, members=[pod],
                jobs_by_pod={pod: jobs},
                certified=line_rate_certificate(params, jobs))
        else:
            cls.members.append(pod)
            cls.jobs_by_pod[pod] = jobs

    return SymmetryMap(
        params=params, placed=list(placed),
        classes=sorted(classes.values(), key=lambda cls: cls.rep),
        refined=refined, analytic=analytic, broken=broken,
        power_caps=power_caps)

"""`HierarchicalRun`: the folded simulator behind MultiJobRun's surface.

Consumers that iterate ``Dict[str, JobOutcome]`` — cluster reports,
resilience campaigns, seer calibration — work unchanged: ``run()``
returns the same mapping :class:`MultiJobRun.run` does, with every job
present whether it was engine-simulated, replicated from a fold
representative, refined flat, or composed analytically.

``flat_job_configs`` is the bridge the differential harness uses: it
produces the *exact* flat-run configs (same placement, same power-cap
compute scaling arithmetic) for a scenario, so flat-vs-folded
comparisons are apples to apples down to the float operations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..monitoring.faults import FaultSpec
from ..monitoring.jobsim import JobConfig
from ..monitoring.multijob import JobOutcome
from ..network.fabric import Fabric
from ..topology.astral import AstralParams, build_astral
from .compose import analytic_outcomes, scaled_compute_s
from .fold import EngineRunner, fold_pod_class
from .refine import REFINE_MODES, RefinePlan, run_refined_groups
from .symmetry import SymmetryMap, detect_symmetry
from .virtual import HierJob, place_jobs

__all__ = ["HierarchicalReport", "HierarchicalRun", "build_flat_fabric",
           "flat_job_configs"]


def _level_histogram(plans: Sequence[RefinePlan]) -> Dict[str, int]:
    levels: Dict[str, int] = {}
    for plan in plans:
        levels[plan.level] = levels.get(plan.level, 0) + 1
    return levels


def build_flat_fabric(params: AstralParams) -> Fabric:
    """The flat reference fabric, built exactly as the fold's sub-sims
    build theirs (host line rate = NIC port rate)."""
    return Fabric(build_astral(params),
                  host_line_rate_gbps=params.nic_port_gbps,
                  solver=params.solver)


def flat_job_configs(params: AstralParams, jobs: Sequence[HierJob],
                     pod_power_caps: Optional[Dict[int, float]] = None
                     ) -> List[JobConfig]:
    """Flat-run configs for a hierarchical scenario, placement-ordered."""
    caps = dict(pod_power_caps or {})
    configs = []
    for placed in place_jobs(params, list(jobs)):
        job = placed.job
        configs.append(JobConfig(
            name=placed.name, hosts=placed.hosts, rail=job.rail,
            compute_time_s=scaled_compute_s(job, placed.pods, caps),
            comm_size_bits=job.comm_size_bits,
            iterations=job.iterations, collective=job.collective,
            compute_noise_frac=job.compute_noise_frac, seed=job.seed,
            start_time_s=job.start_time_s))
    return configs


@dataclass
class HierarchicalReport:
    """What the fold did and what it produced.

    ``to_dict`` is deterministic (no wall-clock, no ids) so farm
    workers reproduce it bit-for-bit; ``elapsed_s`` lives only on the
    object.  Per-job detail is capped at ``max_jobs`` entries in name
    order — paper-scale scenarios carry thousands of jobs and the
    aggregates already summarise them.
    """

    total_gpus: int = 0
    n_pods: int = 0
    n_jobs: int = 0
    n_job_hosts: int = 0
    n_pod_classes: int = 0
    n_refined_groups: int = 0
    n_refined_pods: int = 0
    n_analytic_jobs: int = 0
    n_engine_sims: int = 0
    n_memo_hits: int = 0
    engine_hosts: int = 0
    exact: bool = False
    flat_fallback: bool = False
    refine_mode: str = "bounded"
    #: ladder level -> how many refinement groups ran at it.
    refine_levels: Dict[str, int] = field(default_factory=dict)
    #: engine hosts billed by refinement groups (bounded bill).
    n_refine_engine_hosts: int = 0
    #: engine hosts a full-pod unfold would have billed for the same
    #: groups — the denominator of the bounded-refinement win.
    n_full_unfold_hosts: int = 0
    refine_reasons: Tuple[str, ...] = ()
    outcomes: Dict[str, JobOutcome] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def fold_factor(self) -> float:
        """Hosts the flat engine would simulate per host it did."""
        return self.n_job_hosts / max(1, self.engine_hosts)

    @property
    def mean_efficiency(self) -> float:
        if not self.outcomes:
            return 1.0
        return sum(o.efficiency for o in self.outcomes.values()) \
            / len(self.outcomes)

    def to_dict(self, max_jobs: int = 256) -> dict:
        names = sorted(self.outcomes)
        jobs = {}
        for name in names[:max_jobs]:
            outcome = self.outcomes[name]
            jobs[name] = {
                "iteration_times_s": list(outcome.iteration_times_s),
                "expected_iteration_s": outcome.expected_iteration_s,
                "mean_iteration_s": outcome.mean_iteration_s,
                "efficiency": outcome.efficiency,
            }
        return {
            "scenario": {
                "total_gpus": self.total_gpus,
                "n_pods": self.n_pods,
                "n_jobs": self.n_jobs,
                "n_job_hosts": self.n_job_hosts,
            },
            "fold": {
                "n_pod_classes": self.n_pod_classes,
                "n_refined_groups": self.n_refined_groups,
                "n_refined_pods": self.n_refined_pods,
                "n_analytic_jobs": self.n_analytic_jobs,
                "n_engine_sims": self.n_engine_sims,
                "n_memo_hits": self.n_memo_hits,
                "engine_hosts": self.engine_hosts,
                "fold_factor": self.fold_factor,
                "exact": self.exact,
                "flat_fallback": self.flat_fallback,
                "refine": {
                    "mode": self.refine_mode,
                    "levels": dict(sorted(self.refine_levels.items())),
                    "engine_hosts": self.n_refine_engine_hosts,
                    "full_unfold_hosts": self.n_full_unfold_hosts,
                    "reasons": list(self.refine_reasons),
                },
            },
            "aggregate": {
                "mean_efficiency": self.mean_efficiency,
                "mean_iteration_s": (
                    sum(o.mean_iteration_s
                        for o in self.outcomes.values())
                    / len(self.outcomes) if self.outcomes else 0.0),
            },
            "jobs": jobs,
            "n_jobs_truncated": max(0, len(names) - max_jobs),
        }


class HierarchicalRun:
    """Symmetry-folded simulation of a (possibly huge) Astral scenario.

    Same result surface as :class:`MultiJobRun`: ``run()`` returns
    ``Dict[str, JobOutcome]``.  ``report`` (populated by ``run()``)
    carries the fold statistics and the outcome map.
    """

    def __init__(self, params: AstralParams,
                 jobs: Sequence[HierJob],
                 faults: Optional[Dict[str, FaultSpec]] = None,
                 pod_power_caps: Optional[Dict[int, float]] = None,
                 refine: str = "bounded"):
        self.params = params
        self.jobs = list(jobs)
        if not self.jobs:
            raise ValueError("need at least one job")
        if refine not in REFINE_MODES:
            raise ValueError(
                f"unknown refine mode {refine!r}; expected one of "
                f"{REFINE_MODES}")
        self.refine = refine
        self.faults = dict(faults or {})
        self.power_caps = dict(pod_power_caps or {})
        self.placed = place_jobs(params, self.jobs)
        self.symmetry: SymmetryMap = detect_symmetry(
            params, self.placed, self.faults, self.power_caps)
        self.report = HierarchicalReport()
        self.refine_plans: List[RefinePlan] = []
        self._outcomes: Optional[Dict[str, JobOutcome]] = None

    def run(self) -> Dict[str, JobOutcome]:
        if self._outcomes is not None:
            return self._outcomes
        began = time.perf_counter()
        symmetry = self.symmetry
        runner = EngineRunner()
        solved: Dict[str, JobOutcome] = {}
        for cls in symmetry.classes:
            solved.update(fold_pod_class(self.params, cls,
                                         symmetry.power_caps, runner))
        refined, plans = run_refined_groups(self.params, symmetry,
                                            runner, mode=self.refine)
        solved.update(refined)
        self.refine_plans = plans
        solved.update(analytic_outcomes(self.params, symmetry.analytic,
                                        symmetry.power_caps))
        # Placement order, like MultiJobRun's config order.
        outcomes = {p.name: solved[p.name] for p in self.placed}
        self._outcomes = outcomes
        self.report = HierarchicalReport(
            total_gpus=self.params.total_gpus,
            n_pods=self.params.pods,
            n_jobs=len(self.placed),
            n_job_hosts=sum(len(p.hosts) for p in self.placed),
            n_pod_classes=len(symmetry.classes),
            n_refined_groups=len(symmetry.refined),
            n_refined_pods=sum(len(g.pods) for g in symmetry.refined),
            n_analytic_jobs=len(symmetry.analytic),
            n_engine_sims=runner.n_sims,
            n_memo_hits=runner.n_memo_hits,
            engine_hosts=runner.engine_hosts,
            exact=symmetry.exact,
            flat_fallback=symmetry.flat_fallback,
            refine_mode=self.refine,
            refine_levels=_level_histogram(plans),
            n_refine_engine_hosts=sum(p.n_engine_hosts for p in plans),
            n_full_unfold_hosts=sum(p.n_full_hosts for p in plans),
            refine_reasons=tuple(sorted(
                {reason for plan in plans for reason in plan.reasons})),
            outcomes=outcomes,
            elapsed_s=time.perf_counter() - began,
        )
        return outcomes

"""Deterministic job-arrival trace generation for the cluster scheduler.

The paper operates its fabric as a *shared production resource*: training
jobs of wildly different sizes arrive around the clock, run for hours to
weeks, fail, restart, and contend for pods (§5).  This module synthesizes
that arrival process with the statistical shape production traces report —
Poisson arrivals, power-of-two host counts skewed small with a heavy
large-job tail, log-normal durations — while staying fully reproducible:
every draw comes from one seeded :class:`random.Random`, seeded with a
*string* so the trace is identical across processes regardless of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["JobSpec", "WorkloadConfig", "WorkloadGenerator"]


@dataclass(frozen=True)
class JobSpec:
    """One job in an arrival trace.

    ``duration_s`` is the *service* time at ``n_hosts`` — the wall-clock
    the job needs on its full allocation with no failures or queueing.
    Higher ``priority`` is more important.
    """

    name: str
    submit_s: float
    n_hosts: int
    duration_s: float
    priority: int = 0

    @property
    def host_seconds(self) -> float:
        """Ideal work content: what the job charges a perfect cluster."""
        return self.n_hosts * self.duration_s


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic arrival process."""

    mean_interarrival_s: float = 450.0
    host_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32)
    size_weights: Sequence[float] = (0.25, 0.20, 0.20, 0.15, 0.12, 0.08)
    mean_duration_s: float = 2.0 * 3600.0
    duration_sigma: float = 0.8          # log-normal shape
    min_duration_s: float = 300.0
    priority_levels: Sequence[int] = (0, 1, 2)
    priority_weights: Sequence[float] = (0.70, 0.22, 0.08)

    def validate(self) -> None:
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean inter-arrival must be positive")
        if len(self.host_sizes) != len(self.size_weights):
            raise ValueError("host_sizes and size_weights must align")
        if len(self.priority_levels) != len(self.priority_weights):
            raise ValueError("priority levels and weights must align")
        if self.mean_duration_s <= 0 or self.min_duration_s < 0:
            raise ValueError("durations must be positive")


@dataclass
class WorkloadGenerator:
    """Seeded generator of :class:`JobSpec` traces."""

    seed: int = 0
    config: WorkloadConfig = field(default_factory=WorkloadConfig)

    def generate(self, n_jobs: int,
                 max_hosts: Optional[int] = None) -> List[JobSpec]:
        """Produce ``n_jobs`` specs in submit order.

        ``max_hosts`` clips requests to the cluster size so every job is
        schedulable in principle.
        """
        if n_jobs < 0:
            raise ValueError("cannot generate a negative number of jobs")
        self.config.validate()
        rng = random.Random(f"cluster-workload:{self.seed}")
        # log-normal with the configured mean: mu = ln(mean) - sigma^2/2
        mu = (math.log(self.config.mean_duration_s)
              - self.config.duration_sigma ** 2 / 2.0)
        specs: List[JobSpec] = []
        now = 0.0
        for index in range(n_jobs):
            now += rng.expovariate(1.0 / self.config.mean_interarrival_s)
            n_hosts = rng.choices(list(self.config.host_sizes),
                                  weights=self.config.size_weights)[0]
            if max_hosts is not None:
                n_hosts = max(1, min(n_hosts, max_hosts))
            duration = max(
                self.config.min_duration_s,
                rng.lognormvariate(mu, self.config.duration_sigma))
            priority = rng.choices(
                list(self.config.priority_levels),
                weights=self.config.priority_weights)[0]
            specs.append(JobSpec(
                name=f"job-{index:03d}",
                submit_s=round(now, 3),
                n_hosts=n_hosts,
                duration_s=round(duration, 3),
                priority=priority,
            ))
        return specs

    def demand_summary(self, specs: Sequence[JobSpec]
                       ) -> Tuple[float, float]:
        """(total host-seconds, mean hosts requested) of a trace."""
        if not specs:
            return 0.0, 0.0
        total = sum(spec.host_seconds for spec in specs)
        mean_hosts = sum(spec.n_hosts for spec in specs) / len(specs)
        return total, mean_hosts

"""Failure-driven rescheduling: MTBF draws, checkpoint/restart charges.

"I've Got 99 Problems But FLOPS Ain't One" argues that at datacenter
scale *recovery*, not raw FLOPS, sets delivered goodput; the paper's own
reliability model (:mod:`repro.core.reliability`) prices what a failure
costs.  This module turns that static model into scheduler events:

* each run attempt draws a failure time from the job-level MTBF of
  :class:`~repro.core.reliability.FailureModel` (exponential, seeded per
  ``(seed, job, attempt)`` with a *string* seed for cross-process
  determinism);
* on failure, progress since the last checkpoint is lost and the next
  attempt is charged :class:`~repro.core.reliability.CheckpointPolicy`
  restart cost;
* repeatedly failing jobs are *shrunk* (host count halved, service time
  stretched) so a flaky large job degrades instead of wedging the queue,
  and eventually killed after ``max_restarts``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from ..core.reliability import CheckpointPolicy, FailureModel

__all__ = ["RecoveryPolicy", "RequeuePlan", "RecoveryManager"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Requeue/shrink/give-up knobs."""

    max_restarts: int = 10
    shrink_after: int = 3        # failed attempts before halving hosts
    allow_shrink: bool = True


@dataclass(frozen=True)
class RequeuePlan:
    """What the scheduler should do with a failed (or preempted) job."""

    remaining_s: float           # service time still owed (next attempt)
    n_hosts: int                 # hosts the next attempt should request
    lost_s: float                # work rolled back to the last checkpoint
    restart_charge_s: float      # restart overhead folded into remaining
    shrunk: bool = False
    gave_up: bool = False


class RecoveryManager:
    """Deterministic failure injection + requeue planning."""

    def __init__(self,
                 failure_model: Optional[FailureModel] = None,
                 checkpoint: Optional[CheckpointPolicy] = None,
                 policy: Optional[RecoveryPolicy] = None,
                 gpus_per_host: int = 8,
                 failure_scale: float = 1.0,
                 seed: int = 0,
                 ttr_hours: float = 4.0):
        if failure_scale < 0:
            raise ValueError("failure_scale cannot be negative")
        if ttr_hours <= 0:
            raise ValueError("ttr_hours must be positive")
        self.failure_model = failure_model or FailureModel()
        self.checkpoint = checkpoint or CheckpointPolicy()
        self.policy = policy or RecoveryPolicy()
        self.gpus_per_host = gpus_per_host
        self.failure_scale = failure_scale
        self.seed = seed
        self.ttr_hours = ttr_hours

    # -- failure process -------------------------------------------------
    def job_mtbf_hours(self, n_hosts: int) -> float:
        """MTBF of one job's allocation (scaled by ``failure_scale``)."""
        n_gpus = n_hosts * self.gpus_per_host
        rate = self.failure_model.cluster_failure_rate_per_hour(
            n_gpus, gpus_per_host=self.gpus_per_host) * self.failure_scale
        return float("inf") if rate == 0 else 1.0 / rate

    def failure_delay_s(self, job: str, attempt: int,
                        n_hosts: int) -> Optional[float]:
        """Seconds until this attempt fails, or None for a clean run.

        The draw is exponential with the job-level MTBF and reproducible
        per ``(seed, job, attempt)`` — rerunning the same schedule gives
        the same failure history.
        """
        mtbf_h = self.job_mtbf_hours(n_hosts)
        if math.isinf(mtbf_h):
            return None
        rng = random.Random(f"cluster-fail:{self.seed}:{job}:{attempt}")
        return rng.expovariate(1.0 / (mtbf_h * 3600.0))

    def repair_delay_s(self, device: str, occurrence: int = 0) -> float:
        """Time-to-repair draw for a broken device (exponential around
        ``ttr_hours`` — field replacement of an optic/switch/host).

        String-seeded per ``(seed, device, occurrence)`` like
        :meth:`failure_delay_s`, so the repair timeline of a campaign
        is reproducible across processes.
        """
        rng = random.Random(
            f"cluster-repair:{self.seed}:{device}:{occurrence}")
        return rng.expovariate(1.0 / (self.ttr_hours * 3600.0))

    def checkpoint_interval_s(self, n_hosts: int) -> float:
        """Young/Daly-optimal interval for this allocation's MTBF."""
        return self.checkpoint.effective_interval_s(
            self.job_mtbf_hours(n_hosts))

    # -- requeue planning ------------------------------------------------
    def plan_requeue(self, job: str, attempt: int, n_hosts: int,
                     elapsed_s: float, remaining_before_s: float,
                     preempted: bool = False) -> RequeuePlan:
        """Account a failed/preempted attempt and plan the next one.

        A *failure* rolls progress back to the last checkpoint; a
        *preemption* checkpoints first (nothing lost).  Either way the
        next attempt is charged the restart cost, and a job that has
        failed ``shrink_after`` times is halved, stretching its service
        time proportionally (linear-scaling assumption).
        """
        if preempted:
            saved = elapsed_s
        else:
            interval = self.checkpoint_interval_s(n_hosts)
            saved = 0.0 if math.isinf(interval) else \
                math.floor(elapsed_s / interval) * interval
            saved = min(saved, elapsed_s)
        lost = elapsed_s - saved
        remaining = max(0.0, remaining_before_s - saved)
        if not preempted and attempt >= self.policy.max_restarts:
            return RequeuePlan(remaining_s=remaining, n_hosts=n_hosts,
                               lost_s=lost, restart_charge_s=0.0,
                               gave_up=True)
        new_hosts = n_hosts
        shrunk = False
        if (not preempted and self.policy.allow_shrink
                and attempt >= self.policy.shrink_after and n_hosts > 1):
            new_hosts = max(1, n_hosts // 2)
            remaining *= n_hosts / new_hosts
            shrunk = True
        charge = self.checkpoint.restart_s
        return RequeuePlan(remaining_s=remaining + charge,
                           n_hosts=new_hosts, lost_s=lost,
                           restart_charge_s=charge, shrunk=shrunk)

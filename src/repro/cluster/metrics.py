"""Per-job and cluster-level scheduling metrics.

The quantities production schedulers are judged on (and that "99
Problems" argues dominate delivered FLOPS): job completion time and
queueing delay per job; utilization, goodput, and placement
fragmentation for the cluster.  Everything here is plain arithmetic over
the scheduler's event log, and :meth:`ClusterReport.to_dict` is fully
deterministic so two runs with one seed compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["JobRecord", "ClusterReport"]


@dataclass
class JobRecord:
    """Lifecycle record of one job through the scheduler."""

    name: str
    priority: int
    submit_s: float
    n_hosts_requested: int
    duration_s: float                      # ideal service time
    status: str = "queued"                 # running|completed|killed|rejected
    first_start_s: Optional[float] = None
    end_s: Optional[float] = None
    attempts: int = 0
    failures: int = 0
    preemptions: int = 0
    final_n_hosts: int = 0
    final_hosts: Tuple[str, ...] = ()
    pods_spanned: List[int] = field(default_factory=list)  # per attempt
    intervals: List[Tuple[float, float]] = field(default_factory=list)
    busy_host_s: float = 0.0               # host-seconds actually occupied
    lost_s: float = 0.0                    # work rolled back by failures

    @property
    def jct_s(self) -> Optional[float]:
        """Job completion time: submit to finish."""
        if self.end_s is None or self.status != "completed":
            return None
        return self.end_s - self.submit_s

    @property
    def queue_delay_s(self) -> Optional[float]:
        """Submit to first start."""
        if self.first_start_s is None:
            return None
        return self.first_start_s - self.submit_s

    @property
    def mean_pods_spanned(self) -> float:
        if not self.pods_spanned:
            return 0.0
        return sum(self.pods_spanned) / len(self.pods_spanned)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "priority": self.priority,
            "submit_s": round(self.submit_s, 6),
            "n_hosts": self.n_hosts_requested,
            "status": self.status,
            "first_start_s": None if self.first_start_s is None
            else round(self.first_start_s, 6),
            "end_s": None if self.end_s is None else round(self.end_s, 6),
            "attempts": self.attempts,
            "failures": self.failures,
            "preemptions": self.preemptions,
            "final_n_hosts": self.final_n_hosts,
            "pods_spanned": list(self.pods_spanned),
            "busy_host_s": round(self.busy_host_s, 6),
            "lost_s": round(self.lost_s, 6),
        }


@dataclass
class ClusterReport:
    """Roll-up of one scheduler run."""

    policy: str
    seed: int
    total_hosts: int
    makespan_s: float
    records: List[JobRecord]
    useful_host_s: float = 0.0

    # -- derived aggregates ---------------------------------------------
    @property
    def busy_host_s(self) -> float:
        return sum(record.busy_host_s for record in self.records)

    @property
    def completed(self) -> List[JobRecord]:
        return [r for r in self.records if r.status == "completed"]

    @property
    def utilization(self) -> float:
        """Occupied host-seconds over offered host-seconds."""
        offered = self.total_hosts * self.makespan_s
        return 0.0 if offered <= 0 else self.busy_host_s / offered

    @property
    def goodput_fraction(self) -> float:
        """Useful (checkpointed, finally-completed) work over occupancy."""
        busy = self.busy_host_s
        return 0.0 if busy <= 0 else self.useful_host_s / busy

    @property
    def mean_jct_s(self) -> float:
        times = [r.jct_s for r in self.completed if r.jct_s is not None]
        return sum(times) / len(times) if times else 0.0

    @property
    def mean_queue_delay_s(self) -> float:
        delays = [r.queue_delay_s for r in self.records
                  if r.queue_delay_s is not None]
        return sum(delays) / len(delays) if delays else 0.0

    @property
    def mean_pods_spanned(self) -> float:
        """Fragmentation: pods touched per placement, over all attempts."""
        spans = [span for record in self.records
                 for span in record.pods_spanned]
        return sum(spans) / len(spans) if spans else 0.0

    @property
    def total_failures(self) -> int:
        return sum(record.failures for record in self.records)

    @property
    def total_preemptions(self) -> int:
        return sum(record.preemptions for record in self.records)

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return dict(sorted(counts.items()))

    def peak_concurrent(self) -> List[JobRecord]:
        """Records running together at the busiest instant.

        This is the set :class:`~repro.monitoring.multijob.MultiJobRun`
        co-schedules to measure fabric contention among the tenants the
        scheduler actually packed together.
        """
        best: List[JobRecord] = []
        for record in self.records:
            for start, _ in record.intervals:
                active = [
                    other for other in self.records
                    if any(s <= start < e for s, e in other.intervals)
                ]
                if len(active) > len(best):
                    best = active
        return best

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict:
        """Deterministic dictionary: same seed => identical value."""
        return {
            "policy": self.policy,
            "seed": self.seed,
            "total_hosts": self.total_hosts,
            "makespan_s": round(self.makespan_s, 6),
            "jobs": len(self.records),
            "status": self.status_counts(),
            "utilization": round(self.utilization, 6),
            "goodput_fraction": round(self.goodput_fraction, 6),
            "mean_jct_s": round(self.mean_jct_s, 6),
            "mean_queue_delay_s": round(self.mean_queue_delay_s, 6),
            "mean_pods_spanned": round(self.mean_pods_spanned, 6),
            "failures": self.total_failures,
            "preemptions": self.total_preemptions,
            "records": [record.to_dict() for record in self.records],
        }

    def render(self, max_rows: int = 20) -> str:
        """Operator-facing text report."""
        statuses = ", ".join(f"{k}={v}"
                             for k, v in self.status_counts().items())
        lines = [
            f"cluster schedule — policy={self.policy} "
            f"seed={self.seed} hosts={self.total_hosts}",
            f"  jobs            : {len(self.records)} ({statuses})",
            f"  makespan        : {self.makespan_s / 3600.0:.2f} h",
            f"  utilization     : {self.utilization:.1%}",
            f"  goodput         : {self.goodput_fraction:.1%}",
            f"  mean JCT        : {self.mean_jct_s / 3600.0:.2f} h",
            f"  mean queue delay: {self.mean_queue_delay_s / 60.0:.1f} min",
            f"  mean pods span  : {self.mean_pods_spanned:.2f}",
            f"  failures        : {self.total_failures} "
            f"(preemptions {self.total_preemptions})",
        ]
        header = (f"  {'job':<10} {'prio':>4} {'hosts':>5} {'status':<10} "
                  f"{'wait(m)':>8} {'jct(h)':>7} {'fail':>4} {'pods':>4}")
        lines.append(header)
        for record in self.records[:max_rows]:
            wait = record.queue_delay_s
            jct = record.jct_s
            lines.append(
                f"  {record.name:<10} {record.priority:>4} "
                f"{record.n_hosts_requested:>5} {record.status:<10} "
                f"{'-' if wait is None else f'{wait / 60.0:8.1f}':>8} "
                f"{'-' if jct is None else f'{jct / 3600.0:7.2f}':>7} "
                f"{record.failures:>4} "
                f"{record.mean_pods_spanned:>4.1f}")
        if len(self.records) > max_rows:
            lines.append(f"  ... {len(self.records) - max_rows} more")
        return "\n".join(lines)

"""Event-driven cluster scheduler on the ``repro.simcore`` DES kernel.

This is the layer ASTRA-sim2.0 argues hierarchical-network simulators
need before they say anything about production: a queue of arriving jobs
(:mod:`.workload`), placed onto the fabric through
:class:`~repro.core.placement.GpuAllocator`, failing and restarting via
:mod:`.recovery`, under the tidal host cap of :mod:`.powercap`.

Four pluggable policies span the classic design space:

* ``FIFO`` — strict arrival order with head-of-line blocking and PACKED
  placement (the naive baseline);
* ``TOPOLOGY`` — arrival-order *scan* (no head-of-line blocking) with
  CONTIGUOUS best-fit placement, minimizing pods spanned (§2's
  flexibility goal made operational);
* ``PRIORITY`` — priority order with EASY backfill: a blocked head job
  gets a reservation, and later jobs may jump the queue only if they
  cannot delay it;
* ``PREEMPTIVE`` — PRIORITY plus eviction of lower-priority runners
  when a high-priority job cannot otherwise fit (victims checkpoint,
  requeue, and pay the restart charge).

Everything is deterministic: the DES kernel breaks timestamp ties by
insertion order, and all randomness lives in seeded generators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..core.placement import GpuAllocator, PlacementPolicy
from ..simcore.engine import Event, Simulator
from ..topology.elements import Topology
from .metrics import ClusterReport, JobRecord
from .powercap import ScheduleHostCap, TidalHostCap
from .recovery import RecoveryManager
from .workload import JobSpec

__all__ = ["SchedulingPolicy", "ClusterScheduler"]

#: Outcome values carried by a run attempt's race of events.
_DONE, _FAILED, _PREEMPTED = "done", "failed", "preempted"


class SchedulingPolicy(enum.Enum):
    FIFO = "fifo"
    TOPOLOGY = "topology"
    PRIORITY = "priority"
    PREEMPTIVE = "preemptive"

    @property
    def placement(self) -> PlacementPolicy:
        """How this policy asks the allocator to choose hosts."""
        if self is SchedulingPolicy.FIFO:
            return PlacementPolicy.PACKED
        return PlacementPolicy.CONTIGUOUS


@dataclass
class _QueuedJob:
    """Mutable scheduler-side state of one job."""

    spec: JobSpec
    order: int                       # submit order, the FIFO tiebreak
    remaining_s: float
    n_hosts: int
    attempt: int = 0


@dataclass
class _RunningJob:
    job: _QueuedJob
    started_s: float
    planned_end_s: float
    n_hosts: int
    interrupt: Event = field(repr=False, default=None)


class ClusterScheduler:
    """Schedule a workload trace onto one fabric, end to end."""

    def __init__(self, topology: Topology,
                 workload: Sequence[JobSpec],
                 policy: SchedulingPolicy = SchedulingPolicy.TOPOLOGY,
                 recovery: Optional[RecoveryManager] = None,
                 power_cap: Optional[
                     Union[TidalHostCap, ScheduleHostCap]] = None,
                 allocator: Optional[GpuAllocator] = None,
                 seed: int = 0,
                 enforce_cap: bool = False,
                 sim: Optional[Simulator] = None):
        """``power_cap`` is duck-typed: anything with ``hosts_allowed``
        / ``boundaries`` / ``total_hosts`` works (the tidal cap or an
        autoscaler-produced :class:`ScheduleHostCap` schedule).

        By default the cap gates *admission* only; with
        ``enforce_cap=True`` the scheduler also preempts running jobs at
        tightening boundaries until the in-use host count fits back
        under the cap — this is the serving autoscaler reclaiming power
        from training as the morning tide comes in.

        ``sim`` lets callers share one DES clock between the scheduler
        and other components (the fabric engine, a resilience pipeline,
        a digital-twin session); by default the scheduler owns its own.
        """
        if isinstance(policy, str):
            policy = SchedulingPolicy(policy)
        self.topology = topology
        self.policy = policy
        self.recovery = recovery
        self.power_cap = power_cap
        self.enforce_cap = enforce_cap
        self.allocator = allocator or GpuAllocator(topology)
        self.total_hosts = self.allocator.free_hosts
        self.seed = seed
        self.workload = sorted(workload,
                               key=lambda s: (s.submit_s, s.name))
        if power_cap is not None \
                and power_cap.total_hosts != self.total_hosts:
            raise ValueError(
                f"power cap sized for {power_cap.total_hosts} hosts, "
                f"cluster has {self.total_hosts}")

        self.sim = sim if sim is not None else Simulator()
        self._started = False
        self._horizon_s: Optional[float] = None
        self._queue: List[_QueuedJob] = []
        self._running: Dict[str, _RunningJob] = {}
        self._records: Dict[str, JobRecord] = {}
        self._wake: Optional[Event] = None
        self._in_use_hosts = 0
        self._useful_host_s = 0.0

    # -- public API ------------------------------------------------------
    def interrupt_job(self, name: str, preempt: bool = False) -> bool:
        """Externally fail (or preempt) a running job — the hook a
        recovery pipeline uses when a fabric fault's blast radius hits
        the job's hosts.  A failed job rolls back to its checkpoint and
        requeues through the :class:`RecoveryManager`; a preempted one
        checkpoints first.  Returns False when the job is not running.
        """
        running = self._running.get(name)
        if running is None or running.interrupt.triggered:
            return False
        running.interrupt.succeed(_PREEMPTED if preempt else _FAILED)
        return True

    def start(self, until: Optional[float] = None) -> None:
        """Register all processes without running the clock.

        Splitting :meth:`run` into :meth:`start` + ``sim.run`` +
        :meth:`report` lets a long-lived caller (the digital twin)
        advance the shared clock incrementally and mutate the schedule
        between steps.  ``until`` only sizes the cap-boundary horizon;
        pass the same value to ``sim.run``/:meth:`report` to reproduce
        :meth:`run` exactly.
        """
        if self._started:
            raise RuntimeError("scheduler already started")
        self._started = True
        self._horizon_s = until if until is not None else \
            self._cap_horizon_s()
        for spec in self.workload:
            self._records[spec.name] = JobRecord(
                name=spec.name, priority=spec.priority,
                submit_s=spec.submit_s,
                n_hosts_requested=spec.n_hosts,
                duration_s=spec.duration_s)
        for order, spec in enumerate(self.workload):
            self.sim.process(self._arrival(spec, order),
                             name=f"arrival:{spec.name}")
        if self.power_cap is not None:
            self._plant_cap_boundaries(self.power_cap)
        self.sim.process(self._scheduler_loop(), name="scheduler")

    def _plant_cap_boundaries(self, cap) -> None:
        for at in cap.boundaries(self._horizon_s):
            if at > self.sim.now:
                self.sim.process(self._cap_boundary(at),
                                 name=f"cap@{at}")

    def set_power_cap(self, cap) -> None:
        """Swap the host-cap schedule on a live scheduler.

        The new cap takes effect immediately for admission; if
        ``enforce_cap`` is set, runners are preempted down to the new
        cap at the current timestamp (their interrupts resolve on the
        next clock advance).  Boundary wakes for the new schedule are
        planted out to the horizon chosen at :meth:`start`.
        """
        if cap is not None and cap.total_hosts != self.total_hosts:
            raise ValueError(
                f"power cap sized for {cap.total_hosts} hosts, "
                f"cluster has {self.total_hosts}")
        self.power_cap = cap
        if not self._started or cap is None:
            return
        self._plant_cap_boundaries(cap)
        if self.enforce_cap:
            self._preempt_to_cap()
        self._kick()

    def running_jobs(self) -> List[str]:
        """Names of currently running jobs, deterministically ordered."""
        return sorted(self._running)

    def job_states(self) -> Dict[str, str]:
        """Live status of every job in the trace (no finalization)."""
        queued = {job.spec.name for job in self._queue}
        states: Dict[str, str] = {}
        for spec in self.workload:
            record = self._records.get(spec.name)
            if record is None:
                states[spec.name] = "pending"
            elif spec.name in self._running:
                states[spec.name] = "running"
            elif spec.name in queued:
                states[spec.name] = "queued"
            elif record.status in ("completed", "killed", "rejected"):
                states[spec.name] = record.status
            else:
                states[spec.name] = "pending"
        return states

    def in_use_hosts(self) -> int:
        """Hosts currently held by running jobs."""
        return self._in_use_hosts

    def run(self, until: Optional[float] = None) -> ClusterReport:
        """Drive the whole trace; returns the roll-up report."""
        self.start(until=until)
        self.sim.run(until=until)
        return self.report(until=until)

    def report(self, until: Optional[float] = None) -> ClusterReport:
        """Finalize statuses and roll up the report."""
        for running in self._running.values():
            self._records[running.job.spec.name].status = "running"
        for queued in self._queue:
            self._records[queued.spec.name].status = "queued"
        if until is not None:
            makespan = self.sim.now
        else:
            # The cap-boundary wakes outlive the last job; the schedule
            # ends with the last job event, not the last wake.
            ends = [end for record in self._records.values()
                    for _, end in record.intervals]
            ends.extend(spec.submit_s for spec in self.workload)
            # Empty trace: nothing ever happened, whatever sim.now says.
            makespan = max(ends, default=0.0)
        return ClusterReport(
            policy=self.policy.value,
            seed=self.seed,
            total_hosts=self.total_hosts,
            makespan_s=makespan,
            records=[self._records[s.name] for s in self.workload],
            useful_host_s=self._useful_host_s,
        )

    # -- processes -------------------------------------------------------
    def _arrival(self, spec: JobSpec, order: int):
        yield self.sim.timeout(spec.submit_s)
        record = self._records[spec.name]
        if spec.n_hosts > self.total_hosts:
            record.status = "rejected"
            return
        self._queue.append(_QueuedJob(
            spec=spec, order=order,
            remaining_s=spec.duration_s, n_hosts=spec.n_hosts))
        self._kick()

    def _cap_boundary(self, at: float):
        # Absolute so boundaries planted mid-run (set_power_cap on a
        # live twin session) land on the schedule's own bits.
        yield self.sim.timeout_at(at)
        if self.enforce_cap:
            self._preempt_to_cap()
        self._kick()

    def _preempt_to_cap(self) -> int:
        """Preempt runners until in-use hosts fit under the current cap.

        Victims are chosen lowest-priority first, youngest first (least
        sunk work), name as the final deterministic tiebreak.  Their
        interrupt events fire at this timestamp; the run processes
        release hosts and requeue before the subsequent ``_kick``'s
        dispatch pass observes the state.  Returns hosts being released.
        """
        cap = self._hosts_cap()
        excess = self._in_use_hosts - cap
        if excess <= 0:
            return 0
        released = 0
        victims = sorted(
            self._running.values(),
            key=lambda r: (r.job.spec.priority, -r.started_s,
                           r.job.spec.name))
        for victim in victims:
            if released >= excess:
                break
            if victim.interrupt.triggered:
                continue
            victim.interrupt.succeed(_PREEMPTED)
            released += victim.n_hosts
        return released

    def _scheduler_loop(self):
        while True:
            self._dispatch()
            self._wake = self.sim.event("sched.wake")
            yield self._wake

    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _run_job(self, job: _QueuedJob, running: _RunningJob,
                 span: float, outcome_if_ran: str):
        spec = job.spec
        record = self._records[spec.name]
        start = running.started_s

        outcome = yield self.sim.any_of([
            self.sim.timeout(span, value=outcome_if_ran),
            running.interrupt])

        elapsed = self.sim.now - start
        del self._running[spec.name]
        self._in_use_hosts -= job.n_hosts
        freed = self.allocator.release(spec.name)
        record.busy_host_s += elapsed * job.n_hosts
        record.intervals.append((start, self.sim.now))
        record.final_hosts = tuple(freed)
        record.final_n_hosts = job.n_hosts

        if outcome == _DONE:
            record.status = "completed"
            record.end_s = self.sim.now
            self._useful_host_s += spec.host_seconds
        elif outcome == _PREEMPTED:
            record.preemptions += 1
            plan = self._requeue_planner().plan_requeue(
                spec.name, job.attempt, job.n_hosts,
                elapsed_s=elapsed, remaining_before_s=job.remaining_s,
                preempted=True)
            job.remaining_s = plan.remaining_s
            job.n_hosts = plan.n_hosts
            self._queue.append(job)
        else:  # _FAILED
            # ``_requeue_planner()`` rather than ``self.recovery``:
            # an external ``interrupt_job`` can fail a job even when
            # the schedule was built without failure injection.
            record.failures += 1
            plan = self._requeue_planner().plan_requeue(
                spec.name, job.attempt, job.n_hosts,
                elapsed_s=elapsed, remaining_before_s=job.remaining_s)
            record.lost_s += plan.lost_s
            if plan.gave_up:
                record.status = "killed"
                record.end_s = self.sim.now
            else:
                job.remaining_s = plan.remaining_s
                job.n_hosts = plan.n_hosts
                self._queue.append(job)
        self._kick()

    def _requeue_planner(self) -> RecoveryManager:
        """Preemptions need checkpoint economics even with failures off."""
        if self.recovery is not None:
            return self.recovery
        return RecoveryManager(failure_scale=0.0, seed=self.seed)

    # -- dispatch --------------------------------------------------------
    def _hosts_cap(self) -> int:
        if self.power_cap is None:
            return self.total_hosts
        return self.power_cap.hosts_allowed(self.sim.now)

    def _fits(self, job: _QueuedJob, cap: int) -> bool:
        return (job.n_hosts <= self.allocator.free_hosts
                and self._in_use_hosts + job.n_hosts <= cap)

    def _place(self, job: _QueuedJob) -> None:
        """Allocate hosts and launch a run attempt, at the current time.

        All bookkeeping (allocation, in-use count, running registry)
        happens *here*, synchronously, so that later fit/reservation
        checks within the same dispatch pass see consistent state.
        """
        spec = job.spec
        record = self._records[spec.name]
        self._queue.remove(job)
        self.allocator.allocate(spec.name, job.n_hosts,
                                self.policy.placement)
        record.pods_spanned.append(
            self.allocator.pods_spanned(spec.name))
        if record.first_start_s is None:
            record.first_start_s = self.sim.now
        record.attempts += 1
        job.attempt += 1

        fail_after = None
        if self.recovery is not None:
            fail_after = self.recovery.failure_delay_s(
                spec.name, job.attempt, job.n_hosts)
        will_fail = fail_after is not None \
            and fail_after < job.remaining_s
        span = fail_after if will_fail else job.remaining_s
        outcome_if_ran = _FAILED if will_fail else _DONE

        running = _RunningJob(
            job=job, started_s=self.sim.now,
            planned_end_s=self.sim.now + span, n_hosts=job.n_hosts,
            interrupt=self.sim.event(f"{spec.name}.interrupt"))
        self._running[spec.name] = running
        self._in_use_hosts += job.n_hosts
        self.sim.process(
            self._run_job(job, running, span, outcome_if_ran),
            name=f"run:{spec.name}")

    def _dispatch(self) -> None:
        cap = self._hosts_cap()
        if self.policy is SchedulingPolicy.FIFO:
            self._dispatch_fifo(cap)
        elif self.policy is SchedulingPolicy.TOPOLOGY:
            self._dispatch_scan(cap)
        else:
            self._dispatch_priority(
                cap,
                preemptive=self.policy is SchedulingPolicy.PREEMPTIVE)

    def _dispatch_fifo(self, cap: int) -> None:
        """Strict arrival order: a blocked head blocks everyone."""
        for job in sorted(self._queue, key=lambda j: j.order):
            if not self._fits(job, cap):
                return
            self._place(job)

    def _dispatch_scan(self, cap: int) -> None:
        """Arrival order, but a blocked job does not block later ones."""
        for job in sorted(self._queue, key=lambda j: j.order):
            if self._fits(job, cap):
                self._place(job)

    def _dispatch_priority(self, cap: int, preemptive: bool) -> None:
        """Priority order with an EASY-backfill reservation for the head.

        The first job that does not fit becomes the *blocked head*: we
        compute the shadow time at which enough hosts drain for it, and
        from then on later jobs start only if they either finish before
        the shadow time or fit inside the hosts the head leaves spare.
        """
        blocked_head: Optional[_QueuedJob] = None
        shadow_time = float("inf")
        extra_hosts = 0
        order = sorted(self._queue,
                       key=lambda j: (-j.spec.priority, j.order))
        for job in order:
            if blocked_head is None:
                if self._fits(job, cap):
                    self._place(job)
                    continue
                if preemptive and self._try_preempt(job, cap):
                    # Victims drain at this timestamp; the scheduler is
                    # re-kicked once their hosts come back.
                    return
                blocked_head = job
                shadow_time, extra_hosts = self._reservation(job)
            elif self._fits(job, cap) and (
                    self.sim.now + job.remaining_s <= shadow_time
                    or job.n_hosts <= extra_hosts):
                if job.n_hosts > extra_hosts:
                    pass  # qualified by finishing before the shadow
                else:
                    extra_hosts -= job.n_hosts
                self._place(job)

    def _reservation(self, job: _QueuedJob):
        """(shadow time, spare hosts) for a blocked head job."""
        free = self.allocator.free_hosts
        shadow = self.sim.now
        for running in sorted(self._running.values(),
                              key=lambda r: r.planned_end_s):
            if free >= job.n_hosts:
                break
            free += running.n_hosts
            shadow = running.planned_end_s
        if free < job.n_hosts:
            return float("inf"), self.allocator.free_hosts
        return shadow, free - job.n_hosts

    def _try_preempt(self, job: _QueuedJob, cap: int) -> bool:
        """Evict lowest-priority runners until ``job`` would fit."""
        victims: List[_RunningJob] = []
        candidates = sorted(
            (r for r in self._running.values()
             if r.job.spec.priority < job.spec.priority),
            key=lambda r: (r.job.spec.priority, -r.started_s))
        free = self.allocator.free_hosts
        in_use = self._in_use_hosts
        for candidate in candidates:
            if free >= job.n_hosts and in_use + job.n_hosts <= cap:
                break
            victims.append(candidate)
            free += candidate.n_hosts
            in_use -= candidate.n_hosts
        if free < job.n_hosts or in_use + job.n_hosts > cap:
            return False
        if not victims:
            return False
        for victim in victims:
            victim.interrupt.succeed(_PREEMPTED)
        return True

    # -- sizing helpers --------------------------------------------------
    def _cap_horizon_s(self) -> float:
        """Rough schedule length, for pre-planting cap-boundary wakes."""
        demand = sum(spec.host_seconds for spec in self.workload)
        last_submit = self.workload[-1].submit_s if self.workload else 0.0
        longest = max((s.duration_s for s in self.workload), default=0.0)
        capacity = max(1, self.total_hosts)
        # Generous: serial drain of all demand after the last arrival,
        # padded for failures/restarts; boundary wakes are cheap.
        return (last_submit + longest
                + 4.0 * demand / capacity + 4 * 86400.0)

"""Tidal-aware admission control for the cluster scheduler (Figure 16).

The operator signed a *constant-power* contract, so the hosts the
scheduler may power up track the tidal headroom of
:mod:`repro.power.tidal`: during the 22:00–08:00 trough the cap changes
(by default it tightens, reproducing a power-constrained night window;
:meth:`TidalHostCap.from_contract` instead derives both caps from the
contract-minus-inference headroom, where the night trough *raises* the
training budget exactly as the paper's night scheduler does).

The cap is a pure function of simulated time, so the scheduler stays
deterministic; :meth:`boundaries` enumerates the instants the cap
switches so the scheduler can wake itself exactly then.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..power.tidal import TidalProfile, daily_inference_power

__all__ = ["ScheduleHostCap", "TidalHostCap"]

_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_DAY = 24.0 * _SECONDS_PER_HOUR


@dataclass(frozen=True)
class TidalHostCap:
    """Time-of-day cap on schedulable hosts.

    ``start_hour`` maps simulation time zero onto the wall clock
    (defaults to noon, the daytime plateau).  ``trough_host_frac`` /
    ``day_host_frac`` are the fractions of ``total_hosts`` admissible
    inside and outside the 22:00–08:00 trough window respectively.
    """

    total_hosts: int
    profile: TidalProfile = field(default_factory=TidalProfile)
    trough_host_frac: float = 0.5
    day_host_frac: float = 1.0
    start_hour: float = 12.0

    def __post_init__(self) -> None:
        if self.total_hosts < 0:
            raise ValueError("total_hosts cannot be negative")
        for frac in (self.trough_host_frac, self.day_host_frac):
            if not 0.0 <= frac <= 1.0:
                raise ValueError(f"host fraction out of [0,1]: {frac}")

    # -- time mapping ----------------------------------------------------
    def hour_at(self, t_s: float) -> float:
        """Wall-clock hour-of-day at simulation time ``t_s``."""
        return (self.start_hour + t_s / _SECONDS_PER_HOUR) % 24.0

    def is_trough(self, t_s: float) -> bool:
        return self.profile.is_night(self.hour_at(t_s))

    # -- the cap ---------------------------------------------------------
    def hosts_allowed(self, t_s: float) -> int:
        """Hosts the scheduler may have powered at ``t_s``."""
        frac = (self.trough_host_frac if self.is_trough(t_s)
                else self.day_host_frac)
        return int(math.floor(self.total_hosts * frac))

    def boundaries(self, horizon_s: float) -> List[float]:
        """Times in ``(0, horizon_s]`` at which the cap switches."""
        times: List[float] = []
        switch_hours = (self.profile.night_start_hour,
                        self.profile.night_end_hour)
        days = int(horizon_s // _SECONDS_PER_DAY) + 2
        for day in range(days):
            for hour in switch_hours:
                t = ((hour - self.start_hour) % 24.0) * _SECONDS_PER_HOUR \
                    + day * _SECONDS_PER_DAY
                if 0.0 < t <= horizon_s:
                    times.append(t)
        return sorted(set(times))

    # -- contract-derived construction ----------------------------------
    @classmethod
    def from_contract(cls, total_hosts: int, host_kw: float,
                      profile: TidalProfile = None,
                      contract_mw: float = None,
                      start_hour: float = 12.0) -> "TidalHostCap":
        """Derive both caps from constant-power-contract headroom.

        Training capacity is ``contract - inference`` (the Figure-16
        flattening argument): sampled at the daytime plateau and at the
        deep trough, converted to hosts at ``host_kw`` apiece.  With the
        default contract (= daytime peak) the day cap is zero and the
        whole training fleet fits only in the night trough.
        """
        if host_kw <= 0:
            raise ValueError("host power draw must be positive")
        profile = profile or TidalProfile()
        if contract_mw is None:
            contract_mw = profile.peak_mw
        import numpy as np
        hours = np.linspace(0.0, 24.0, 24 * 60, endpoint=False)
        inference = daily_inference_power(profile, hours)
        night = np.array([profile.is_night(h) for h in hours])
        # Deep-trough headroom: the best case inside the night window;
        # day headroom: the worst case outside it.
        trough_headroom = float(
            np.max(contract_mw - inference[night])) if night.any() else 0.0
        day_headroom = float(
            np.min(contract_mw - inference[~night])) if (~night).any() \
            else 0.0

        def to_frac(headroom_mw: float) -> float:
            hosts = max(0.0, headroom_mw) * 1000.0 / host_kw
            return max(0.0, min(1.0, hosts / max(1, total_hosts)))

        return cls(total_hosts=total_hosts, profile=profile,
                   trough_host_frac=to_frac(trough_headroom),
                   day_host_frac=to_frac(day_headroom),
                   start_hour=start_hour)


@dataclass(frozen=True)
class ScheduleHostCap:
    """Piecewise-constant host cap from an explicit schedule.

    Duck-type-compatible with :class:`TidalHostCap` (the scheduler only
    needs ``hosts_allowed`` / ``boundaries`` / ``total_hosts``), but the
    cap values come from a precomputed ``(times_s, allowed)`` step
    function instead of the analytic tide — this is how the serving
    autoscaler hands the training scheduler its residual power budget:
    at each trace bucket the autoscaler converts contract-minus-serving
    headroom into a host count, and the scheduler preempts/admits
    training jobs at exactly the instants the budget steps.

    ``times_s`` must be sorted ascending and start at 0.0; ``allowed[i]``
    holds on ``[times_s[i], times_s[i+1])`` and the final value holds
    forever.  Only *changes* in the allowed value are boundaries, so a
    flat schedule plants no wake events at all (this is what makes a
    never-binding cap bit-identical to no cap).
    """

    total_hosts: int
    times_s: Tuple[float, ...]
    allowed: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.total_hosts < 0:
            raise ValueError("total_hosts cannot be negative")
        if len(self.times_s) != len(self.allowed) or not self.times_s:
            raise ValueError("times_s and allowed must be equal-length "
                             "and non-empty")
        if self.times_s[0] != 0.0:
            raise ValueError("schedule must start at t=0")
        if list(self.times_s) != sorted(self.times_s):
            raise ValueError("times_s must be sorted ascending")
        for n in self.allowed:
            if not 0 <= n <= self.total_hosts:
                raise ValueError(f"allowed host count out of range: {n}")

    @classmethod
    def from_series(cls, total_hosts: int, times_s: Sequence[float],
                    allowed: Sequence[int]) -> "ScheduleHostCap":
        return cls(total_hosts=total_hosts,
                   times_s=tuple(float(t) for t in times_s),
                   allowed=tuple(int(n) for n in allowed))

    def hosts_allowed(self, t_s: float) -> int:
        """Hosts the scheduler may have powered at ``t_s``."""
        i = bisect.bisect_right(self.times_s, t_s) - 1
        return self.allowed[max(0, i)]

    def boundaries(self, horizon_s: float) -> List[float]:
        """Times in ``(0, horizon_s]`` at which the cap *changes*."""
        times: List[float] = []
        for i in range(1, len(self.times_s)):
            if self.allowed[i] != self.allowed[i - 1] \
                    and 0.0 < self.times_s[i] <= horizon_s:
                times.append(self.times_s[i])
        return times

"""Datacenter-scale job scheduling & orchestration (§5 operations).

The paper operates its 512K-GPU fabric as a shared production resource;
this subsystem supplies the missing cluster layer: deterministic
workload traces (:mod:`.workload`), an event-driven scheduler with
pluggable policies on the :mod:`repro.simcore` kernel
(:mod:`.scheduler`), failure-driven rescheduling priced by the
reliability model (:mod:`.recovery`), tidal-aware admission
(:mod:`.powercap`), and JCT/utilization/fragmentation roll-ups
(:mod:`.metrics`).
"""

from .metrics import ClusterReport, JobRecord
from .powercap import ScheduleHostCap, TidalHostCap
from .recovery import RecoveryManager, RecoveryPolicy, RequeuePlan
from .scheduler import ClusterScheduler, SchedulingPolicy
from .workload import JobSpec, WorkloadConfig, WorkloadGenerator

__all__ = [
    "ClusterReport",
    "ClusterScheduler",
    "JobRecord",
    "JobSpec",
    "RecoveryManager",
    "RecoveryPolicy",
    "RequeuePlan",
    "ScheduleHostCap",
    "SchedulingPolicy",
    "TidalHostCap",
    "WorkloadConfig",
    "WorkloadGenerator",
]

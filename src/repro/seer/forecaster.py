"""The Astral Seer facade: operator-granular forecasts in seconds (§4).

Wires together graph building, execution-time modeling (basic or
self-corrected), and the DES timeline engine.  The three goals of §4.1
map to methods:

* *parameter tuning* — run :meth:`forecast_training` across candidate
  parallelism/network configurations and compare;
* *verifying in-production runs* — the forecast's iteration time and
  per-host compute/communication splits are the thresholds the
  monitoring analyzer consumes (§3.3);
* *exploring new frameworks/architectures* — swap the network suite
  (intra-host scale, oversubscription, cross-DC) or hand Seer a
  handcrafted operator graph.

:meth:`testbed_training` runs the same graph under the ground-truth
effective model, standing in for a production testbed measurement —
the reference against which Seer's accuracy (Figure 12) is scored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .calibration import calibrate
from .graph import OperatorGraph
from .hardware import GpuSuite, NetworkSuite, gpu_suite
from .modeling import BasicModel, EffectiveModel, ExecutionModel
from .models.builder import build_inference_graph, build_training_graph
from .models.config import ModelConfig, ParallelismConfig
from .timeline import Timeline, TimelineEngine

__all__ = ["TrainingForecast", "InferenceForecast", "Seer"]


@dataclass
class TrainingForecast:
    """Forecast of one training iteration."""

    model_name: str
    iteration_time_s: float
    timeline: Timeline
    parallel: ParallelismConfig
    tokens_per_iteration: int

    @property
    def tokens_per_s(self) -> float:
        if self.iteration_time_s <= 0:
            return float("inf")
        return self.tokens_per_iteration / self.iteration_time_s

    @property
    def throughput_per_gpu(self) -> float:
        return self.tokens_per_s / self.parallel.world_size

    def exposed_comm_fraction(self) -> float:
        """Fraction of total communication time left exposed."""
        comm = self.timeline.comm_time_s()
        if comm <= 0:
            return 0.0
        exposed = sum(self.timeline.exposed_comm_s(device)
                      for device in self.timeline.devices())
        return min(1.0, exposed / comm)

    def time_to_train_s(self, total_tokens: float) -> float:
        """Wall-clock seconds to consume a token budget at this rate."""
        if total_tokens < 0:
            raise ValueError("token budget cannot be negative")
        if self.tokens_per_s <= 0:
            return float("inf")
        return total_tokens / self.tokens_per_s

    def gpu_hours(self, total_tokens: float) -> float:
        """GPU-hours to train the token budget on this deployment."""
        return self.time_to_train_s(total_tokens) / 3600.0 \
            * self.parallel.world_size

    def energy_per_iteration_j(self, tdp_watts: float = 500.0) -> float:
        """GPU energy of one iteration, from the operator timeline.

        Derives a power trace per pipeline stage
        (:func:`repro.power.power_from_timeline`) and sums the stage
        energies scaled by the ranks sharing each stage (TP x DP).
        """
        from ..power.from_timeline import power_from_timeline
        from ..power.gpu_power import GpuSpec
        gpu = GpuSpec(tdp_watts=tdp_watts)
        ranks_per_stage = self.parallel.tp * self.parallel.dp
        total = 0.0
        for device in self.timeline.devices():
            trace = power_from_timeline(self.timeline, gpu,
                                        device=device, sample_hz=200.0)
            total += trace.energy_joules() * ranks_per_stage
        return total

    def tokens_per_joule(self, tdp_watts: float = 500.0) -> float:
        """Training energy efficiency (GPU energy only)."""
        energy = self.energy_per_iteration_j(tdp_watts)
        if energy <= 0:
            return float("inf")
        return self.tokens_per_iteration / energy


@dataclass
class InferenceForecast:
    """Forecast of inference service performance."""

    model_name: str
    prefill_time_s: float
    decode_time_per_token_s: float
    batch: int
    context_len: int

    @property
    def prefill_tokens_per_s(self) -> float:
        if self.prefill_time_s <= 0:
            return float("inf")
        return self.batch * self.context_len / self.prefill_time_s

    @property
    def decode_tokens_per_s(self) -> float:
        if self.decode_time_per_token_s <= 0:
            return float("inf")
        return self.batch / self.decode_time_per_token_s

    def time_to_first_token_s(self) -> float:
        return self.prefill_time_s


class Seer:
    """Operator-granular LLM performance forecaster."""

    def __init__(self, gpu: Union[str, GpuSuite] = "H800",
                 network: Optional[NetworkSuite] = None,
                 corrected: bool = True,
                 calibration_noise: float = 0.01,
                 seed: int = 0):
        self.gpu = gpu_suite(gpu) if isinstance(gpu, str) else gpu
        self.network = network or NetworkSuite()
        self.corrected = corrected
        if corrected:
            self.execution_model: ExecutionModel = calibrate(
                self.gpu, self.network, noise_frac=calibration_noise,
                seed=seed)
        else:
            self.execution_model = BasicModel(gpu=self.gpu,
                                              network=self.network)
        self._truth = EffectiveModel(gpu=self.gpu, network=self.network)

    # -- forecasting -----------------------------------------------------------
    def forecast_training(self, model: ModelConfig,
                          parallel: ParallelismConfig,
                          detail: bool = False) -> TrainingForecast:
        graph = build_training_graph(model, parallel, self.network,
                                     detail=detail)
        return self._run_training(model, parallel, graph,
                                  self.execution_model)

    def forecast_graph(self, graph: OperatorGraph) -> Timeline:
        """Schedule an arbitrary (e.g. handcrafted) operator graph."""
        return TimelineEngine(self.execution_model).run(graph)

    def forecast_inference(self, model: ModelConfig,
                           parallel: ParallelismConfig,
                           batch: int = 8,
                           context_len: Optional[int] = None
                           ) -> InferenceForecast:
        context = context_len if context_len is not None \
            else model.seq_len
        engine = TimelineEngine(self.execution_model)
        prefill = engine.run(build_inference_graph(
            model, parallel, self.network, phase="prefill",
            batch=batch, context_len=context))
        decode = engine.run(build_inference_graph(
            model, parallel, self.network, phase="decode",
            batch=batch, context_len=context))
        return InferenceForecast(
            model_name=model.name,
            prefill_time_s=prefill.total_time_s,
            decode_time_per_token_s=decode.total_time_s,
            batch=batch,
            context_len=context,
        )

    # -- testbed stand-in --------------------------------------------------------
    def testbed_training(self, model: ModelConfig,
                         parallel: ParallelismConfig,
                         detail: bool = False) -> TrainingForecast:
        """Ground-truth run of the same graph (the 'testbed result')."""
        graph = build_training_graph(model, parallel, self.network,
                                     detail=detail)
        return self._run_training(model, parallel, graph, self._truth)

    def accuracy_deviation(self, model: ModelConfig,
                           parallel: ParallelismConfig,
                           detail: bool = False) -> float:
        """|forecast - testbed| / testbed for one iteration (Fig. 12)."""
        forecast = self.forecast_training(model, parallel, detail)
        testbed = self.testbed_training(model, parallel, detail)
        if testbed.iteration_time_s <= 0:
            return 0.0
        return abs(forecast.iteration_time_s
                   - testbed.iteration_time_s) \
            / testbed.iteration_time_s

    # -- internals ----------------------------------------------------------------
    def _run_training(self, model: ModelConfig,
                      parallel: ParallelismConfig,
                      graph: OperatorGraph,
                      execution_model: ExecutionModel
                      ) -> TrainingForecast:
        timeline = TimelineEngine(execution_model).run(graph)
        tokens = (parallel.micro_batch_size * parallel.microbatches
                  * parallel.dp * model.seq_len)
        return TrainingForecast(
            model_name=model.name,
            iteration_time_s=timeline.total_time_s,
            timeline=timeline,
            parallel=parallel,
            tokens_per_iteration=tokens,
        )

"""Text rendering of operator timelines (the Figure-12 artifact).

Renders a :class:`~repro.seer.timeline.Timeline` as an ASCII Gantt
chart — one row per (device, stream), time flowing left to right — so a
Seer foresight and a testbed timeline can be compared side by side in a
terminal, the way Figure 12 juxtaposes them.
"""

from __future__ import annotations

from typing import List, Optional

from .operators import OpType
from .timeline import Timeline

__all__ = ["render_timeline", "render_comparison"]

_GLYPHS = {
    OpType.COMPUTE: "#",
    OpType.MIXED: "#",
    OpType.MEMORY: "m",
    OpType.COMMUNICATION: "=",
}
_IDLE = "."


def render_timeline(timeline: Timeline, width: int = 72,
                    devices: Optional[List[str]] = None,
                    show_scale: bool = True) -> str:
    """ASCII Gantt chart of a timeline.

    Each character cell covers ``total_time / width`` seconds; the
    glyph is the type of the operator occupying most of that cell
    (compute ``#``, memory ``m``, communication ``=``, idle ``.``).
    """
    if width < 8:
        raise ValueError("width must be at least 8 characters")
    total = timeline.total_time_s
    if total <= 0:
        return "(empty timeline)"
    rows: List[str] = []
    selected = devices if devices is not None else timeline.devices()
    label_width = max(
        (len(f"{device}/{stream}")
         for device in selected
         for stream in ("compute", "comm")), default=10)

    for device in selected:
        for stream in ("compute", "comm"):
            entries = timeline.entries_for(device, stream)
            if not entries:
                continue
            cells = [_IDLE] * width
            occupancy = [0.0] * width
            for entry in entries:
                lo = int(entry.start_s / total * width)
                hi = max(lo + 1, int(entry.end_s / total * width))
                glyph = _GLYPHS[entry.op_type]
                for cell in range(lo, min(hi, width)):
                    cell_start = cell * total / width
                    cell_end = (cell + 1) * total / width
                    overlap = (min(entry.end_s, cell_end)
                               - max(entry.start_s, cell_start))
                    if overlap > occupancy[cell]:
                        occupancy[cell] = overlap
                        cells[cell] = glyph
            label = f"{device}/{stream}".ljust(label_width)
            rows.append(f"{label} |{''.join(cells)}|")

    if show_scale:
        scale = f"{'':{label_width}}  0".ljust(label_width + width - 6)
        scale += f"{total * 1e3:8.2f} ms"
        rows.append(scale)
    return "\n".join(rows)


def render_comparison(foresight: Timeline, testbed: Timeline,
                      width: int = 72,
                      devices: Optional[List[str]] = None) -> str:
    """Figure-12 style: Seer foresight above, testbed result below."""
    parts = [
        "-- Seer foresight " + "-" * max(0, width - 18),
        render_timeline(foresight, width=width, devices=devices),
        "-- Testbed result " + "-" * max(0, width - 18),
        render_timeline(testbed, width=width, devices=devices),
    ]
    return "\n".join(parts)

"""Modular hardware and network suites for Seer (§4.3).

Seer's configuration surface: *GPU configurations* provide FLOPS, HBM
size and HBM bandwidth; *network configurations* provide the topology,
congestion-control and load-balancing context from which the effective
ReduceScatter / AllGather / All-to-All bandwidths are generated.

Theoretical peaks are never achieved in practice; the suites also carry
*efficiency curves* (achievable fraction as a function of message size
or arithmetic intensity).  The curves double as the "testbed" ground
truth that the self-correction loop (:mod:`repro.seer.calibration`)
fits its polynomials against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = [
    "GpuSuite",
    "NetworkSuite",
    "GPU_SUITES",
    "gpu_suite",
]


@dataclass(frozen=True)
class GpuSuite:
    """One GPU model's compute/memory envelope."""

    name: str
    peak_tflops: float            # dense BF16/FP16 tensor TFLOPS
    hbm_gb: float
    hbm_tbps: float               # HBM bandwidth, TB/s
    #: achievable fraction of peak FLOPS at high arithmetic intensity.
    compute_efficiency: float = 0.55
    #: achievable fraction of peak HBM bandwidth for streaming access.
    memory_efficiency: float = 0.80
    #: arithmetic-intensity scale (FLOP/byte) at which kernels reach
    #: half of their asymptotic compute efficiency.
    intensity_knee: float = 60.0

    @property
    def peak_flops(self) -> float:
        return self.peak_tflops * 1e12

    @property
    def hbm_bytes_per_s(self) -> float:
        return self.hbm_tbps * 1e12

    def effective_flops(self, arithmetic_intensity: float) -> float:
        """Roofline-shaped achievable FLOPS at a given intensity.

        A *smooth* (harmonic) roofline: compute-bound and memory-bound
        costs add, which matches measured kernels better than a hard
        ``min`` and is what makes the self-correction's polynomial fit
        effective.
        """
        if arithmetic_intensity <= 0:
            return 0.0
        asymptote = self.peak_flops * self.compute_efficiency
        memory_roof = (arithmetic_intensity * self.hbm_bytes_per_s
                       * self.memory_efficiency)
        return 1.0 / (1.0 / asymptote + 1.0 / memory_roof)

    def effective_hbm_bytes_per_s(self, bytes_accessed: float) -> float:
        """Achieved HBM bandwidth; small transfers pay latency."""
        knee = 8e6  # ~8 MB working set to saturate HBM
        frac = bytes_accessed / (bytes_accessed + knee)
        return self.hbm_bytes_per_s * self.memory_efficiency \
            * (0.3 + 0.7 * frac)


#: Published-spec GPU presets (dense FP16/BF16 tensor throughput).
GPU_SUITES: Dict[str, GpuSuite] = {
    "V100": GpuSuite("V100", peak_tflops=125.0, hbm_gb=32.0,
                     hbm_tbps=0.9),
    "A100": GpuSuite("A100", peak_tflops=312.0, hbm_gb=80.0,
                     hbm_tbps=2.0),
    "H100": GpuSuite("H100", peak_tflops=989.0, hbm_gb=80.0,
                     hbm_tbps=3.35),
    "H800": GpuSuite("H800", peak_tflops=989.0, hbm_gb=80.0,
                     hbm_tbps=3.35),
    # Export-compliant low-FLOPS part: plenty of memory bandwidth, an
    # order of magnitude less compute — the paper's motivating hardware.
    "H20": GpuSuite("H20", peak_tflops=148.0, hbm_gb=96.0,
                    hbm_tbps=4.0),
}


def gpu_suite(name: str) -> GpuSuite:
    try:
        return GPU_SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown GPU suite {name!r}; available: "
            f"{sorted(GPU_SUITES)}") from None


@dataclass(frozen=True)
class NetworkSuite:
    """Network context for generating collective bandwidths.

    * ``intra_host_gbps`` — NVLink-class per-GPU bandwidth inside the
      high-bandwidth (HB) domain;
    * ``intra_host_size`` — GPUs per HB domain (8 on today's hosts; the
      Figure-14 study sweeps this);
    * ``nic_gbps`` — per-GPU RDMA bandwidth (2x200G on Astral);
    * ``tier3_oversubscription`` — >1 models an oversubscribed
      Agg-Core tier (Figure 2);
    * ``cross_dc_oversubscription`` / ``cross_dc_rtt_ms`` — the
      Appendix-B cross-datacenter extension (Figures 13/18);
    * efficiency knobs fold in congestion control and load balancing
      quality (the paper's optimized ECMP raises them).
    """

    name: str = "astral"
    intra_host_gbps: float = 3200.0
    intra_host_size: int = 8
    nic_gbps: float = 400.0
    tier3_oversubscription: float = 1.0
    #: fraction of inter-host traffic that must cross the Agg-Core tier
    #: (fragmented / cross-pod job placement, Figure 2).
    cross_pod_fraction: float = 0.0
    cross_dc_oversubscription: float = 1.0
    cross_dc_rtt_ms: float = 0.0
    #: achievable fraction of line rate for large messages (congestion
    #: control + load balancing quality).
    network_efficiency: float = 0.90
    #: message size (bytes) at which half the asymptotic bandwidth is
    #: reached (latency / slow-start region below it).
    message_knee_bytes: float = 512e3
    #: runtime all-to-all slowdown from unpredictable expert selection
    #: (MoE load imbalance).  Applied only by the ground-truth model —
    #: Seer's calibration cannot observe it, which is why the paper
    #: reports a relatively higher deviation for MoE models.
    a2a_imbalance: float = 0.06

    def with_oversubscription(self, ratio: float) -> "NetworkSuite":
        return replace(self, tier3_oversubscription=ratio)

    def with_cross_dc(self, oversubscription: float,
                      rtt_ms: float = 3.0) -> "NetworkSuite":
        return replace(self, cross_dc_oversubscription=oversubscription,
                       cross_dc_rtt_ms=rtt_ms)

    def with_intra_host_size(self, size: int) -> "NetworkSuite":
        if size < 1:
            raise ValueError("HB domain needs at least one GPU")
        return replace(self, intra_host_size=size)

    # -- effective bandwidths ---------------------------------------------
    def effective_gbps(self, message_bytes: float,
                       scope: str = "inter_host") -> float:
        """Achieved per-GPU bandwidth for a message at a given scope.

        Scopes: ``intra_host`` (NVLink), ``inter_host`` (RDMA fabric,
        divided by tier-3 oversubscription for cross-pod legs), and
        ``cross_dc`` (long-haul, oversubscribed and latency-bound).
        """
        if scope == "intra_host":
            line = self.intra_host_gbps
        elif scope == "inter_host":
            # A cross-pod share of the traffic is squeezed by the
            # tier-3 oversubscription; transfer time composes
            # additively, so the effective line rate divides by the
            # weighted slowdown.
            frac = self.cross_pod_fraction
            slowdown = (1.0 - frac) + frac * self.tier3_oversubscription
            line = self.nic_gbps / slowdown
        elif scope == "cross_pod":
            line = self.nic_gbps / self.tier3_oversubscription
        elif scope == "cross_dc":
            line = self.nic_gbps / self.cross_dc_oversubscription
        else:
            raise ValueError(f"unknown scope: {scope}")
        frac = message_bytes / (message_bytes + self.message_knee_bytes)
        return line * self.network_efficiency * frac

    def transfer_time_s(self, message_bytes: float,
                        scope: str = "inter_host") -> float:
        """Time to move one message at the effective bandwidth."""
        if message_bytes <= 0:
            return 0.0
        gbps = self.effective_gbps(message_bytes, scope)
        base_latency = (self.cross_dc_rtt_ms / 1e3
                        if scope == "cross_dc" else 10e-6)
        return base_latency + message_bytes * 8 / (gbps * 1e9)

"""Model and parallelism configurations for Seer's graph builders.

Presets cover the models the paper evaluates with: GPT-3-175B and
LLaMA-class dense transformers, plus Hunyuan-style MoE models (the
in-production workload) — all parameterized from public architecture
hyperparameters, which is exactly what Seer's handcraft path consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = [
    "ModelConfig",
    "ParallelismConfig",
    "GPT3_175B",
    "LLAMA2_70B",
    "LLAMA3_70B",
    "HUNYUAN_MOE",
    "DEEPSEEK_MOE",
]


@dataclass(frozen=True)
class ModelConfig:
    """Transformer architecture hyperparameters."""

    name: str
    n_layers: int
    hidden: int
    n_heads: int
    n_kv_heads: int
    ffn_hidden: int
    vocab: int
    seq_len: int = 4096
    dtype_bits: int = 16
    #: SwiGLU-style gated MLP (3 matrices) vs classic GELU (2 matrices).
    gated_mlp: bool = True
    # -- MoE --
    n_experts: int = 0           # 0 => dense
    experts_per_token: int = 0
    moe_ffn_hidden: Optional[int] = None

    @property
    def is_moe(self) -> bool:
        return self.n_experts > 0

    @property
    def head_dim(self) -> int:
        return self.hidden // self.n_heads

    @property
    def kv_hidden(self) -> int:
        return self.n_kv_heads * self.head_dim

    @property
    def dtype_bytes(self) -> int:
        return self.dtype_bits // 8

    # -- parameter counts ------------------------------------------------------
    @property
    def attn_params_per_layer(self) -> int:
        qkv = self.hidden * (self.hidden + 2 * self.kv_hidden)
        proj = self.hidden * self.hidden
        return qkv + proj

    @property
    def mlp_matrices(self) -> int:
        """Projections per MLP: up+gate+down (gated) or up+down."""
        return 3 if self.gated_mlp else 2

    @property
    def mlp_params_per_layer(self) -> int:
        ffn = self.moe_ffn_hidden or self.ffn_hidden
        per_expert = self.mlp_matrices * self.hidden * ffn
        if self.is_moe:
            return per_expert * self.n_experts
        return self.mlp_matrices * self.hidden * self.ffn_hidden

    @property
    def params_per_layer(self) -> int:
        norm = 2 * self.hidden
        return self.attn_params_per_layer + self.mlp_params_per_layer \
            + norm

    @property
    def expert_params(self) -> int:
        """Parameters living inside MoE experts (sharded by EP)."""
        if not self.is_moe:
            return 0
        return self.n_layers * self.mlp_params_per_layer

    @property
    def dense_params(self) -> int:
        """Parameters replicated across the DP group (non-expert)."""
        return self.total_params - self.expert_params

    @property
    def total_params(self) -> int:
        embedding = self.vocab * self.hidden
        head = self.vocab * self.hidden
        return self.n_layers * self.params_per_layer + embedding + head

    def with_seq_len(self, seq_len: int) -> "ModelConfig":
        return replace(self, seq_len=seq_len)


@dataclass(frozen=True)
class ParallelismConfig:
    """3D/4D parallelism layout (TP x PP x DP, plus EP for MoE)."""

    tp: int = 1
    pp: int = 1
    dp: int = 1
    ep: int = 1
    zero_stage: int = 0          # 0 = plain DP, 3 = ZeRO-3
    microbatches: int = 8
    micro_batch_size: int = 1
    #: model chunks per physical pipeline stage (Megatron interleaved
    #: 1F1B); 1 = the plain schedule.
    virtual_stages: int = 1
    #: parallelism dimension routed across datacenters, if any
    #: ("" | "pp" | "dp").  Drives the Figure 13/18 studies.
    cross_dc_dimension: str = ""

    @property
    def world_size(self) -> int:
        return self.tp * self.pp * self.dp

    @property
    def global_batch(self) -> int:
        return self.micro_batch_size * self.microbatches * self.dp

    @property
    def pipeline_chunks(self) -> int:
        return self.pp * self.virtual_stages

    def validate(self, model: ModelConfig) -> None:
        if min(self.tp, self.pp, self.dp, self.ep,
               self.virtual_stages) < 1:
            raise ValueError("parallel degrees must be >= 1")
        if model.n_layers % self.pipeline_chunks != 0:
            raise ValueError(
                f"{model.n_layers} layers not divisible by "
                f"pp*virtual={self.pipeline_chunks}")
        if self.zero_stage not in (0, 1, 3):
            raise ValueError(f"unsupported ZeRO stage {self.zero_stage}")
        if model.is_moe and self.ep > model.n_experts:
            raise ValueError("ep cannot exceed the number of experts")
        if self.cross_dc_dimension not in ("", "pp", "dp"):
            raise ValueError(
                f"cross-DC dimension must be '', 'pp' or 'dp', got "
                f"{self.cross_dc_dimension!r}")


GPT3_175B = ModelConfig(
    name="GPT-3-175B", n_layers=96, hidden=12288, n_heads=96,
    n_kv_heads=96, ffn_hidden=49152, vocab=50257, seq_len=2048,
    gated_mlp=False)

LLAMA2_70B = ModelConfig(
    name="LLaMA-2-70B", n_layers=80, hidden=8192, n_heads=64,
    n_kv_heads=8, ffn_hidden=28672, vocab=32000, seq_len=4096)

LLAMA3_70B = ModelConfig(
    name="LLaMA-3-70B", n_layers=80, hidden=8192, n_heads=64,
    n_kv_heads=8, ffn_hidden=28672, vocab=128256, seq_len=8192)

#: Hunyuan-class in-production MoE (publicly described shape).
HUNYUAN_MOE = ModelConfig(
    name="Hunyuan-MoE", n_layers=64, hidden=6400, n_heads=80,
    n_kv_heads=8, ffn_hidden=18304, vocab=128000, seq_len=4096,
    n_experts=16, experts_per_token=2, moe_ffn_hidden=18304)

#: DeepSeek-R1-class MoE: many small experts, high sparsity.
DEEPSEEK_MOE = ModelConfig(
    name="DeepSeek-MoE", n_layers=61, hidden=7168, n_heads=128,
    n_kv_heads=128, ffn_hidden=18432, vocab=129280, seq_len=4096,
    n_experts=256, experts_per_token=8, moe_ffn_hidden=2048)

"""Operator-graph builders for training and inference workloads.

Builds the executor graph Seer schedules: pipeline stages as logical
devices, per-microbatch forward/backward blocks, TP collectives, MoE
all-to-alls, PP send/recv, DP gradient synchronization (plain or
ZeRO-3), and the optimizer step.

Two granularities:

* **aggregate** (default) — one compute/memory block per (stage,
  microbatch) plus explicit communication operators.  Small graphs,
  right level for parameter sweeps (Figures 13/14/18/19).
* **detail** — the full Table-1 operator sequence per layer (PPRecv,
  RMSNorm, GQA QKV/CoreAttn/Proj, SwiGLU MLP, TP all-reduces, PPSend),
  used for operator-level timelines (Figure 12) and the Table-1 bench.

Communication scope is derived from the network suite: a collective
whose group fits inside the high-bandwidth domain runs at NVLink
bandwidth; larger groups split into an intra-host and an inter-host
portion (hierarchical collectives), which is what makes the Figure-14
intra-host-scale study come out right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..graph import OperatorGraph
from ..hardware import NetworkSuite
from ..operators import CommKind, OpType
from .config import ModelConfig, ParallelismConfig

__all__ = ["build_training_graph", "build_inference_graph"]


@dataclass
class _LayerCosts:
    """Per-(microbatch, TP-rank) forward costs of one transformer layer."""

    flops: float
    weight_bytes: float
    activation_bytes: float
    tp_comm_bytes: float        # per TP all-reduce (2 per layer)
    moe_a2a_bytes: float        # per all-to-all (2 per MoE layer)


def _layer_costs(model: ModelConfig, parallel: ParallelismConfig,
                 batch: int, seq: int) -> _LayerCosts:
    h = model.hidden
    fb = model.dtype_bytes
    tp = parallel.tp
    kv = model.kv_hidden

    attn_flops = (
        2 * batch * seq * h * (h + 2 * kv) / tp      # QKV projections
        + 4 * batch * seq * seq * h / tp             # scores + AV
        + 2 * batch * seq * h * h / tp               # output projection
    )
    matrices = model.mlp_matrices
    if model.is_moe:
        ffn = model.moe_ffn_hidden or model.ffn_hidden
        mlp_flops = (2 * matrices * batch * seq * h * ffn
                     * model.experts_per_token / tp)
        experts_per_rank = max(1, model.n_experts // parallel.ep)
        mlp_weight_bytes = matrices * h * ffn * experts_per_rank \
            * fb / tp
        moe_a2a_bytes = batch * seq * h * fb * model.experts_per_token
    else:
        mlp_flops = (2 * matrices * batch * seq * h
                     * model.ffn_hidden / tp)
        mlp_weight_bytes = matrices * h * model.ffn_hidden * fb / tp
        moe_a2a_bytes = 0.0

    attn_weight_bytes = (h * (h + 2 * kv) + h * h) * fb / tp
    norm_flops = 8 * batch * seq * h
    return _LayerCosts(
        flops=attn_flops + mlp_flops + norm_flops,
        weight_bytes=attn_weight_bytes + mlp_weight_bytes + 2 * h * fb,
        activation_bytes=4 * batch * seq * h * fb,
        tp_comm_bytes=batch * seq * h * fb,
        moe_a2a_bytes=moe_a2a_bytes,
    )


def _comm_split(network: NetworkSuite, group: int) -> List[tuple]:
    """(scope, group, byte_fraction) legs of a hierarchical collective."""
    hb = network.intra_host_size
    if group <= 1:
        return []
    if group <= hb:
        return [("intra_host", group, 1.0)]
    inter_group = group // hb
    return [
        ("intra_host", hb, hb / group),
        ("inter_host", inter_group, 1.0 - hb / group),
    ]


def _cross_dc_legs(group: int) -> List[tuple]:
    """Hierarchical collective for a group split across two DCs.

    Intra-DC reduce/gather handles most of the volume at fabric speed;
    only a 2/group shard is exchanged over the long-haul link — the
    standard hierarchical all-reduce the cross-DC deployments use.
    """
    if group <= 2:
        return [("cross_dc", max(group, 2), 1.0)]
    cross_fraction = min(1.0, 2.0 / group)
    return [
        ("inter_host", group // 2, 1.0 - cross_fraction),
        ("cross_dc", 2, cross_fraction),
    ]


def _add_collective(graph: OperatorGraph, name: str, kind: CommKind,
                    total_bytes: float, group: int,
                    network: NetworkSuite, device: str,
                    deps: List[int],
                    scope_override: Optional[str] = None) -> List[int]:
    """Add the (possibly hierarchical) legs of one collective."""
    if group <= 1 or total_bytes <= 0:
        return deps
    if scope_override == "cross_dc":
        legs = _cross_dc_legs(group)
    elif scope_override is not None:
        legs = [(scope_override, group, 1.0)]
    else:
        legs = _comm_split(network, group)
    ids = []
    for scope, leg_group, fraction in legs:
        op = graph.add(
            f"{name}.{scope}", OpType.COMMUNICATION, deps=deps,
            device=device, stream="comm", comm_kind=kind,
            comm_bytes=total_bytes * fraction, group_size=leg_group,
            scope=scope)
        ids.append(op.op_id)
    return ids


def build_training_graph(model: ModelConfig,
                         parallel: ParallelismConfig,
                         network: NetworkSuite,
                         detail: bool = False) -> OperatorGraph:
    """One training iteration across all pipeline stages."""
    parallel.validate(model)
    graph = OperatorGraph(name=f"{model.name}-train")
    batch = parallel.micro_batch_size
    seq = model.seq_len
    fb = model.dtype_bytes
    #: interleaved schedule: each physical stage hosts
    #: ``virtual_stages`` model chunks; chunk c runs on stage c % pp.
    chunks = parallel.pipeline_chunks
    layers_per_chunk = model.n_layers // chunks
    costs = _layer_costs(model, parallel, batch, seq)
    pp_bytes = batch * seq * model.hidden * fb / parallel.tp
    dp_scope = "cross_dc" if parallel.cross_dc_dimension == "dp" \
        else "inter_host"
    # With PP across datacenters, only the boundary between the two
    # halves of the pipeline traverses the long-haul link.
    dc_boundary_stage = parallel.pp // 2 - 1 \
        if parallel.cross_dc_dimension == "pp" and parallel.pp > 1 \
        else None

    def pp_scope_for(sender_stage: int) -> str:
        if dc_boundary_stage is not None \
                and sender_stage == dc_boundary_stage:
            return "cross_dc"
        return "inter_host"

    # fwd_done[(chunk, mb)] -> op ids; bwd_done likewise.
    fwd_send: dict = {}
    bwd_send: dict = {}
    fwd_done: dict = {}
    bwd_done: dict = {}

    def stage_device(stage: int) -> str:
        return f"stage{stage}"

    def chunk_device(chunk: int) -> str:
        return stage_device(chunk % parallel.pp)

    # ZeRO-3: parameters are gathered before the first forward use.
    zero_gather: dict = {}
    if parallel.zero_stage == 3 and parallel.dp > 1:
        shard_bytes = ((model.dense_params
                        + model.expert_params / parallel.ep) * fb
                       / (parallel.tp * parallel.pp))
        for stage in range(parallel.pp):
            ids = _add_collective(
                graph, f"ZeroParamAllGather.s{stage}",
                CommKind.ALL_GATHER, shard_bytes, parallel.dp, network,
                stage_device(stage), [], scope_override=dp_scope)
            zero_gather[stage] = ids

    for mb in range(parallel.microbatches):
        for chunk in range(chunks):
            device = chunk_device(chunk)
            deps: List[int] = list(zero_gather.get(chunk % parallel.pp,
                                                   []))
            if chunk > 0:
                if chunk_device(chunk - 1) == device:
                    # Same physical stage: chunk handoff is local.
                    deps = deps + list(fwd_done[(chunk - 1, mb)])
                else:
                    recv = graph.add(
                        f"PPRecv.c{chunk}.m{mb}",
                        OpType.COMMUNICATION,
                        deps=fwd_send[(chunk - 1, mb)], device=device,
                        stream="comm", comm_kind=CommKind.SEND_RECV,
                        comm_bytes=pp_bytes, group_size=2,
                        scope=pp_scope_for((chunk - 1) % parallel.pp))
                    deps = deps + [recv.op_id]
            if detail:
                last = _detail_forward(graph, model, parallel, network,
                                       device, mb, layers_per_chunk,
                                       costs, deps, chunk,
                                       chunk == 0, chunk == chunks - 1)
            else:
                last = _aggregate_forward(graph, model, parallel,
                                          network, device, mb,
                                          layers_per_chunk, costs,
                                          deps, chunk)
            fwd_done[(chunk, mb)] = last
            if chunk < chunks - 1 \
                    and chunk_device(chunk + 1) != device:
                send = graph.add(
                    f"PPSend.c{chunk}.m{mb}", OpType.COMMUNICATION,
                    deps=last, device=device, stream="comm",
                    comm_kind=CommKind.SEND_RECV, comm_bytes=pp_bytes,
                    group_size=2,
                    scope=pp_scope_for(chunk % parallel.pp))
                fwd_send[(chunk, mb)] = [send.op_id]

    # Backward sweep: the last chunk starts as soon as its forward is
    # done.
    for mb in range(parallel.microbatches):
        for chunk in reversed(range(chunks)):
            device = chunk_device(chunk)
            deps = list(fwd_done[(chunk, mb)])
            if chunk < chunks - 1:
                if chunk_device(chunk + 1) == device:
                    deps += list(bwd_done[(chunk + 1, mb)])
                else:
                    recv = graph.add(
                        f"BwdPPRecv.c{chunk}.m{mb}",
                        OpType.COMMUNICATION,
                        deps=bwd_send[(chunk + 1, mb)], device=device,
                        stream="comm", comm_kind=CommKind.SEND_RECV,
                        comm_bytes=pp_bytes, group_size=2,
                        scope=pp_scope_for(chunk % parallel.pp))
                    deps.append(recv.op_id)
            bwd = graph.add(
                f"BwdStage.c{chunk}.m{mb}", OpType.MIXED, deps=deps,
                device=device,
                flops=2.0 * costs.flops * layers_per_chunk,
                bytes_accessed=(costs.weight_bytes
                                + costs.activation_bytes)
                * layers_per_chunk)
            tail = _add_collective(
                graph, f"BwdTPAllReduce.c{chunk}.m{mb}",
                CommKind.ALL_REDUCE,
                2 * costs.tp_comm_bytes * layers_per_chunk,
                parallel.tp, network, device, [bwd.op_id])
            if model.is_moe and parallel.ep > 1:
                tail = _add_collective(
                    graph, f"BwdMoEAllToAll.c{chunk}.m{mb}",
                    CommKind.ALL_TO_ALL,
                    2 * costs.moe_a2a_bytes * layers_per_chunk,
                    parallel.ep, network, device, tail)
            bwd_done[(chunk, mb)] = tail
            if chunk > 0 and chunk_device(chunk - 1) != device:
                send = graph.add(
                    f"BwdPPSend.c{chunk}.m{mb}", OpType.COMMUNICATION,
                    deps=tail, device=device, stream="comm",
                    comm_kind=CommKind.SEND_RECV, comm_bytes=pp_bytes,
                    group_size=2,
                    scope=pp_scope_for((chunk - 1) % parallel.pp))
                bwd_send[(chunk, mb)] = [send.op_id]

    # Gradient synchronization: overlapped chunked all-reduce (plain DP)
    # or reduce-scatter (ZeRO), per stage.
    grad_tail: dict = {}
    if parallel.dp > 1:
        # Expert parameters are already sharded across the EP group, so
        # each rank only synchronizes its own expert shard; dense
        # parameters are fully replicated across DP.
        stage_params = (model.dense_params
                        + model.expert_params / parallel.ep) \
            / parallel.pp
        grad_bytes = stage_params * fb / parallel.tp
        kind = (CommKind.REDUCE_SCATTER if parallel.zero_stage >= 1
                else CommKind.ALL_REDUCE)
        n_buckets = min(4, parallel.microbatches)
        bucket_mbs = [parallel.microbatches - n_buckets + i
                      for i in range(n_buckets)]
        for stage in range(parallel.pp):
            # The stage's first chunk finishes backward last; its
            # buckets gate the sync.
            gate_chunk = stage
            ids: List[int] = []
            for index, mb in enumerate(bucket_mbs):
                ids += _add_collective(
                    graph, f"GradSync.s{stage}.c{index}", kind,
                    grad_bytes / n_buckets, parallel.dp, network,
                    stage_device(stage), bwd_done[(gate_chunk, mb)],
                    scope_override=dp_scope)
            grad_tail[stage] = ids

    # Optimizer step per stage (memory-bound parameter update).
    for stage in range(parallel.pp):
        deps = grad_tail.get(stage) \
            or bwd_done[(stage, parallel.microbatches - 1)]
        graph.add(
            f"OptimizerStep.s{stage}", OpType.MEMORY, deps=deps,
            device=stage_device(stage),
            bytes_accessed=model.total_params / parallel.pp
            / parallel.tp * 12)  # fp32 master weights + Adam moments
    graph.validate()
    return graph


def _aggregate_forward(graph, model, parallel, network, device, mb,
                       layers, costs, deps, chunk) -> List[int]:
    fwd = graph.add(
        f"FwdStage.c{chunk}.m{mb}", OpType.MIXED, deps=deps,
        device=device, flops=costs.flops * layers,
        bytes_accessed=(costs.weight_bytes + costs.activation_bytes)
        * layers)
    tail = _add_collective(
        graph, f"FwdTPAllReduce.c{chunk}.m{mb}", CommKind.ALL_REDUCE,
        2 * costs.tp_comm_bytes * layers, parallel.tp, network, device,
        [fwd.op_id])
    if model.is_moe and parallel.ep > 1:
        tail = _add_collective(
            graph, f"FwdMoEAllToAll.c{chunk}.m{mb}",
            CommKind.ALL_TO_ALL, 2 * costs.moe_a2a_bytes * layers,
            parallel.ep, network, device, tail)
    return tail


def _detail_forward(graph, model, parallel, network, device, mb,
                    layers, costs, deps, chunk, is_first_chunk,
                    is_last_chunk) -> List[int]:
    """Table-1 operator sequence, layer by layer."""
    batch = parallel.micro_batch_size
    seq = model.seq_len
    h = model.hidden
    kv = model.kv_hidden
    fb = model.dtype_bytes
    tp = parallel.tp

    if is_first_chunk and mb == 0:
        load = graph.add("LoadWeight.embedding", OpType.MEMORY,
                         deps=deps, device=device,
                         bytes_accessed=model.vocab * h * fb / tp)
        deps = [load.op_id]
    if is_first_chunk:
        embed = graph.add(
            f"EmbeddingComputation.m{mb}", OpType.COMPUTE, deps=deps,
            device=device, flops=batch * seq * h,
            bytes_accessed=batch * seq * h * fb)
        deps = [embed.op_id]

    for layer in range(layers):
        prefix = f"c{chunk}.l{layer}.m{mb}"
        norm_w = graph.add(f"RMSNormLoadWeight.{prefix}", OpType.MEMORY,
                           deps=deps, device=device,
                           bytes_accessed=h * fb)
        norm = graph.add(f"RMSNormComputation.{prefix}", OpType.COMPUTE,
                         deps=[norm_w.op_id], device=device,
                         flops=4 * batch * seq * h,
                         bytes_accessed=batch * seq * h * fb)
        qkv_w = graph.add(f"GQAQKVLoadWeight.{prefix}", OpType.MEMORY,
                          deps=[norm.op_id], device=device,
                          bytes_accessed=h * (h + 2 * kv) * fb / tp)
        qkv = graph.add(f"GQAQKVComputation.{prefix}", OpType.COMPUTE,
                        deps=[qkv_w.op_id], device=device,
                        flops=2 * batch * seq * h * (h + 2 * kv) / tp)
        attn = graph.add(f"GQACoreAttn.{prefix}", OpType.COMPUTE,
                         deps=[qkv.op_id], device=device,
                         flops=4 * batch * seq * seq * h / tp,
                         bytes_accessed=2 * batch * seq * (h + kv)
                         * fb / tp)
        proj_w = graph.add(f"GQAAttnProjLoadWeight.{prefix}",
                           OpType.MEMORY, deps=[attn.op_id],
                           device=device,
                           bytes_accessed=h * h * fb / tp)
        proj = graph.add(f"GQAAttnProjComputation.{prefix}",
                         OpType.COMPUTE, deps=[proj_w.op_id],
                         device=device,
                         flops=2 * batch * seq * h * h / tp)
        tail = _add_collective(
            graph, f"AttnTPAllReduce.{prefix}", CommKind.ALL_REDUCE,
            costs.tp_comm_bytes, tp, network, device, [proj.op_id])
        ffn = model.moe_ffn_hidden if model.is_moe else model.ffn_hidden
        up = graph.add(f"SwiMLPUpProj.{prefix}", OpType.MIXED,
                       deps=tail, device=device,
                       flops=2 * batch * seq * h * ffn / tp,
                       bytes_accessed=h * ffn * fb / tp)
        down_deps = [up.op_id]
        if model.gated_mlp:
            gate = graph.add(f"SwiMLPGateProj.{prefix}", OpType.MIXED,
                             deps=tail, device=device,
                             flops=2 * batch * seq * h * ffn / tp,
                             bytes_accessed=h * ffn * fb / tp)
            down_deps.append(gate.op_id)
        down = graph.add(f"SwiMLPDownProj.{prefix}", OpType.MIXED,
                         deps=down_deps, device=device,
                         flops=2 * batch * seq * h * ffn / tp,
                         bytes_accessed=h * ffn * fb / tp)
        deps = _add_collective(
            graph, f"MLPTPAllReduce.{prefix}", CommKind.ALL_REDUCE,
            costs.tp_comm_bytes, tp, network, device, [down.op_id])
        if model.is_moe and parallel.ep > 1:
            deps = _add_collective(
                graph, f"MoEAllToAll.{prefix}", CommKind.ALL_TO_ALL,
                2 * costs.moe_a2a_bytes, parallel.ep, network, device,
                deps)

    if is_last_chunk:
        logit = graph.add(
            f"Logit.m{mb}", OpType.MIXED, deps=deps, device=device,
            flops=2 * batch * seq * h * model.vocab / tp,
            bytes_accessed=h * model.vocab * fb / tp)
        deps = [logit.op_id]
    return deps


def build_inference_graph(model: ModelConfig,
                          parallel: ParallelismConfig,
                          network: NetworkSuite,
                          phase: str = "prefill",
                          batch: int = 8,
                          context_len: Optional[int] = None
                          ) -> OperatorGraph:
    """One inference step: full-sequence prefill or one decode token."""
    parallel.validate(model)
    if phase not in ("prefill", "decode"):
        raise ValueError(f"phase must be prefill or decode: {phase}")
    graph = OperatorGraph(name=f"{model.name}-{phase}")
    context = context_len if context_len is not None else model.seq_len
    seq = context if phase == "prefill" else 1
    fb = model.dtype_bytes
    h = model.hidden
    layers_per_stage = model.n_layers // parallel.pp
    costs = _layer_costs(model, parallel, batch, seq)
    pp_bytes = batch * seq * h * fb / parallel.tp

    prev_send: List[int] = []
    for stage in range(parallel.pp):
        device = f"stage{stage}"
        deps: List[int] = []
        if stage > 0:
            recv = graph.add(
                f"PPRecv.s{stage}", OpType.COMMUNICATION,
                deps=prev_send, device=device, stream="comm",
                comm_kind=CommKind.SEND_RECV, comm_bytes=pp_bytes,
                group_size=2)
            deps = [recv.op_id]
        kv_cache_bytes = 0.0
        if phase == "decode":
            # Decoding reads the whole KV cache per token: the
            # memory-bound regime with power well below TDP (Fig. 15b).
            kv_cache_bytes = (2 * batch * context * model.kv_hidden
                              * fb * layers_per_stage / parallel.tp)
        fwd = graph.add(
            f"FwdStage.s{stage}", OpType.MIXED, deps=deps,
            device=device, flops=costs.flops * layers_per_stage,
            bytes_accessed=(costs.weight_bytes
                            + costs.activation_bytes)
            * layers_per_stage + kv_cache_bytes)
        tail = _add_collective(
            graph, f"TPAllReduce.s{stage}", CommKind.ALL_REDUCE,
            2 * costs.tp_comm_bytes * layers_per_stage, parallel.tp,
            network, device, [fwd.op_id])
        if model.is_moe and parallel.ep > 1:
            tail = _add_collective(
                graph, f"MoEAllToAll.s{stage}", CommKind.ALL_TO_ALL,
                2 * costs.moe_a2a_bytes * layers_per_stage, parallel.ep,
                network, device, tail)
        if stage < parallel.pp - 1:
            send = graph.add(
                f"PPSend.s{stage}", OpType.COMMUNICATION, deps=tail,
                device=device, stream="comm",
                comm_kind=CommKind.SEND_RECV, comm_bytes=pp_bytes,
                group_size=2)
            prev_send = [send.op_id]
    graph.validate()
    return graph

"""Model configurations and operator-graph builders."""

from .builder import build_inference_graph, build_training_graph
from .config import (
    DEEPSEEK_MOE,
    GPT3_175B,
    HUNYUAN_MOE,
    LLAMA2_70B,
    LLAMA3_70B,
    ModelConfig,
    ParallelismConfig,
)

__all__ = [
    "DEEPSEEK_MOE",
    "GPT3_175B",
    "HUNYUAN_MOE",
    "LLAMA2_70B",
    "LLAMA3_70B",
    "ModelConfig",
    "ParallelismConfig",
    "build_inference_graph",
    "build_training_graph",
]

"""Self-correcting operator execution modeling (§4.3, self-correction).

Theoretical bandwidth "often fails to accurately reflect actual
throughput"; Seer therefore performs *polynomial curve fits on the
throughput measured from the Astral infrastructure* and substitutes the
fitted effective throughput into the basic model.  Three corrections:

* arithmetic operations  <-> measured GPU FLOPS (vs intensity);
* memory-access traffic  <-> measured HBM throughput (vs bytes);
* message size           <-> measured network throughput (per scope).

Here the "infrastructure measurements" come from a
:class:`TestbedOracle`, which samples the ground-truth effective curves
(:class:`~repro.seer.modeling.EffectiveModel`) with measurement noise —
the same role production testbed runs play for the real Seer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .hardware import GpuSuite, NetworkSuite
from .modeling import (
    EffectiveModel,
    collective_wire_factor,
    effective_scope,
)
from .operators import Operator, OpType

__all__ = [
    "ThroughputFit",
    "TestbedOracle",
    "CalibratedModel",
    "calibrate",
]


@dataclass
class ThroughputFit:
    """Polynomial fit of achieved throughput vs a size-like variable.

    Fitting is done in log-log space (throughput curves are smooth
    power-law-ish ramps), with clamping to the observed range so the
    polynomial cannot explode outside its support.
    """

    coefficients: np.ndarray
    x_min: float
    x_max: float

    @classmethod
    def fit(cls, xs: Sequence[float], ys: Sequence[float],
            degree: int = 3) -> "ThroughputFit":
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if len(xs) < degree + 1:
            raise ValueError(
                f"need at least {degree + 1} samples for degree "
                f"{degree}, got {len(xs)}")
        if np.any(xs <= 0) or np.any(ys <= 0):
            raise ValueError("samples must be positive for log-log fit")
        coeffs = np.polyfit(np.log(xs), np.log(ys), degree)
        return cls(coefficients=coeffs, x_min=float(np.min(xs)),
                   x_max=float(np.max(xs)))

    def predict(self, x: float) -> float:
        x = float(np.clip(x, self.x_min, self.x_max))
        return float(np.exp(np.polyval(self.coefficients, np.log(x))))


class TestbedOracle:
    """Produces "measured" throughput samples from the ground truth.

    ``noise_frac`` models run-to-run measurement variance; Seer's claim
    is that fitting through this noise recovers the truth closely
    enough for ~0.3% end-to-end deviation.
    """

    def __init__(self, gpu: GpuSuite, network: NetworkSuite,
                 noise_frac: float = 0.01, seed: int = 0):
        self.truth = EffectiveModel(gpu=gpu, network=network)
        self.gpu = gpu
        self.network = network
        self._rng = np.random.default_rng(seed)
        self.noise_frac = noise_frac

    def _noisy(self, value: float) -> float:
        return value * float(
            1.0 + self._rng.normal(0.0, self.noise_frac))

    def measure_flops(self, intensities: Sequence[float]
                      ) -> List[Tuple[float, float]]:
        return [(x, self._noisy(self.gpu.effective_flops(x)))
                for x in intensities]

    def measure_hbm(self, sizes: Sequence[float]
                    ) -> List[Tuple[float, float]]:
        return [(x, self._noisy(self.gpu.effective_hbm_bytes_per_s(x)))
                for x in sizes]

    def measure_network(self, sizes: Sequence[float], scope: str
                        ) -> List[Tuple[float, float]]:
        return [(x, self._noisy(
            self.network.effective_gbps(x, scope) * 1e9 / 8))
            for x in sizes]


_SCOPES = ("intra_host", "inter_host", "cross_pod", "cross_dc")


@dataclass
class CalibratedModel:
    """Seer's corrected execution model: basic formulas, fitted rates."""

    gpu: GpuSuite
    network: NetworkSuite
    flops_fit: ThroughputFit
    hbm_fit: ThroughputFit
    network_fits: Dict[str, ThroughputFit]
    kernel_launch_s: float = 4e-6
    base_net_latency_s: float = 10e-6

    def operator_time(self, op: Operator) -> float:
        if op.op_type is OpType.COMMUNICATION:
            return self._comm_time(op)
        time = self.kernel_launch_s
        if op.flops > 0:
            intensity = op.arithmetic_intensity
            if intensity == float("inf"):
                intensity = self.flops_fit.x_max
            time += op.flops / max(self.flops_fit.predict(intensity),
                                   1.0)
        if op.bytes_accessed > 0:
            time += op.bytes_accessed \
                / max(self.hbm_fit.predict(op.bytes_accessed), 1.0)
        return time

    def _comm_time(self, op: Operator) -> float:
        if op.comm_kind is None or op.comm_bytes <= 0:
            return 0.0
        factor = collective_wire_factor(op.comm_kind, op.group_size)
        wire_bytes = op.comm_bytes * factor
        scope = effective_scope(op)
        fit = self.network_fits.get(scope)
        if fit is None:
            raise KeyError(f"no network fit for scope {scope!r}")
        latency = (self.network.cross_dc_rtt_ms / 1e3
                   if scope == "cross_dc"
                   else self.base_net_latency_s)
        return latency + wire_bytes / max(fit.predict(wire_bytes), 1.0)


def calibrate(gpu: GpuSuite, network: NetworkSuite,
              noise_frac: float = 0.005, seed: int = 0,
              degree: int = 9) -> CalibratedModel:
    """Run the self-correction loop: measure, fit, substitute."""
    oracle = TestbedOracle(gpu, network, noise_frac=noise_frac,
                           seed=seed)
    # Sweep ranges cover everything LLM operators produce, from tiny
    # norm kernels to multi-GB optimizer sweeps and gradient buckets.
    intensities = np.geomspace(0.5, 65536.0, 64)
    flops_samples = oracle.measure_flops(intensities)
    flops_fit = ThroughputFit.fit([x for x, _ in flops_samples],
                                  [y for _, y in flops_samples],
                                  degree=degree)

    sizes = np.geomspace(1e3, 128e9, 64)
    hbm_samples = oracle.measure_hbm(sizes)
    hbm_fit = ThroughputFit.fit([x for x, _ in hbm_samples],
                                [y for _, y in hbm_samples],
                                degree=degree)

    message_sizes = np.geomspace(4e3, 64e9, 64)
    network_fits = {}
    for scope in _SCOPES:
        samples = oracle.measure_network(message_sizes, scope)
        network_fits[scope] = ThroughputFit.fit(
            [x for x, _ in samples], [y for _, y in samples],
            degree=degree)

    return CalibratedModel(
        gpu=gpu,
        network=network,
        flops_fit=flops_fit,
        hbm_fit=hbm_fit,
        network_fits=network_fits,
    )

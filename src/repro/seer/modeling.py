"""Basic modeling of operator execution time (paper Appendix E).

The atomic formulas:

* matrix multiplication, A (m x n) by B (n x p):
  ``T = (2n - 1) * m * p / flops``
* matrix addition, A,B (m x n): ``T = m * n / flops``
* memory access of A (m x n): ``T = m * n * f / hbm_bw`` where ``f`` is
  the floating-point bit-width;
* TP communication: ``T = b * s * h * f / net_bw``;
* PP communication: ``T = (b * s * h * f / tp_groups) / net_bw``;
* DP communication: ``T = (model_para_num * f / (tp_groups *
  pp_groups)) / net_bw``.

Two execution models implement the same interface:

* :class:`BasicModel` plugs *theoretical* FLOPS/HBM/network bandwidth
  into the formulas — the paper's initial, uncorrected Seer, which
  deviates >5% once communication bottlenecks appear (§5);
* :class:`EffectiveModel` uses the hardware/network suites' achievable
  throughput curves — it plays the role of the *testbed*: the ground
  truth the self-correction (:mod:`repro.seer.calibration`) fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from .hardware import GpuSuite, NetworkSuite
from .operators import CommKind, Operator, OpType

__all__ = [
    "effective_scope",
    "multiplication_time",
    "addition_time",
    "memory_access_time",
    "tp_comm_time",
    "pp_comm_time",
    "dp_comm_time",
    "collective_wire_factor",
    "ExecutionModel",
    "BasicModel",
    "EffectiveModel",
]


# -- Appendix E atomic formulas ------------------------------------------------

def multiplication_time(m: int, n: int, p: int, flops: float) -> float:
    """Eq. (1): T_mul = (2n - 1) * m * p / flops."""
    if flops <= 0:
        raise ValueError("flops must be positive")
    return (2 * n - 1) * m * p / flops


def addition_time(m: int, n: int, flops: float) -> float:
    """Eq. (2): T_add = m * n / flops."""
    if flops <= 0:
        raise ValueError("flops must be positive")
    return m * n / flops


def memory_access_time(m: int, n: int, bits: int,
                       hbm_bw_bits_per_s: float) -> float:
    """Eq. (3): T_mem = m * n * f / hbm_bw."""
    if hbm_bw_bits_per_s <= 0:
        raise ValueError("bandwidth must be positive")
    return m * n * bits / hbm_bw_bits_per_s


def tp_comm_time(batch: int, seq: int, hidden: int, bits: int,
                 net_bw_bits_per_s: float) -> float:
    """Eq. (4): T_tp = b * s * h * f / net_bw."""
    return batch * seq * hidden * bits / net_bw_bits_per_s


def pp_comm_time(batch: int, seq: int, hidden: int, bits: int,
                 tp_groups: int, net_bw_bits_per_s: float) -> float:
    """Eq. (5): T_pp = (b * s * h * f / tp) / net_bw."""
    return batch * seq * hidden * bits / tp_groups / net_bw_bits_per_s


def dp_comm_time(model_para_num: float, bits: int, tp_groups: int,
                 pp_groups: int, net_bw_bits_per_s: float) -> float:
    """Eq. (6): T_dp = (params * f / (tp * pp)) / net_bw."""
    return model_para_num * bits / (tp_groups * pp_groups) \
        / net_bw_bits_per_s


def effective_scope(op: Operator) -> str:
    """Where a collective's inter-host traffic actually travels.

    Same-rank collectives (AllReduce/ReduceScatter/AllGather rings, PP
    send/recv) ride same-rail paths — ToR-Agg-ToR — and never touch the
    Core tier inside a pod (architecture principle P1).  All-to-all
    traffic inherently crosses rails, so its inter-host legs traverse
    Core switches and are exposed to tier-3 oversubscription: exactly
    why the paper finds MoE models sensitive to oversubscription while
    dense models tolerate it (Figure 2, P2 discussion).
    """
    if op.scope == "inter_host" and op.comm_kind is CommKind.ALL_TO_ALL:
        return "cross_pod"
    return op.scope


def collective_wire_factor(kind: CommKind, group_size: int) -> float:
    """Bytes-on-wire multiplier per rank for ring-style collectives."""
    n = max(group_size, 1)
    if n == 1:
        return 0.0
    if kind is CommKind.ALL_REDUCE:
        return 2.0 * (n - 1) / n
    if kind in (CommKind.REDUCE_SCATTER, CommKind.ALL_GATHER):
        return (n - 1) / n
    if kind is CommKind.ALL_TO_ALL:
        return (n - 1) / n
    if kind is CommKind.SEND_RECV:
        return 1.0
    raise ValueError(f"unknown collective kind: {kind}")


# -- execution models ----------------------------------------------------------

class ExecutionModel(Protocol):
    """Anything that can price an operator's execution time."""

    def operator_time(self, op: Operator) -> float: ...


@dataclass(frozen=True)
class BasicModel:
    """Uncorrected Seer: theoretical peaks straight into Appendix E."""

    gpu: GpuSuite
    network: NetworkSuite
    dtype_bits: int = 16
    kernel_launch_s: float = 4e-6

    def operator_time(self, op: Operator) -> float:
        if op.op_type is OpType.COMMUNICATION:
            return self._comm_time(op)
        time = self.kernel_launch_s
        if op.flops > 0:
            time += op.flops / self.gpu.peak_flops
        if op.bytes_accessed > 0:
            time += op.bytes_accessed / self.gpu.hbm_bytes_per_s
        return time

    def _comm_time(self, op: Operator) -> float:
        if op.comm_kind is None or op.comm_bytes <= 0:
            return 0.0
        factor = collective_wire_factor(op.comm_kind, op.group_size)
        wire_bytes = op.comm_bytes * factor
        scope = effective_scope(op)
        if scope == "intra_host":
            line_gbps = self.network.intra_host_gbps
        elif scope == "cross_pod":
            line_gbps = (self.network.nic_gbps
                         / self.network.tier3_oversubscription)
        elif scope == "cross_dc":
            line_gbps = (self.network.nic_gbps
                         / self.network.cross_dc_oversubscription)
        else:
            line_gbps = self.network.nic_gbps
        return wire_bytes * 8 / (line_gbps * 1e9)


@dataclass(frozen=True)
class EffectiveModel:
    """Ground-truth model with achievable-throughput curves.

    Stands in for the production testbed: the curves capture the
    packet-level and kernel-level effects (datapath contention,
    congestion, launch latency, HBM ramp) that make real throughput
    fall short of theoretical bandwidth.
    """

    gpu: GpuSuite
    network: NetworkSuite
    dtype_bits: int = 16
    kernel_launch_s: float = 4e-6

    def operator_time(self, op: Operator) -> float:
        if op.op_type is OpType.COMMUNICATION:
            return self._comm_time(op)
        time = self.kernel_launch_s
        if op.flops > 0:
            flops = self.gpu.effective_flops(op.arithmetic_intensity)
            if flops <= 0:
                flops = self.gpu.peak_flops * self.gpu.compute_efficiency
            time += op.flops / flops
        if op.bytes_accessed > 0:
            time += op.bytes_accessed \
                / self.gpu.effective_hbm_bytes_per_s(op.bytes_accessed)
        return time

    def _comm_time(self, op: Operator) -> float:
        if op.comm_kind is None or op.comm_bytes <= 0:
            return 0.0
        factor = collective_wire_factor(op.comm_kind, op.group_size)
        wire_bytes = op.comm_bytes * factor
        time = self.network.transfer_time_s(wire_bytes,
                                            effective_scope(op))
        if op.comm_kind is CommKind.ALL_TO_ALL:
            # Expert-selection load imbalance: the slowest rank carries
            # more than its fair share.  Invisible to calibration.
            time *= 1.0 + self.network.a2a_imbalance
        return time

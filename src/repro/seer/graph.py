"""Operator dependency graphs with Chakra-style JSON interchange (§4.3).

Two generation paths, mirroring the paper:

* *converted from profiling data*: production Seer imports PyTorch
  profiler traces through Chakra; here, :meth:`OperatorGraph.from_json`
  accepts the same shape of executor-graph JSON (a list of node records
  with ids, deps, attributes, and optional execution times).
* *extended by handcraft*: experts add operators following the JSON
  template — :meth:`OperatorGraph.add` / :meth:`OperatorGraph.to_json`
  round-trip exactly that template.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional

from .operators import Operator, OpType

__all__ = ["GraphError", "OperatorGraph"]


class GraphError(ValueError):
    """Raised for malformed operator graphs (cycles, bad deps)."""


class OperatorGraph:
    """A DAG of operators with topological iteration."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self._ops: Dict[int, Operator] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._ops.values())

    def op(self, op_id: int) -> Operator:
        try:
            return self._ops[op_id]
        except KeyError:
            raise GraphError(f"unknown operator id: {op_id}") from None

    @property
    def operators(self) -> List[Operator]:
        return list(self._ops.values())

    # -- construction ------------------------------------------------------
    def add(self, name: str, op_type: OpType,
            deps: Optional[Iterable[int]] = None, **attrs) -> Operator:
        """Create and insert an operator; returns it (with its id)."""
        deps = list(deps or [])
        for dep in deps:
            if dep not in self._ops:
                raise GraphError(
                    f"operator {name!r} depends on unknown id {dep}")
        op = Operator(op_id=self._next_id, name=name, op_type=op_type,
                      deps=deps, **attrs)
        self._ops[op.op_id] = op
        self._next_id += 1
        return op

    def insert(self, op: Operator) -> Operator:
        """Insert a fully-formed operator (JSON import path)."""
        if op.op_id in self._ops:
            raise GraphError(f"duplicate operator id: {op.op_id}")
        self._ops[op.op_id] = op
        self._next_id = max(self._next_id, op.op_id + 1)
        return op

    # -- structure ---------------------------------------------------------
    def validate(self) -> None:
        """Check all deps exist and the graph is acyclic."""
        for op in self._ops.values():
            for dep in op.deps:
                if dep not in self._ops:
                    raise GraphError(
                        f"operator {op.op_id} depends on missing {dep}")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[Operator]:
        indegree = {op_id: 0 for op_id in self._ops}
        children: Dict[int, List[int]] = {op_id: []
                                          for op_id in self._ops}
        for op in self._ops.values():
            for dep in op.deps:
                indegree[op.op_id] += 1
                children[dep].append(op.op_id)
        ready = deque(sorted(op_id for op_id, deg in indegree.items()
                             if deg == 0))
        order = []
        while ready:
            op_id = ready.popleft()
            order.append(self._ops[op_id])
            for child in children[op_id]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._ops):
            raise GraphError("operator graph contains a cycle")
        return order

    def roots(self) -> List[Operator]:
        return [op for op in self._ops.values() if not op.deps]

    def critical_path_s(self) -> float:
        """Longest duration-weighted path (requires durations set)."""
        longest: Dict[int, float] = {}
        for op in self.topological_order():
            if op.duration_s is None:
                raise GraphError(
                    f"operator {op.op_id} has no duration; run the "
                    "execution model first")
            start = max((longest[d] for d in op.deps), default=0.0)
            longest[op.op_id] = start + op.duration_s
        return max(longest.values(), default=0.0)

    def counts_by_type(self) -> Dict[OpType, int]:
        counts: Dict[OpType, int] = {}
        for op in self._ops.values():
            counts[op.op_type] = counts.get(op.op_type, 0) + 1
        return counts

    # -- JSON interchange (the handcraft/Chakra template) ---------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "name": self.name,
            "nodes": [op.to_json_dict()
                      for op in self.topological_order()],
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "OperatorGraph":
        payload = json.loads(text)
        graph = cls(name=payload.get("name", "graph"))
        for record in payload.get("nodes", []):
            graph.insert(Operator.from_json_dict(record))
        graph.validate()
        return graph

"""Profiler-trace conversion: the Seer generation path (i) (§4.3).

Production Seer collects GPU traces with the PyTorch profiler, exports
them to JSON, and converts the execution into an operator graph via
PyTorch Chakra.  This module implements the equivalent conversion for
the profiler's Chrome-trace-event export format::

    {"traceEvents": [
        {"name": "ampere_gemm_...", "cat": "kernel", "ph": "X",
         "ts": 1000, "dur": 250,
         "args": {"stream": 7, "correlation": 42}},
        {"name": "ncclDevKernel_AllReduce_...", "cat": "kernel", ...},
        ...
    ]}

Conversion rules:

* complete events (``ph == "X"``) in kernel/memcpy/memset categories
  become operators; everything else (CPU ranges, annotations) is
  dropped, as Chakra's GPU-graph extraction does;
* operator type is classified from the kernel name: NCCL kernels are
  communication (with the collective kind parsed from the name),
  memcpy/memset are memory, the rest compute;
* measured durations are preserved (``duration_s``), so replaying the
  graph through the timeline engine reproduces the profiled iteration;
* dependencies: events on the same stream are serialized in time
  order; cross-stream order is anchored at communication boundaries
  (each comm op depends on the last earlier-ending compute op),
  mirroring the stream-semantics reconstruction Chakra performs.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .graph import GraphError, OperatorGraph
from .operators import CommKind, OpType

__all__ = ["from_pytorch_trace", "classify_kernel"]

_GPU_CATEGORIES = {"kernel", "gpu_memcpy", "gpu_memset"}

_NCCL_KINDS = (
    ("allreduce", CommKind.ALL_REDUCE),
    ("reducescatter", CommKind.REDUCE_SCATTER),
    ("allgather", CommKind.ALL_GATHER),
    ("alltoall", CommKind.ALL_TO_ALL),
    ("sendrecv", CommKind.SEND_RECV),
    ("send", CommKind.SEND_RECV),
    ("recv", CommKind.SEND_RECV),
)


def classify_kernel(name: str, category: str
                    ) -> tuple[OpType, Optional[CommKind]]:
    """(operator type, collective kind) for one GPU event."""
    lowered = name.lower()
    if "nccl" in lowered:
        for needle, kind in _NCCL_KINDS:
            if needle in lowered.replace("_", ""):
                return OpType.COMMUNICATION, kind
        return OpType.COMMUNICATION, CommKind.SEND_RECV
    if category in ("gpu_memcpy", "gpu_memset") \
            or "memcpy" in lowered or "memset" in lowered:
        return OpType.MEMORY, None
    return OpType.COMPUTE, None


def from_pytorch_trace(text: str, device: str = "dev0",
                       comm_bytes_arg: str = "bytes",
                       group_size_arg: str = "group_size"
                       ) -> OperatorGraph:
    """Convert a profiler JSON export into an operator graph.

    ``comm_bytes_arg``/``group_size_arg`` name the ``args`` fields
    carrying message size and communicator size where the profiler
    recorded them (NCCL annotations); absent fields default to zero /
    two so the graph stays schedulable.
    """
    payload = json.loads(text)
    if isinstance(payload, list):
        events = payload
    else:
        events = payload.get("traceEvents", [])
    gpu_events = []
    for event in events:
        if not isinstance(event, dict):
            continue
        if event.get("ph", "X") != "X":
            continue
        if event.get("cat", "kernel") not in _GPU_CATEGORIES:
            continue
        if "ts" not in event or "dur" not in event:
            continue
        gpu_events.append(event)
    if not gpu_events:
        raise GraphError("trace contains no GPU events")
    gpu_events.sort(key=lambda e: (float(e["ts"]), float(e["dur"])))

    graph = OperatorGraph(
        name=payload.get("name", "trace")
        if isinstance(payload, dict) else "trace")
    last_on_stream: Dict[object, int] = {}
    compute_frontier: Optional[int] = None   # last-ending compute op
    frontier_end = -1.0

    for event in gpu_events:
        args = event.get("args", {}) or {}
        stream_id = args.get("stream", 0)
        op_type, comm_kind = classify_kernel(
            str(event.get("name", "kernel")),
            str(event.get("cat", "kernel")))
        stream = "comm" if op_type is OpType.COMMUNICATION \
            else "compute"
        deps: List[int] = []
        if stream_id in last_on_stream:
            deps.append(last_on_stream[stream_id])
        if op_type is OpType.COMMUNICATION \
                and compute_frontier is not None \
                and compute_frontier not in deps:
            deps.append(compute_frontier)

        op = graph.add(
            str(event.get("name", "kernel")), op_type, deps=deps,
            device=device, stream=stream,
            comm_kind=comm_kind,
            comm_bytes=float(args.get(comm_bytes_arg, 0.0)),
            group_size=int(args.get(group_size_arg, 2))
            if comm_kind else 1,
            duration_s=float(event["dur"]) * 1e-6,
        )
        last_on_stream[stream_id] = op.op_id
        end = float(event["ts"]) + float(event["dur"])
        if op_type is not OpType.COMMUNICATION and end > frontier_end:
            frontier_end = end
            compute_frontier = op.op_id

    graph.validate()
    return graph

"""Astral Seer: operator-granular LLM performance forecasting."""

from .calibration import (
    CalibratedModel,
    TestbedOracle,
    ThroughputFit,
    calibrate,
)
from .chakra import classify_kernel, from_pytorch_trace
from .forecaster import InferenceForecast, Seer, TrainingForecast
from .graph import GraphError, OperatorGraph
from .hardware import GPU_SUITES, GpuSuite, NetworkSuite, gpu_suite
from .modeling import (
    BasicModel,
    EffectiveModel,
    addition_time,
    collective_wire_factor,
    dp_comm_time,
    memory_access_time,
    multiplication_time,
    pp_comm_time,
    tp_comm_time,
)
from .memory import MemoryEstimate, estimate_memory, fits_memory
from .models import (
    DEEPSEEK_MOE,
    GPT3_175B,
    HUNYUAN_MOE,
    LLAMA2_70B,
    LLAMA3_70B,
    ModelConfig,
    ParallelismConfig,
    build_inference_graph,
    build_training_graph,
)
from .operators import (
    LLAMA3_OPERATOR_TABLE,
    CommKind,
    Operator,
    OpType,
)
from .render import render_comparison, render_timeline
from .serving import (
    RequestDraw,
    RequestRecord,
    ServingConfig,
    ServingReport,
    ServingSimulator,
    draw_requests,
)
from .sweep import LayoutCandidate, sweep_parallelism
from .timeline import Timeline, TimelineEngine, TimelineEntry

__all__ = [
    "BasicModel",
    "CalibratedModel",
    "CommKind",
    "DEEPSEEK_MOE",
    "EffectiveModel",
    "GPT3_175B",
    "GPU_SUITES",
    "GpuSuite",
    "GraphError",
    "HUNYUAN_MOE",
    "InferenceForecast",
    "LLAMA2_70B",
    "LLAMA3_70B",
    "LLAMA3_OPERATOR_TABLE",
    "MemoryEstimate",
    "estimate_memory",
    "fits_memory",
    "ModelConfig",
    "NetworkSuite",
    "Operator",
    "OperatorGraph",
    "OpType",
    "ParallelismConfig",
    "Seer",
    "TestbedOracle",
    "ThroughputFit",
    "LayoutCandidate",
    "render_comparison",
    "render_timeline",
    "RequestDraw",
    "RequestRecord",
    "ServingConfig",
    "ServingReport",
    "ServingSimulator",
    "draw_requests",
    "sweep_parallelism",
    "Timeline",
    "TimelineEngine",
    "TimelineEntry",
    "TrainingForecast",
    "addition_time",
    "build_inference_graph",
    "build_training_graph",
    "calibrate",
    "classify_kernel",
    "collective_wire_factor",
    "from_pytorch_trace",
    "dp_comm_time",
    "gpu_suite",
    "memory_access_time",
    "multiplication_time",
    "pp_comm_time",
    "tp_comm_time",
]

"""Parallelism-layout search: Seer's parameter-tuning goal (§4.1).

"Tuning the parameters of the model framework, e.g., parallelism and
overlap strategies ... for optimal performance before practical
deployment."  Given a GPU budget, enumerate the feasible TP x PP x DP
(x EP) layouts, discard those that do not fit HBM, forecast each, and
rank by training throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .forecaster import Seer
from .memory import estimate_memory
from .models.config import ModelConfig, ParallelismConfig

__all__ = ["LayoutCandidate", "sweep_parallelism"]


@dataclass(frozen=True)
class LayoutCandidate:
    """One evaluated layout."""

    parallel: ParallelismConfig
    tokens_per_s: float
    iteration_time_s: float
    memory_gb: float
    fits: bool

    @property
    def label(self) -> str:
        parts = [f"TP{self.parallel.tp}", f"PP{self.parallel.pp}",
                 f"DP{self.parallel.dp}"]
        if self.parallel.ep > 1:
            parts.append(f"EP{self.parallel.ep}")
        return "x".join(parts)


def _divisors(n: int, candidates: Sequence[int]) -> List[int]:
    return [c for c in candidates if n % c == 0]


def sweep_parallelism(seer: Seer, model: ModelConfig,
                      n_gpus: int,
                      microbatches: int = 16,
                      tp_options: Sequence[int] = (1, 2, 4, 8),
                      pp_options: Sequence[int] = (1, 2, 4, 8, 16),
                      ep_options: Optional[Sequence[int]] = None,
                      include_infeasible: bool = False
                      ) -> List[LayoutCandidate]:
    """All layouts for a GPU budget, best throughput first.

    Layouts whose per-GPU footprint exceeds the Seer's GPU HBM are
    excluded unless ``include_infeasible`` is set (they are then kept,
    flagged, and ranked after every feasible layout).
    """
    if n_gpus < 1:
        raise ValueError("GPU budget must be positive")
    if ep_options is None:
        ep_options = (1,) if not model.is_moe else (
            ep for ep in (1, 2, 4, 8, 16, 32, 64)
            if ep <= model.n_experts)
    candidates: List[LayoutCandidate] = []
    seen = set()
    for tp in _divisors(n_gpus, tp_options):
        for pp in pp_options:
            if model.n_layers % pp or n_gpus % (tp * pp):
                continue
            dp = n_gpus // (tp * pp)
            for ep in ep_options:
                if model.is_moe and ep > model.n_experts:
                    continue
                key = (tp, pp, dp, ep)
                if key in seen:
                    continue
                seen.add(key)
                parallel = ParallelismConfig(
                    tp=tp, pp=pp, dp=dp, ep=ep,
                    microbatches=microbatches)
                estimate = estimate_memory(model, parallel)
                fits = estimate.fits(seer.gpu)
                if not fits and not include_infeasible:
                    continue
                forecast = seer.forecast_training(model, parallel)
                candidates.append(LayoutCandidate(
                    parallel=parallel,
                    tokens_per_s=forecast.tokens_per_s,
                    iteration_time_s=forecast.iteration_time_s,
                    memory_gb=estimate.total_gb,
                    fits=fits,
                ))
    candidates.sort(key=lambda c: (not c.fits, -c.tokens_per_s))
    return candidates

"""Operator model for Seer (§4.3, Appendix Table 1).

An LLM workflow decomposes into computation, memory-access, and
communication operators.  Each :class:`Operator` carries the attributes
its execution-time model needs (FLOPs, bytes touched, message bytes,
collective kind and scope) plus its dependencies; the timeline engine
schedules them on per-device streams.

``LLAMA3_OPERATOR_TABLE`` mirrors the paper's Table 1: the operator
inventory for LLaMA 3 with its comp/mem/comm type tags.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "OpType",
    "CommKind",
    "Operator",
    "LLAMA3_OPERATOR_TABLE",
]


class OpType(enum.Enum):
    COMPUTE = "comp"
    MEMORY = "mem"
    COMMUNICATION = "comm"
    MIXED = "mem+comp"      # fused load-weight + matmul operators


class CommKind(enum.Enum):
    ALL_REDUCE = "allreduce"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_GATHER = "all_gather"
    ALL_TO_ALL = "all_to_all"
    SEND_RECV = "send_recv"


@dataclass
class Operator:
    """One node of the operator dependency graph.

    ``device`` is the logical executor (e.g. a pipeline stage);
    ``stream`` separates overlappable work ("compute" vs "comm").
    ``duration_s`` is filled by the execution model (or supplied
    directly via the handcraft/JSON path).
    """

    op_id: int
    name: str
    op_type: OpType
    deps: List[int] = field(default_factory=list)
    device: str = "dev0"
    stream: str = "compute"
    # -- compute attrs --
    flops: float = 0.0
    # -- memory attrs --
    bytes_accessed: float = 0.0
    # -- communication attrs --
    comm_bytes: float = 0.0
    comm_kind: Optional[CommKind] = None
    group_size: int = 1
    scope: str = "inter_host"   # intra_host | inter_host | cross_dc
    # -- schedule --
    duration_s: Optional[float] = None
    start_s: Optional[float] = None

    @property
    def end_s(self) -> Optional[float]:
        if self.start_s is None or self.duration_s is None:
            return None
        return self.start_s + self.duration_s

    @property
    def arithmetic_intensity(self) -> float:
        if self.bytes_accessed <= 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / self.bytes_accessed

    def to_json_dict(self) -> dict:
        """Chakra-style node record (see :mod:`repro.seer.graph`)."""
        record = {
            "id": self.op_id,
            "name": self.name,
            "op": self.op_type.value,
            "deps": list(self.deps),
            "device": self.device,
            "stream": self.stream,
        }
        if self.flops:
            record["flops"] = self.flops
        if self.bytes_accessed:
            record["bytes_accessed"] = self.bytes_accessed
        if self.comm_kind is not None:
            record["comm_kind"] = self.comm_kind.value
            record["comm_bytes"] = self.comm_bytes
            record["group_size"] = self.group_size
            record["scope"] = self.scope
        if self.duration_s is not None:
            record["duration_s"] = self.duration_s
        return record

    @classmethod
    def from_json_dict(cls, record: dict) -> "Operator":
        comm_kind = record.get("comm_kind")
        return cls(
            op_id=int(record["id"]),
            name=record["name"],
            op_type=OpType(record["op"]),
            deps=[int(d) for d in record.get("deps", [])],
            device=record.get("device", "dev0"),
            stream=record.get("stream", "compute"),
            flops=float(record.get("flops", 0.0)),
            bytes_accessed=float(record.get("bytes_accessed", 0.0)),
            comm_bytes=float(record.get("comm_bytes", 0.0)),
            comm_kind=CommKind(comm_kind) if comm_kind else None,
            group_size=int(record.get("group_size", 1)),
            scope=record.get("scope", "inter_host"),
            duration_s=record.get("duration_s"),
        )


#: Paper Table 1 — computation, memory access and communication
#: operators used by LLaMA 3 in Seer (section: (operator, type)).
LLAMA3_OPERATOR_TABLE: Dict[str, List[Tuple[str, OpType]]] = {
    "input_embedding": [
        ("LoadWeight", OpType.MEMORY),
        ("EmbeddingComputation", OpType.COMPUTE),
    ],
    "transformer_layer": [
        ("PPRecv", OpType.COMMUNICATION),
        ("RMSNormLoadWeight", OpType.MEMORY),
        ("RMSNormComputation", OpType.COMPUTE),
        ("GQAQKVLoadWeight", OpType.MEMORY),
        ("GQAQKVComputation", OpType.COMPUTE),
        ("GQACoreAttn", OpType.COMPUTE),
        ("GQAAttnProjLoadWeight", OpType.MEMORY),
        ("GQAAttnProjComputation", OpType.COMPUTE),
        ("AttnTPAllReduce", OpType.COMMUNICATION),
        ("SwiMLPUpProj", OpType.MIXED),
        ("SwiMLPGateProj", OpType.MIXED),
        ("SwiMLPDownProj", OpType.MIXED),
        ("MLPTPAllReduce", OpType.COMMUNICATION),
        ("PPSend", OpType.COMMUNICATION),
    ],
    "output_layer": [
        ("Logit", OpType.MIXED),
    ],
}

"""Inference serving simulation: continuous batching over Seer costs.

Figures 14c/d and 15b treat inference as two phases — a compute-bound
prefill and a memory-bound decode.  A serving deployment interleaves
them across many requests (continuous batching); this module simulates
that interleaving with per-phase step costs taken from Seer forecasts,
producing the serving metrics an operator sizes deployments with:
time-to-first-token (TTFT), time-per-output-token (TPOT), and token
throughput as functions of offered load.

The simulation is iteration-granular, matching how serving engines
schedule: each engine step either prefills an admitted request or
advances every running request by one token; requests admit when a
batch slot frees up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .forecaster import Seer
from .models.config import ModelConfig, ParallelismConfig

__all__ = ["ServingConfig", "RequestDraw", "RequestRecord",
           "ServingReport", "ServingSimulator", "draw_requests"]


@dataclass(frozen=True)
class ServingConfig:
    """A serving deployment and its workload.

    ``seed`` may be an int or a string; all randomness is drawn from a
    ``random.Random(f"serving:{seed}:{stream}")`` string-keyed stream so
    results are independent of ``PYTHONHASHSEED`` and bit-identical
    across processes (the PR-3 draw convention).
    """

    batch_max: int = 16
    context_len: int = 2048
    output_len_mean: int = 256
    arrival_rate_per_s: float = 2.0
    duration_s: float = 60.0
    seed: Union[int, str] = 0


@dataclass(frozen=True)
class RequestDraw:
    """One request's pre-drawn workload: when it arrives, how long it is.

    Output length is attached at draw time (not during the simulation
    loop) so the same request population can be replayed under a
    different offered load — e.g. the rate-doubling metamorphic oracle
    superposes a second independent draw onto a base draw and compares
    per-request latencies.
    """

    arrival_s: float
    output_tokens: int


def draw_requests(config: ServingConfig,
                  stream: str = "requests") -> List[RequestDraw]:
    """Seeded Poisson arrivals with exponential output lengths.

    ``stream`` qualifies the seed string so callers can draw additional
    independent request populations from the same config (Poisson
    superposition: the union of two rate-λ draws is a rate-2λ draw).
    """
    rng = random.Random(f"serving:{config.seed}:{stream}")
    draws: List[RequestDraw] = []
    if config.arrival_rate_per_s <= 0.0:
        return draws
    t = 0.0
    while True:
        t += rng.expovariate(config.arrival_rate_per_s)
        if t > config.duration_s:
            break
        tokens = max(1, int(rng.expovariate(
            1.0 / config.output_len_mean)))
        draws.append(RequestDraw(arrival_s=t, output_tokens=tokens))
    return draws


@dataclass
class RequestRecord:
    """One served request's lifecycle timestamps."""

    request_id: int
    arrival_s: float
    prefill_start_s: float = -1.0
    first_token_s: float = -1.0
    finish_s: float = -1.0
    output_tokens: int = 0

    @property
    def ttft_s(self) -> float:
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        decode_tokens = max(1, self.output_tokens - 1)
        return (self.finish_s - self.first_token_s) / decode_tokens


@dataclass
class ServingReport:
    """Aggregate serving metrics."""

    completed: List[RequestRecord] = field(default_factory=list)
    arrived: int = 0
    duration_s: float = 0.0

    @property
    def completion_rate(self) -> float:
        return len(self.completed) / self.arrived if self.arrived \
            else 1.0

    def mean_ttft_s(self) -> float:
        if not self.completed:
            return float("inf")
        return float(np.mean([r.ttft_s for r in self.completed]))

    def p99_ttft_s(self) -> float:
        if not self.completed:
            return float("inf")
        return float(np.percentile([r.ttft_s for r in self.completed],
                                   99))

    def mean_tpot_s(self) -> float:
        if not self.completed:
            return float("inf")
        return float(np.mean([r.tpot_s for r in self.completed]))

    def output_tokens_per_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return sum(r.output_tokens for r in self.completed) \
            / self.duration_s


class ServingSimulator:
    """Continuous-batching engine driven by Seer step costs."""

    def __init__(self, seer: Seer, model: ModelConfig,
                 parallel: ParallelismConfig,
                 config: Optional[ServingConfig] = None,
                 cost_cache: Optional[Dict[str, Dict[int, float]]] = None):
        """``cost_cache`` shares memoized per-batch step costs between
        simulator instances; callers must only share it across
        simulators with the same (model, parallel, context_len) since
        the costs are keyed by batch size alone.
        """
        self.seer = seer
        self.model = model
        self.parallel = parallel
        self.config = config or ServingConfig()
        if cost_cache is None:
            cost_cache = {}
        self._prefill_s: Dict[int, float] = cost_cache.setdefault(
            "prefill_s", {})
        self._decode_s: Dict[int, float] = cost_cache.setdefault(
            "decode_s", {})

    # -- Seer-derived step costs -------------------------------------------
    def _forecast_steps(self, batch: int) -> None:
        if batch in self._decode_s:
            return
        forecast = self.seer.forecast_inference(
            self.model, self.parallel, batch=batch,
            context_len=self.config.context_len)
        self._prefill_s[batch] = forecast.prefill_time_s / batch
        self._decode_s[batch] = forecast.decode_time_per_token_s

    def prefill_step_s(self) -> float:
        """Cost of prefilling one request (single-sequence prefill)."""
        self._forecast_steps(1)
        return self._prefill_s[1]

    def decode_step_s(self, batch: int) -> float:
        """Cost of one decode step at the current running batch."""
        batch = max(1, min(batch, self.config.batch_max))
        self._forecast_steps(batch)
        return self._decode_s[batch]

    # -- simulation -----------------------------------------------------------
    def run(self,
            requests: Optional[Sequence[RequestDraw]] = None
            ) -> ServingReport:
        """Simulate the deployment over a request population.

        ``requests`` defaults to :func:`draw_requests` on the config;
        passing an explicit (arrival-sorted) population lets callers
        replay the same requests under perturbed load.
        """
        cfg = self.config
        if requests is None:
            requests = draw_requests(cfg)

        report = ServingReport(arrived=len(requests),
                               duration_s=cfg.duration_s)
        waiting: List[RequestRecord] = []
        running: List[RequestRecord] = []
        target_tokens: Dict[int, int] = {}
        next_arrival = 0
        now = 0.0

        while now < cfg.duration_s or running or waiting:
            # Admit arrivals up to the current time.
            while next_arrival < len(requests) \
                    and requests[next_arrival].arrival_s <= now:
                draw = requests[next_arrival]
                record = RequestRecord(request_id=next_arrival,
                                       arrival_s=draw.arrival_s)
                target_tokens[record.request_id] = draw.output_tokens
                waiting.append(record)
                next_arrival += 1
            if not running and not waiting:
                if next_arrival >= len(requests):
                    break
                now = requests[next_arrival].arrival_s
                continue

            # Scheduler: prefill one waiting request if a slot is free
            # (prefill-prioritized continuous batching), else decode.
            if waiting and len(running) < cfg.batch_max:
                record = waiting.pop(0)
                record.prefill_start_s = max(now, record.arrival_s)
                now = record.prefill_start_s + self.prefill_step_s()
                record.first_token_s = now
                record.output_tokens = 1
                running.append(record)
                continue

            step = self.decode_step_s(len(running))
            now += step
            finished = []
            for record in running:
                record.output_tokens += 1
                if record.output_tokens \
                        >= target_tokens[record.request_id]:
                    record.finish_s = now
                    finished.append(record)
            for record in finished:
                running.remove(record)
                report.completed.append(record)

        report.duration_s = max(cfg.duration_s, now)
        return report

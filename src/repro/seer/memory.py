"""HBM memory-footprint estimation for parallelism layouts.

Seer's GPU configurations include HBM size (§4.3); before recommending
a parallelism layout, the planner must know it *fits*.  The estimate
follows the standard mixed-precision accounting:

* weights: 2 bytes/param (bf16), sharded by TP x PP (and EP for expert
  parameters; ZeRO-3 additionally shards by DP);
* gradients: 2 bytes/param, same sharding (ZeRO >= 2 shards by DP);
* optimizer states: fp32 master + Adam moments = 12 bytes/param,
  sharded by DP for any ZeRO stage >= 1;
* activations: per microbatch, per layer ~ ``s*b*h*(34 + 5*a*s/h)``
  bytes / tp (selective-recompute-free transformer accounting), with
  up to ``pp`` microbatches in flight on a 1F1B pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hardware import GpuSuite
from .models.config import ModelConfig, ParallelismConfig

__all__ = ["MemoryEstimate", "estimate_memory", "fits_memory"]


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-GPU HBM footprint breakdown, in bytes."""

    weights: float
    gradients: float
    optimizer: float
    activations: float
    kv_cache: float = 0.0

    @property
    def total(self) -> float:
        return (self.weights + self.gradients + self.optimizer
                + self.activations + self.kv_cache)

    @property
    def total_gb(self) -> float:
        return self.total / 1e9

    def fits(self, gpu: GpuSuite, headroom_frac: float = 0.08) -> bool:
        """Does the footprint fit, leaving fragmentation headroom?"""
        budget = gpu.hbm_gb * 1e9 * (1.0 - headroom_frac)
        return self.total <= budget


def _params_per_gpu(model: ModelConfig,
                    parallel: ParallelismConfig) -> float:
    dense = model.dense_params / (parallel.tp * parallel.pp)
    expert = model.expert_params / (parallel.tp * parallel.pp
                                    * parallel.ep)
    return dense + expert


def estimate_memory(model: ModelConfig, parallel: ParallelismConfig,
                    training: bool = True,
                    inference_batch: int = 8,
                    inference_context: int = 0) -> MemoryEstimate:
    """Per-GPU memory footprint of a layout."""
    parallel.validate(model)
    params = _params_per_gpu(model, parallel)
    zero_dp = parallel.dp if parallel.zero_stage >= 1 else 1

    weights = params * 2.0
    if parallel.zero_stage == 3:
        weights /= parallel.dp
    if not training:
        return MemoryEstimate(
            weights=weights, gradients=0.0, optimizer=0.0,
            activations=_inference_activations(model, parallel,
                                               inference_batch),
            kv_cache=_kv_cache_bytes(model, parallel, inference_batch,
                                     inference_context
                                     or model.seq_len),
        )

    gradients = params * 2.0
    if parallel.zero_stage >= 2:
        gradients /= parallel.dp
    optimizer = params * 12.0 / zero_dp
    activations = _training_activations(model, parallel)
    return MemoryEstimate(weights=weights, gradients=gradients,
                          optimizer=optimizer,
                          activations=activations)


def _training_activations(model: ModelConfig,
                          parallel: ParallelismConfig,
                          flash_attention: bool = True) -> float:
    s = model.seq_len
    b = parallel.micro_batch_size
    h = model.hidden
    heads = model.n_heads
    layers_per_stage = model.n_layers // parallel.pp
    # The 5*a*s/h term is the materialized attention-score matrix;
    # FlashAttention (standard on today's stacks) never materializes
    # it, leaving the ~34-byte/element transformer-layer footprint.
    quadratic = 0.0 if flash_attention else 5.0 * heads * s / h
    per_layer = s * b * h * (34.0 + quadratic) / parallel.tp
    in_flight = min(parallel.microbatches, parallel.pp)
    return per_layer * layers_per_stage * in_flight


def _inference_activations(model: ModelConfig,
                           parallel: ParallelismConfig,
                           batch: int) -> float:
    s = model.seq_len
    h = model.hidden
    layers_per_stage = model.n_layers // parallel.pp
    # One live layer's worth of working set dominates at inference.
    return 8.0 * batch * s * h * model.dtype_bytes \
        * max(1, layers_per_stage // 8) / parallel.tp


def _kv_cache_bytes(model: ModelConfig, parallel: ParallelismConfig,
                    batch: int, context: int) -> float:
    layers_per_stage = model.n_layers // parallel.pp
    return (2.0 * batch * context * model.kv_hidden
            * model.dtype_bytes * layers_per_stage / parallel.tp)


def fits_memory(model: ModelConfig, parallel: ParallelismConfig,
                gpu: GpuSuite, training: bool = True) -> bool:
    """Convenience wrapper: does the layout fit this GPU's HBM?"""
    return estimate_memory(model, parallel, training=training) \
        .fits(gpu)

"""Operator-timeline construction via discrete-event simulation (§4.3).

"With operator dependencies and operator execution time, any
discrete-event simulation tool can be used to construct the timeline of
the end-to-end LLM training and inference process."  This module is
that step: operators wait for their dependencies, then run serially on
their (device, stream) executor — compute/memory ops on the device's
compute stream, communication on its comm stream, so overlap emerges
from the dependency structure exactly as it does on real GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..simcore import Resource, Simulator
from .graph import OperatorGraph
from .modeling import ExecutionModel
from .operators import Operator, OpType

__all__ = ["TimelineEntry", "Timeline", "TimelineEngine"]


@dataclass(frozen=True)
class TimelineEntry:
    """One scheduled operator occurrence."""

    op_id: int
    name: str
    device: str
    stream: str
    op_type: OpType
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class Timeline:
    """The scheduled execution of an operator graph."""

    graph_name: str
    entries: List[TimelineEntry] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return max((entry.end_s for entry in self.entries), default=0.0)

    def entries_for(self, device: str,
                    stream: Optional[str] = None) -> List[TimelineEntry]:
        result = [e for e in self.entries if e.device == device]
        if stream is not None:
            result = [e for e in result if e.stream == stream]
        return sorted(result, key=lambda e: e.start_s)

    def devices(self) -> List[str]:
        return sorted({entry.device for entry in self.entries})

    def busy_time_s(self, device: str, stream: str = "compute") -> float:
        return sum(e.duration_s for e in self.entries
                   if e.device == device and e.stream == stream)

    def comm_time_s(self) -> float:
        return sum(e.duration_s for e in self.entries
                   if e.op_type is OpType.COMMUNICATION)

    def compute_time_s(self) -> float:
        return sum(e.duration_s for e in self.entries
                   if e.op_type is not OpType.COMMUNICATION)

    def exposed_comm_s(self, device: str) -> float:
        """Communication time NOT overlapped with compute on a device.

        Computed as intervals where the comm stream is busy and the
        compute stream idle — the paper's "~15% of communication time
        remains after overlapping" metric.
        """
        comm = [(e.start_s, e.end_s)
                for e in self.entries_for(device, "comm")]
        compute = [(e.start_s, e.end_s)
                   for e in self.entries_for(device, "compute")]
        exposed = 0.0
        for start, end in comm:
            covered = 0.0
            for c_start, c_end in compute:
                lo = max(start, c_start)
                hi = min(end, c_end)
                if hi > lo:
                    covered += hi - lo
            exposed += max(0.0, (end - start) - covered)
        return exposed

    def utilization(self, device: str) -> float:
        total = self.total_time_s
        if total <= 0:
            return 0.0
        return self.busy_time_s(device, "compute") / total


class TimelineEngine:
    """Schedule an operator graph under an execution model."""

    def __init__(self, model: ExecutionModel):
        self.model = model

    def run(self, graph: OperatorGraph) -> Timeline:
        graph.validate()
        sim = Simulator()
        streams: Dict[Tuple[str, str], Resource] = {}
        done_events = {}
        timeline = Timeline(graph_name=graph.name)

        def stream_for(op: Operator) -> Resource:
            key = (op.device, op.stream)
            if key not in streams:
                streams[key] = Resource(sim, capacity=1)
            return streams[key]

        def runner(op: Operator, duration: float):
            if op.deps:
                yield sim.all_of([done_events[d] for d in op.deps])
            resource = stream_for(op)
            yield resource.request()
            start = sim.now
            try:
                yield sim.timeout(duration)
            finally:
                resource.release()
            op.start_s = start
            op.duration_s = duration
            timeline.entries.append(TimelineEntry(
                op_id=op.op_id, name=op.name, device=op.device,
                stream=op.stream, op_type=op.op_type, start_s=start,
                end_s=sim.now))
            done_events[op.op_id].succeed()

        # Insertion in topological order gives deterministic FIFO
        # tie-breaking on each stream.
        for op in graph.topological_order():
            done_events[op.op_id] = sim.event(name=f"done.{op.op_id}")
        for op in graph.topological_order():
            duration = op.duration_s if op.duration_s is not None \
                else self.model.operator_time(op)
            sim.process(runner(op, duration), name=op.name)
        sim.run()
        timeline.entries.sort(key=lambda e: (e.start_s, e.op_id))
        return timeline

"""repro — a reproduction of the Astral LLM datacenter infrastructure.

Paper: "Astral: A Datacenter Infrastructure for Large Language Model
Training at Scale", SIGCOMM 2025.

Subpackages:

* :mod:`repro.simcore` — discrete-event simulation kernel.
* :mod:`repro.topology` — Astral and baseline fabric builders.
* :mod:`repro.network` — flow-level fabric, ECMP, congestion, collectives.
* :mod:`repro.power` — HVDC power system and GPU power traces.
* :mod:`repro.cooling` — airflow / air-liquid cooling and PUE models.
* :mod:`repro.monitoring` — full-stack telemetry, fault injection, and
  the cross-host + hierarchical correlation analyzer.
* :mod:`repro.seer` — operator-granular timeline forecasting.
* :mod:`repro.cluster` — datacenter-scale job scheduling and
  orchestration (workloads, policies, recovery, tidal admission).
* :mod:`repro.resilience` — live failure injection against the running
  fabric and the closed detect→localize→cordon→requeue recovery loop.
* :mod:`repro.validation` — differential, invariant, and metamorphic
  oracles fuzzing the whole simulator stack (``repro validate``).
* :mod:`repro.core` — the public facade tying everything together.
"""

__version__ = "0.1.0"


def __getattr__(name):
    """Lazy top-level conveniences: ``repro.AstralInfrastructure`` etc.

    Imports stay deferred so ``import repro`` remains cheap.
    """
    lazy = {
        "AstralInfrastructure": ("repro.core", "AstralInfrastructure"),
        "AstralParams": ("repro.topology", "AstralParams"),
        "Seer": ("repro.seer", "Seer"),
        "FaultSpec": ("repro.monitoring", "FaultSpec"),
        "ClusterScheduler": ("repro.cluster", "ClusterScheduler"),
        "SchedulingPolicy": ("repro.cluster", "SchedulingPolicy"),
        "FailureInjector": ("repro.resilience", "FailureInjector"),
        "ResilienceCampaign": ("repro.resilience",
                               "ResilienceCampaign"),
        "ScenarioGenerator": ("repro.validation", "ScenarioGenerator"),
        "run_validation_campaign": ("repro.validation",
                                    "run_campaign"),
    }
    if name in lazy:
        import importlib

        module, attr = lazy[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

#!/usr/bin/env python3
"""The experiment farm: parallel sweeps that cannot change the answer.

``repro.farm`` wraps every runnable unit in the repo as a content-
hashed ``TaskSpec``, executes batches of them on a crash-isolated
process pool, and memoizes results in an on-disk cache keyed by spec
hash + code fingerprint.  This walkthrough shows the guarantees one
at a time:

1. specs are values — canonical JSON in, stable content hash out;
   labels don't affect identity, parameters do;
2. a cluster-policy grid sweep run serially and at 4 workers, with
   the two reports compared bit for bit;
3. a warm rerun of the same sweep served entirely from the cache —
   zero simulations executed;
4. crash isolation: a task that hard-kills its worker fails alone
   while innocent siblings complete.

Run:  python examples/farm_sweep.py
"""

import tempfile
from pathlib import Path

from repro.farm import (
    FarmExecutor,
    ResultCache,
    TaskSpec,
    grid_specs,
    run_sweep,
)

CACHE_ROOT = Path(tempfile.mkdtemp(prefix="repro-farm-demo-"))


def demo_specs():
    print("=" * 64)
    print("1. Specs are values: canonical JSON, stable hashes")
    print("=" * 64)
    spec = TaskSpec("cluster-sweep",
                    {"scale": "tiny", "jobs": 8, "policy": "topology",
                     "seed": 0})
    relabelled = TaskSpec("cluster-sweep", spec.params,
                          label="pretty name for the same work")
    reparam = TaskSpec("cluster-sweep", {**spec.params, "jobs": 9})
    print(f"spec:            {spec.describe()}")
    print(f"content hash:    {spec.content_hash[:16]}…")
    assert relabelled.content_hash == spec.content_hash
    assert reparam.content_hash != spec.content_hash
    print("relabelling      -> same hash (labels are display-only)")
    print("changing a param -> different hash (identity is the work)")


def demo_parallel_equals_serial():
    print()
    print("=" * 64)
    print("2. A policy grid, serial vs 4 workers — bit-identical")
    print("=" * 64)
    specs = grid_specs(
        "cluster-sweep",
        base={"scale": "tiny", "jobs": 8},
        grid={"policy": ["fifo", "topology"]},
        seeds=[0, 1])
    print(f"{len(specs)} sweep points:")
    for spec in specs:
        print(f"  {spec.label}")
    serial = FarmExecutor(
        workers=1, use_cache=False,
        cache=ResultCache(root=CACHE_ROOT / "serial")).run(specs)
    parallel = FarmExecutor(
        workers=4, use_cache=False,
        cache=ResultCache(root=CACHE_ROOT / "sweep")).run(specs)
    assert serial.ok and parallel.ok
    assert serial.identity() == parallel.identity()
    print(f"serial:   {serial.wall_s:.2f}s   "
          f"parallel: {parallel.wall_s:.2f}s   identity: equal")
    sweep = run_sweep(specs, workers=1,
                      cache=ResultCache(root=CACHE_ROOT / "sweep"))
    for (params, _), util in zip(sweep.rows(),
                                 sweep.column("utilization")):
        print(f"  policy={params['policy']:<9} seed={params['seed']}"
              f"  utilization={util:.3f}")
    return specs


def demo_warm_rerun(specs):
    print()
    print("=" * 64)
    print("3. Warm rerun: the cache does the work")
    print("=" * 64)
    warm = FarmExecutor(
        workers=4,
        cache=ResultCache(root=CACHE_ROOT / "sweep")).run(specs)
    assert warm.n_executed == 0
    print(f"{warm.n_cached} results from cache, {warm.n_executed} "
          f"executed, wall {warm.wall_s*1000:.0f} ms")
    print("any source-file edit changes the code fingerprint and "
          "cold-starts the cache")


def demo_crash_isolation():
    print()
    print("=" * 64)
    print("4. A dying worker fails its task, not the sweep")
    print("=" * 64)
    specs = [
        TaskSpec("farm-selftest", {"mode": "ok", "value": 1}),
        TaskSpec("farm-selftest", {"mode": "crash"}),
        TaskSpec("farm-selftest", {"mode": "ok", "value": 2}),
    ]
    report = FarmExecutor(
        workers=2, max_retries=1, use_cache=False,
        cache=ResultCache(root=CACHE_ROOT / "crash")).run(specs)
    for result in report.results:
        mode = result.spec.params["mode"]
        print(f"  mode={mode:<6} status={result.status:<8} "
              f"attempts={result.attempts}")
    assert [r.status for r in report.results] == ["ok", "crashed", "ok"]


def main():
    demo_specs()
    specs = demo_parallel_equals_serial()
    demo_warm_rerun(specs)
    demo_crash_isolation()
    print()
    print("Farm guarantees demonstrated.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cross-datacenter deployment planning (Appendix B end to end).

Connecting two Astral datacenters hundreds of kilometers apart:

1. stitch the fabrics together with DCI routers and long-haul fiber;
2. verify cross-DC routing and measure the long-haul bottleneck;
3. use Seer to pick which parallelism dimension crosses the DCs and
   how much fiber oversubscription the workload tolerates;
4. price the fiber and pick the cheapest provisioning that keeps
   training efficiency above a target.

Run:  python examples/cross_dc_deployment.py
"""

from repro.network import Fabric, make_flow, reset_flow_ids
from repro.seer import (
    LLAMA3_70B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)
from repro.topology import (
    CrossDcParams,
    DeviceKind,
    FiberCostModel,
    build_cross_dc,
)

DISTANCE_KM = 300.0
TARGET_EFFICIENCY = 0.98


def fabric_section() -> None:
    print("== Stitched cross-DC fabric ==")
    params = CrossDcParams(fiber_gbps=800.0, dci_per_datacenter=2)
    topology = build_cross_dc(params)
    dcis = topology.switches(DeviceKind.DCI)
    print(f"  {topology.gpu_count()} GPUs across 2 DCs, "
          f"{len(dcis)} DCI routers, "
          f"core:long-haul oversubscription "
          f"{params.oversubscription:.0f}:1")

    fabric = Fabric(topology)
    reset_flow_ids()
    flow = make_flow("dc0.p0.b0.h0", "dc1.p0.b0.h0", rail=0,
                     size_bits=8e9)
    path = fabric.router.path(flow, max_hops=24)
    hops = " -> ".join(path.devices)
    print(f"  sample cross-DC path ({path.switch_hops} switch hops):")
    print(f"    {hops}\n")


def seer_section() -> dict:
    print("== Seer: oversubscription tolerance per dimension ==")
    baseline = Seer(gpu="H800", network=NetworkSuite()) \
        .forecast_training(
            LLAMA3_70B,
            ParallelismConfig(tp=8, pp=4, dp=4, microbatches=16)) \
        .iteration_time_s
    tolerances = {}
    print(f"    {'ratio':<7}{'PP crosses':<13}{'DP crosses':<13}")
    for ratio in (4, 8, 16, 32):
        row = f"    {ratio:<3}:1  "
        for dim in ("pp", "dp"):
            network = NetworkSuite().with_cross_dc(float(ratio),
                                                   rtt_ms=3.0)
            parallel = ParallelismConfig(
                tp=8, pp=4, dp=4, microbatches=16,
                cross_dc_dimension=dim)
            t = Seer(gpu="H800", network=network) \
                .forecast_training(LLAMA3_70B, parallel) \
                .iteration_time_s
            efficiency = baseline / t
            row += f"{efficiency:<13.1%}"
            if efficiency >= TARGET_EFFICIENCY:
                tolerances[dim] = ratio
        print(row)
    for dim, ratio in tolerances.items():
        print(f"  {dim.upper()} traffic tolerates up to "
              f"{ratio}:1 at >= {TARGET_EFFICIENCY:.0%} efficiency")
    print()
    return tolerances


def cost_section(tolerances: dict) -> None:
    print("== Fiber provisioning & cost ==")
    model = FiberCostModel()
    intra_core_gbps = 12_800.0  # per-DC core capacity in this sizing
    for dim, ratio in sorted(tolerances.items()):
        required = intra_core_gbps / ratio
        fibers = model.fibers_for_bandwidth(required)
        yearly = model.yearly_cost_usd(DISTANCE_KM, fibers)
        print(f"  {dim.upper()} across DC at {ratio}:1 -> "
              f"{required:,.0f} Gbps long-haul = {fibers} fibers "
              f"= ${yearly:,.0f}/year over {DISTANCE_KM:.0f} km")
    print("  -> route the dimension that tolerates the highest "
          "ratio; rent the fewest fibers.")


def main() -> None:
    fabric_section()
    tolerances = seer_section()
    cost_section(tolerances)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build an Astral deployment and exercise all three pillars.

Walks the Figure-1 loop in a few dozen lines:

1. build the Astral network architecture and inspect its scale;
2. forecast a LLaMA-3 training iteration with Seer;
3. run a monitored training job with an injected GPU fault and let the
   hierarchical analyzer localize it.

Run:  python examples/quickstart.py
"""

from repro.core import AstralInfrastructure, PlacementPolicy
from repro.monitoring import FaultSpec, Manifestation, RootCause
from repro.seer import LLAMA3_70B, ParallelismConfig
from repro.topology import AstralParams


def main() -> None:
    # 1. The network architecture (laptop-scale parameters; the same
    #    builder produces the paper's 512K-GPU deployment).
    infra = AstralInfrastructure(params=AstralParams.small(),
                                 gpu="H800")
    print("== Astral deployment ==")
    for key, value in infra.describe().items():
        print(f"  {key}: {value}")
    paper = AstralParams()  # published dimensions
    print(f"  (paper-scale params would give {paper.total_gpus:,} "
          f"GPUs, {paper.rail_size:,} per rail)")

    # 2. Seer: forecast one training iteration.
    parallel = ParallelismConfig(tp=8, pp=4, dp=4, microbatches=8)
    forecast = infra.forecast_training(LLAMA3_70B, parallel)
    print("\n== Seer forecast: LLaMA-3-70B, TPxPPxDP = 8x4x4 ==")
    print(f"  iteration time : {forecast.iteration_time_s:.3f} s")
    print(f"  tokens/s       : {forecast.tokens_per_s:,.0f}")
    print(f"  exposed comm   : {forecast.exposed_comm_fraction():.1%} "
          "of communication time")
    deviation = infra.seer.accuracy_deviation(LLAMA3_70B, parallel)
    print(f"  vs testbed     : {deviation:.2%} deviation")
    from repro.seer import render_timeline
    print("\n  stage-0 operator timeline "
          "(# compute, m memory, = communication):")
    art = render_timeline(forecast.timeline, width=60,
                          devices=["stage0"])
    for line in art.splitlines():
        print(f"  {line}")

    # 3. Monitoring: inject a GPU fault, diagnose from telemetry alone.
    allocation = infra.allocate("train0", n_hosts=4,
                                policy=PlacementPolicy.PACKED)
    victim = allocation.hosts[2]
    fault = FaultSpec(RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP,
                      victim, at_iteration=3)
    result = infra.run_monitored_job("train0", fault=fault,
                                     iterations=6)
    diagnosis = infra.diagnose("train0")
    print(f"\n== Monitored job (fault injected on {victim}) ==")
    print(f"  completed iterations : {result.completed_iterations}")
    print(f"  manifestation        : {diagnosis.manifestation.value}")
    print(f"  root cause           : {diagnosis.inferred_cause} "
          f"on {diagnosis.root_cause_device}")
    print(f"  action               : {diagnosis.recommended_action}")
    print("  evidence chain:")
    for step in diagnosis.evidence:
        print(f"    -> {step}")
    assert diagnosis.root_cause_device == victim

    # Bonus: facility-level report.
    pue = infra.pue_report()
    print("\n== Facility ==")
    print(f"  traditional PUE : {pue['traditional_pue']:.3f}")
    print(f"  Astral PUE      : {pue['astral_pue']:.3f} "
          f"({pue['improvement_frac']:.2%} better)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Capacity planning with Seer (the §4.4 case studies).

Three planning questions an infrastructure provider answers offline:

* Case #1a — which parallelism traffic should cross datacenters?
* Case #1b — what cross-DC bandwidth oversubscription is acceptable?
* Case #2  — how large should the intra-host (NVSwitch) domain be?

Plus a parallelism-tuning sweep: Seer ranks candidate TP/PP/DP layouts
for a fixed GPU budget before anything is deployed.

Run:  python examples/capacity_planning.py
"""

from repro.seer import (
    GPT3_175B,
    HUNYUAN_MOE,
    LLAMA3_70B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
    ServingConfig,
    ServingSimulator,
    sweep_parallelism,
)


def case1_cross_dc() -> None:
    print("== Case #1: training across two datacenters ==")
    baseline = Seer(gpu="H800", network=NetworkSuite()) \
        .forecast_training(
            LLAMA3_70B,
            ParallelismConfig(tp=8, pp=4, dp=4, microbatches=16)) \
        .iteration_time_s

    print("  which traffic should cross (8:1 oversubscription)?")
    for label, dim, zero in (("PP across DC", "pp", 0),
                             ("DP across DC", "dp", 0),
                             ("ZeRO-DP across DC", "dp", 3)):
        network = NetworkSuite().with_cross_dc(8.0, rtt_ms=3.0)
        parallel = ParallelismConfig(tp=8, pp=4, dp=4, microbatches=16,
                                     zero_stage=zero,
                                     cross_dc_dimension=dim)
        t = Seer(gpu="H800", network=network) \
            .forecast_training(LLAMA3_70B, parallel).iteration_time_s
        print(f"    {label:<20} efficiency {baseline / t:6.1%}")

    print("  how much oversubscription can the long-haul link take?")
    for ratio in (1, 4, 8, 16, 32):
        network = NetworkSuite().with_cross_dc(float(ratio),
                                               rtt_ms=3.0)
        parallel = ParallelismConfig(tp=8, pp=4, dp=4, microbatches=16,
                                     cross_dc_dimension="dp")
        t = Seer(gpu="H800", network=network) \
            .forecast_training(LLAMA3_70B, parallel).iteration_time_s
        print(f"    {ratio:>3}:1  efficiency {baseline / t:6.1%}")
    print("  -> the knee sits around 16:1, matching Figure 13.\n")


def case2_intra_host() -> None:
    print("== Case #2: how large should the intra-host network be? ==")
    configs = {
        "GPT-3 train": (GPT3_175B, ParallelismConfig(
            tp=8, pp=4, dp=2, microbatches=8)),
        "MoE train": (HUNYUAN_MOE, ParallelismConfig(
            tp=4, pp=4, dp=2, ep=16, microbatches=8)),
    }
    print(f"    {'HB size':<8}" + "".join(f"{k:>14}" for k in configs))
    base = {}
    for hb in (8, 16, 32, 64):
        seer = Seer(gpu="H800",
                    network=NetworkSuite().with_intra_host_size(hb))
        row = f"    {hb:<8}"
        for key, (model, parallel) in configs.items():
            tput = seer.forecast_training(model, parallel).tokens_per_s
            base.setdefault(key, tput)
            row += f"{tput / base[key]:>13.2%} "
        print(row)
    print("  -> the MoE model benefits more (all-to-all moves onto "
          "NVLink), as in Figure 14.\n")


def parallelism_tuning(budget_gpus: int = 128) -> None:
    print(f"== Parallelism tuning: best layout for {budget_gpus} "
          "GPUs (LLaMA-3-70B) ==")
    seer = Seer(gpu="H800", network=NetworkSuite())
    candidates = sweep_parallelism(seer, LLAMA3_70B, budget_gpus,
                                   microbatches=16)
    for rank, candidate in enumerate(candidates[:5], start=1):
        marker = "  <- deploy this" if rank == 1 else ""
        print(f"    #{rank} {candidate.label:<14} "
              f"{candidate.tokens_per_s:>10,.0f} tokens/s  "
              f"{candidate.memory_gb:5.1f} GB/GPU{marker}")
    print("    (layouts that do not fit the H800's 80 GB HBM are "
          "excluded)\n")


def inference_planning() -> None:
    print("== Inference serving: prefill vs decode budget ==")
    seer = Seer(gpu="H800", network=NetworkSuite())
    for batch in (1, 8, 32):
        forecast = seer.forecast_inference(
            HUNYUAN_MOE, ParallelismConfig(tp=8, pp=1, dp=1, ep=16),
            batch=batch, context_len=2048)
        print(f"    batch {batch:>2}: TTFT {forecast.prefill_time_s:6.3f} s, "
              f"decode {forecast.decode_tokens_per_s:8.1f} tok/s")

    print("\n== Serving under load (continuous batching) ==")
    parallel = ParallelismConfig(tp=8, pp=1, dp=1, ep=16)
    print(f"    {'req/s':<7}{'TTFT p99':<11}{'TPOT':<9}{'tok/s':<8}")
    for rate in (0.5, 2.0, 8.0):
        config = ServingConfig(arrival_rate_per_s=rate,
                               duration_s=120.0, batch_max=16,
                               output_len_mean=128)
        report = ServingSimulator(seer, HUNYUAN_MOE, parallel,
                                  config).run()
        print(f"    {rate:<7}{report.p99_ttft_s():<11.2f}"
              f"{report.mean_tpot_s() * 1e3:<9.1f}"
              f"{report.output_tokens_per_s():<8.0f}")
    print("    -> size the fleet for the TTFT SLO at the expected "
          "load, not the saturated throughput.")


def main() -> None:
    case1_cross_dc()
    case2_intra_host()
    parallelism_tuning()
    inference_planning()


if __name__ == "__main__":
    main()

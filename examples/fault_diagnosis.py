#!/usr/bin/env python3
"""Fault diagnosis tour: every root-cause class through the analyzer.

Reproduces the operational core of §3: for each failure class in the
Figure-7 taxonomy, a monitored training job is run with that fault
injected, and the cross-host + hierarchical correlation analyzer is
asked to localize it from telemetry alone.  The script prints a
scoreboard of localization accuracy and the MTTLF implied by each
diagnosis, plus the offline toolset catching pre-delivery defects.

Run:  python examples/fault_diagnosis.py
"""

from repro.monitoring import (
    FaultCampaign,
    FaultSpec,
    build_health_report,
    HierarchicalAnalyzer,
    HostConfig,
    HostHealth,
    JobConfig,
    Manifestation,
    MonitoredTrainingJob,
    MttlfModel,
    OfflineToolset,
    RootCause,
    verify_configs,
)
from repro.network import Endpoint, Fabric, reset_flow_ids
from repro.network.collectives import ring_allreduce_flows
from repro.topology import AstralParams, build_astral

HOSTS = tuple(f"p0.b0.h{i}" for i in range(4)) \
    + ("p0.b1.h0", "p0.b1.h1")


def job_link(hosts):
    """Pick a ToR-Agg link carried by the job's ring traffic."""
    topology = build_astral(AstralParams.small())
    fabric = Fabric(topology)
    flows = ring_allreduce_flows([Endpoint(h, 0) for h in hosts], 8e9)
    for flow in flows:
        path = fabric.router.path(flow)
        if path.hops > 2:
            reset_flow_ids()
            return path.link_ids[1]
    raise RuntimeError("no multi-hop flow")


SCENARIOS = [
    ("GPU Xid fatal", RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP,
     HOSTS[1]),
    ("uncorrectable ECC", RootCause.MEMORY, Manifestation.FAIL_STOP,
     HOSTS[3]),
    ("NIC CQE errors", RootCause.NIC_ERROR, Manifestation.FAIL_STOP,
     HOSTS[2]),
    ("optical module dead", RootCause.OPTICAL_FIBER,
     Manifestation.FAIL_STOP, None),   # link chosen at runtime
    ("switch DCQCN misconfig", RootCause.SWITCH_CONFIG,
     Manifestation.FAIL_SLOW, "p0.b0.r0.g0.tor"),
    ("NCCL bug hang", RootCause.CCL_BUG, Manifestation.FAIL_HANG,
     HOSTS[0]),
    ("user code exception", RootCause.USER_CODE,
     Manifestation.FAIL_STOP, "job0"),
    ("host env mismatch", RootCause.HOST_ENV_CONFIG,
     Manifestation.FAIL_ON_START, HOSTS[0]),
]


def campaign_summary() -> None:
    print("\n== Taxonomy campaign (localization scoreboard) ==")
    result = FaultCampaign(seed=23).run(25)
    print(f"  manifestation detection : {result.detection_rate:.0%}")
    print(f"  root-cause localization : "
          f"{result.localization_accuracy:.0%}")
    last = result.records[-1]
    print("  sample health report after the last fault:")
    for line in build_health_report(
            last.result.store).render().splitlines():
        print(f"    {line}")


def main() -> None:
    mttlf = MttlfModel(n_hosts=64, jitter_frac=0.0)
    print(f"{'scenario':<24} {'manifests as':<14} {'localized to':<22} "
          f"{'cause':<18} {'auto (h)':<9} {'manual (h)':<10}")
    print("-" * 100)
    for label, cause, manifestation, target in SCENARIOS:
        reset_flow_ids()
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        if target is None:
            target = f"link:{job_link(HOSTS)}"
        at_iteration = 0 \
            if manifestation is Manifestation.FAIL_ON_START else 2
        fault = FaultSpec(cause, manifestation, target,
                          at_iteration=at_iteration)
        result = MonitoredTrainingJob(
            fabric, JobConfig(hosts=HOSTS, iterations=5),
            fault=fault).run()
        diagnosis = HierarchicalAnalyzer(
            result.store, result.expected_compute_s,
            result.expected_comm_s).diagnose("job0")
        auto = mttlf.automated_hours(manifestation, diagnosis)
        manual = mttlf.manual_hours(manifestation)
        manifested = (diagnosis.manifestation.value
                      if diagnosis.manifestation else "none")
        print(f"{label:<24} {manifested:<14} "
              f"{str(diagnosis.root_cause_device):<22} "
              f"{diagnosis.inferred_cause:<18} {auto:<9.2f} "
              f"{manual:<10.1f}")

    # Offline toolset: what commissioning would have caught (§5).
    print("\n== Offline pre-delivery checks ==")
    toolset = OfflineToolset({
        HOSTS[1]: HostHealth(pcie_degraded=True),   # the §5 incident
    })
    for report in toolset.run_all(HOSTS[:3]):
        status = "PASS" if report.passed else f"FAIL ({report.detail})"
        print(f"  {report.tool:<9} {report.host:<12} {status}")

    configs = {host: HostConfig() for host in HOSTS}
    configs[HOSTS[4]] = HostConfig(nccl_version="2.18.1",
                                   pfc_enabled=False)
    print("\n== Configuration consistency ==")
    for issue in verify_configs(configs):
        print(f"  {issue.host}: {issue.fieldname} = {issue.value} "
              f"(fleet majority: {issue.majority_value})")

    campaign_summary()


if __name__ == "__main__":
    main()

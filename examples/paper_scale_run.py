#!/usr/bin/env python3
"""Simulate the paper's full 512K-GPU deployment on a laptop.

The flat packet/flow engine is exact but tops out around 256 hosts.
``repro.hierarchy`` reaches the published deployment size (8 pods,
65,536 hosts, 524,288 GPUs) by exploiting what Astral's allocation
discipline guarantees: packed, rail-aligned, pod-major placement makes
most pods *copies* of each other.  The fold detects those equivalence
classes, engine-simulates one representative block per class, and
replicates — bit-for-bit when the line-rate certificate holds.

This script walks the ladder:

1. a 2,048-tenant scenario at full paper scale, folded and timed;
2. a tidal power cap on two pods (capped pods split into their own
   equivalence class; still exact);
3. a ToR fault, which transparently *unfolds* the touched pod back
   into exact flat simulation while every healthy pod stays folded —
   demonstrated at the 4k scale, because refinement is honest about
   its cost: a refined pod pays full flat-engine price, and one paper
   -scale pod is 8,192 hosts.

Run:  python examples/paper_scale_run.py
"""

import time

from repro.hierarchy import HierarchicalRun, preset_params, uniform_jobs
from repro.monitoring import FaultSpec, Manifestation, RootCause


def show(title: str, run: HierarchicalRun, wall_s: float) -> None:
    report = run.report
    mode = "EXACT" if report.exact else "hybrid"
    print(f"== {title} ==")
    print(f"  cluster     : {report.total_gpus:,} GPUs, "
          f"{report.n_pods} pods, {report.n_jobs:,} tenants")
    print(f"  fold        : {report.n_pod_classes} pod classes, "
          f"{report.n_refined_pods} refined pods, "
          f"{report.n_analytic_jobs} analytic jobs [{mode}]")
    print(f"  engine      : {report.n_engine_sims} sub-simulations "
          f"over {report.engine_hosts:,} hosts "
          f"(fold factor {report.fold_factor:,.0f}x)")
    print(f"  efficiency  : {report.mean_efficiency:.1%} mean "
          f"across tenants")
    print(f"  wall        : {wall_s:.2f} s")
    print()


def timed(params, jobs, **kwargs):
    t0 = time.perf_counter()
    run = HierarchicalRun(params, jobs, **kwargs)
    run.run()
    return run, time.perf_counter() - t0


def main() -> None:
    params = preset_params("512k")      # the published dimensions
    jobs = uniform_jobs(params, hosts_per_job=32, iterations=4,
                        tail_shapes=2)  # 2,048 tenants, two shapes

    # 1. The headline: full paper scale, folded, exact.
    run, wall = timed(params, jobs)
    show("512K GPUs, 2,048 tenants", run, wall)

    # 2. Tidal power caps: pods 6 and 7 clocked to 80% overnight.
    #    Capped pods form their own class — compute stretches by 1/f,
    #    the differential against a flat run stays exact.
    run, wall = timed(params, jobs, pod_power_caps={6: 0.8, 7: 0.8})
    show("with tidal power caps on pods 6-7", run, wall)

    # 3. A ToR fails slow in pod 1.  The fold notices the broken
    #    symmetry and refines exactly that pod to event-driven flat
    #    simulation, faults armed; the other pod stays folded.  Run at
    #    the 4k scale: refinement pays full flat-engine cost for the
    #    refined pod, which is the price of exactness under faults
    #    (a paper-scale pod is 8,192 hosts — fold it or wait).
    small = preset_params("4k")
    small_jobs = uniform_jobs(small, hosts_per_job=64, iterations=4)
    fault = FaultSpec(cause=RootCause.SWITCH_BUG,
                      manifestation=Manifestation.FAIL_SLOW,
                      target="p1.b0.r0.g0.tor")
    victim = next(p.name
                  for p in HierarchicalRun(small, small_jobs).placed
                  if 1 in p.pods)
    run, wall = timed(small, small_jobs, faults={victim: fault})
    show("4k scale, fail-slow ToR in pod 1", run, wall)


if __name__ == "__main__":
    main()

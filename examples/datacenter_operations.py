#!/usr/bin/env python3
"""Datacenter operations: power, cooling, ECMP, and commissioning.

The physical-deployment half of the paper (§2.2, §5, appendices):

* GPU power characterization and the HVDC rack-elasticity policy;
* the daily tidal pattern and the constant-power night scheduler;
* airflow optimization and the PUE story;
* the optimized-ECMP controller relieving a congestion hotspot;
* offline commissioning before handing hosts to a customer.

Run:  python examples/datacenter_operations.py
"""

import numpy as np

from repro.core import AstralInfrastructure
from repro.cooling import AirflowConfig, temperature_spread
from repro.monitoring import HostConfig, HostHealth
from repro.network import EcmpController, Fabric, make_flow
from repro.power import (
    GpuSpec,
    HvdcUnit,
    NightTrainingScheduler,
    PowerAllocationError,
    RackSpec,
    RenewableMix,
    TidalProfile,
    synthesize_trace,
    training_iteration_phases,
)
from repro.topology import AstralParams, build_astral


def power_section() -> None:
    print("== GPU power & HVDC elasticity ==")
    gpu = GpuSpec(tdp_watts=500.0)
    trace = synthesize_trace(gpu, training_iteration_phases(),
                             repeats=4)
    print(f"  training peak {trace.peak_watts:.0f} W vs TDP "
          f"{gpu.tdp_watts:.0f} W (exceeds TDP: {trace.exceeds_tdp})")

    unit = HvdcUnit([RackSpec(f"rack{i}", 40_000.0) for i in range(4)])
    unit.request("rack0", 52_000.0)   # 1.3x TDP, allowed
    print(f"  rack0 elastically granted 52 kW (limit "
          f"{unit.rack_limit_watts(unit.racks[0]) / 1e3:.0f} kW); "
          f"row budget {unit.budget_watts / 1e3:.0f} kW")
    try:
        unit.request("rack1", 53_000.0)
    except PowerAllocationError as error:
        print(f"  rack1 denied: {error}")

    mix = RenewableMix()
    yearly_kwh = 1.2e9
    print(f"  renewables offset {mix.renewable_fraction:.0%} of load: "
          f"{mix.carbon_saved_kg(yearly_kwh) / 1e6:,.0f} kt CO2 saved"
          f" on {yearly_kwh:,.0f} kWh\n")


def tidal_section() -> None:
    print("== Tidal scheduling (constant-power contract) ==")
    profile = TidalProfile(peak_mw=100.0)
    scheduler = NightTrainingScheduler(profile)
    hours = np.linspace(0, 24, 24 * 60, endpoint=False)
    schedule = scheduler.schedule(hours)
    inference_cv = float(np.std(schedule["inference_mw"])
                         / np.mean(schedule["inference_mw"]))
    print(f"  inference-only variability (CV): {inference_cv:.3f}")
    print(f"  with night training:             "
          f"{scheduler.flatness(hours):.4f}")
    share = float(np.sum(schedule["training_mw"])
                  / np.sum(schedule["total_mw"]))
    print(f"  night-discounted training carries {share:.0%} of daily "
          "energy\n")


def cooling_section() -> None:
    print("== Airflow optimization & PUE ==")
    loads = np.full(16, 20_000.0)
    side = temperature_spread(loads, AirflowConfig.side())
    bottom = temperature_spread(loads, AirflowConfig.bottom_up())
    print(f"  side intake spread     : {side:.2f} degC")
    print(f"  bottom-up spread       : {bottom:.2f} degC")
    report = AstralInfrastructure.pue_report()
    for label, pue in report["evolution"]:
        print(f"  PUE {label:<28}: {pue:.3f}")
    print(f"  improvement vs traditional: "
          f"{report['improvement_frac']:.2%}\n")


def ecmp_section() -> None:
    print("== Optimized ECMP: relieving a polarization hotspot ==")
    fabric = Fabric(build_astral(AstralParams.small()))
    flows = [
        make_flow(f"p0.b0.h{src}", f"p0.b1.h{(src * 3 + k) % 8}",
                  rail=0, size_bits=8e9, src_port=50000)
        for src in range(8) for k in range(2)
    ]
    controller = EcmpController(fabric)
    for report in controller.run(flows, rounds=6):
        print(f"  round {report.round_index}: ECN "
              f"{report.total_ecn_marks_before:,.0f} -> "
              f"{report.total_ecn_marks_after:,.0f} "
              f"({report.flows_moved} flows reassigned)")
    print()


def commissioning_section() -> None:
    print("== Commissioning hosts before delivery ==")
    infra = AstralInfrastructure(params=AstralParams.tiny())
    hosts = [h.name for h in infra.topology.hosts()][:4]
    configs = {host: HostConfig() for host in hosts}
    configs[hosts[2]] = HostConfig(driver_version="550.54.14")
    health = {hosts[1]: HostHealth(pcie_degraded=True)}
    report = infra.commission(hosts, configs=configs, health=health)
    print(f"  ready for delivery: {report.ready_for_delivery}")
    for issue in report.config_inconsistencies:
        print(f"  config: {issue.host} {issue.fieldname}="
              f"{issue.value} (majority {issue.majority_value})")
    for failure in report.stress_failures:
        print(f"  stress: {failure.host} failed {failure.tool}: "
              f"{failure.detail}")


def main() -> None:
    power_section()
    tidal_section()
    cooling_section()
    ecmp_section()
    commissioning_section()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The simulator validating itself: a guided `repro validate` tour.

The stack computes the same physics several ways — the event-driven
``FabricEngine``, the epoch-global ``Fabric.complete_batch`` loop, the
packet-granular ``packetsim``, and the analytic collective models.
``repro.validation`` cross-checks them on seeded random scenarios.
This walkthrough shows the pieces individually, then runs a campaign:

1. generate one scenario and show that its spec is self-contained
   (JSON round-trip, deterministic rebuild, printable repro command);
2. run the invariant oracles on a max-min solution — and corrupt the
   solution to show the oracles actually fire;
3. the headline differential: ``Fabric.complete`` (engine path) and
   ``complete_batch`` are *bit-identical*, not merely close;
4. a metamorphic check: double every capacity, finish in exactly half
   the time;
5. a 15-case campaign across all five profiles, as `repro validate`
   runs it.

Run:  python examples/validation_campaign.py
"""

import json

from repro.network import Fabric, reset_flow_ids
from repro.validation import (
    ScenarioGenerator,
    ScenarioSpec,
    build_flows,
    build_topology,
    check_engine_vs_batch,
    check_rate_scaling,
    check_solution,
    run_campaign,
)


def demo_scenarios():
    print("=" * 64)
    print("1. Seeded scenarios are self-contained values")
    print("=" * 64)
    gen = ScenarioGenerator(seed=7)
    spec = gen.spec(3)
    print(f"case 3: profile={spec.profile} family={spec.family} "
          f"flows={len(spec.flows)} faults={len(spec.faults)}")
    payload = json.dumps(spec.to_dict())
    assert ScenarioSpec.from_dict(json.loads(payload)) == spec
    print(f"JSON round-trip: ok ({len(payload)} bytes)")
    print(f"replay with:     {spec.repro_command}")
    return spec


def demo_oracles(spec):
    print()
    print("=" * 64)
    print("2. Invariant oracles — and their teeth")
    print("=" * 64)
    reset_flow_ids()
    fabric = Fabric(build_topology(spec))
    flows = build_flows(spec)
    paths = fabric.resolve_paths(flows)
    rates = fabric.max_min_rates(flows, paths)
    violations = check_solution(fabric, flows, paths=paths, rates=rates)
    print(f"legit max-min solution: {len(violations)} violations")
    assert violations == []

    # Corrupt it: halving one rate breaks the max-min KKT certificate
    # (that flow no longer saturates any link it crosses).
    bad = dict(rates)
    victim = flows[0].flow_id
    bad[victim] = rates[victim] / 2
    violations = check_solution(fabric, flows, paths=paths, rates=bad)
    print(f"halved flow {victim}'s rate:    "
          f"{[str(v) for v in violations][0]}")
    assert violations


def demo_differential(spec):
    print()
    print("=" * 64)
    print("3. Engine vs batch loop: bit-identical, not approximately")
    print("=" * 64)
    reset_flow_ids()
    fabric = Fabric(build_topology(spec))
    flows = build_flows(spec)
    violations = check_engine_vs_batch(fabric, flows)
    assert violations == [], [str(v) for v in violations]
    print(f"{len(flows)} flows: every finish time == to the last bit")


def demo_metamorphic(spec):
    print()
    print("=" * 64)
    print("4. Metamorphic: capacities x2  =>  finish times exactly /2")
    print("=" * 64)
    violations = check_rate_scaling(spec, k=2.0)
    assert violations == [], [str(v) for v in violations]
    print("doubled every link and line rate: bit-exact halving holds")


def demo_campaign():
    print()
    print("=" * 64)
    print("5. A 15-case campaign (what `repro validate` runs)")
    print("=" * 64)
    report = run_campaign(seed=7, n_cases=15, fast=True)
    for case in report.cases:
        status = "ok " if case.ok else "FAIL"
        print(f"  case {case.index:>2} [{case.profile}/{case.family}]"
              f" {status} ({len(case.checks)} checks)")
    print(f"{len(report.cases)} cases, {len(report.failures)} failures")
    for case in report.failures:
        for violation in case.violations:
            print(f"  {violation}")
        print(f"  reproduce with: {case.repro_command}")
    assert report.ok


def main():
    spec = demo_scenarios()
    demo_oracles(spec)
    demo_differential(spec)
    demo_metamorphic(spec)
    demo_campaign()
    print()
    print("All validation layers green.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Datacenter-scale job scheduling on the Astral fabric.

A day in the life of the cluster orchestrator:

* a seeded arrival trace of training jobs hits a 256-host deployment;
* the scheduler places each job with topology-aware best-fit (fewest
  pods spanned => least tier-3 oversubscribed traffic);
* MTBF-driven failures trigger checkpoint/restart recovery;
* the tidal power contract caps schedulable hosts overnight;
* the peak co-resident tenant set is replayed on the shared fabric to
  measure real contention.

Run:  PYTHONPATH=src python examples/cluster_scheduling.py
"""

from repro.cluster import (
    ClusterScheduler,
    RecoveryManager,
    SchedulingPolicy,
    TidalHostCap,
    WorkloadConfig,
    WorkloadGenerator,
)
from repro.core import AstralInfrastructure
from repro.topology import AstralParams, build_astral


def policy_shootout() -> None:
    """Same trace, four policies: who packs tighter, who waits less."""
    print("== Policy shoot-out on a 256-host cluster ==")
    topo = build_astral(AstralParams.cluster())
    # Heavy trace: arrivals every ~2 min, jobs up to half the cluster,
    # so the queue actually forms and the policies separate.
    loaded = WorkloadConfig(
        mean_interarrival_s=120.0,
        host_sizes=(4, 8, 16, 32, 64, 128),
        size_weights=(0.2, 0.2, 0.25, 0.15, 0.12, 0.08),
        mean_duration_s=3600.0)
    specs = WorkloadGenerator(seed=0, config=loaded).generate(
        50, max_hosts=256)
    print(f"  trace: {len(specs)} jobs, "
          f"{sum(s.n_hosts for s in specs)} host-requests total")
    for policy in SchedulingPolicy:
        report = ClusterScheduler(topo, specs, policy=policy,
                                  seed=0).run()
        print(f"  {policy.value:<11} util {report.utilization:6.1%}"
              f"  pods/job {report.mean_pods_spanned:5.3f}"
              f"  mean JCT {report.mean_jct_s / 3600:5.2f} h"
              f"  queue {report.mean_queue_delay_s / 60:6.1f} min")


def failures_and_tides() -> None:
    """Recovery and tidal admission on top of the same trace."""
    print("\n== Failures + tidal power cap ==")
    topo = build_astral(AstralParams.cluster())
    specs = WorkloadGenerator(seed=0).generate(50, max_hosts=256)
    scheduler = ClusterScheduler(
        topo, specs, policy="priority",
        recovery=RecoveryManager(gpus_per_host=4, seed=0,
                                 failure_scale=500.0),
        power_cap=TidalHostCap(total_hosts=256),
        seed=0)
    report = scheduler.run()
    print(f"  statuses        {report.status_counts()}")
    print(f"  failures        {report.total_failures}")
    print(f"  goodput         {report.goodput_fraction:6.1%} "
          "(useful work / occupied host-time)")
    print(f"  utilization     {report.utilization:6.1%}")
    print(f"  makespan        {report.makespan_s / 3600:5.2f} h")


def full_facade_run() -> None:
    """The one-call version, plus fabric contention for the peak set."""
    print("\n== AstralInfrastructure.run_cluster() ==")
    infra = AstralInfrastructure(params=AstralParams.cluster(), seed=0)
    report = infra.run_cluster(jobs=50, policy="topology", seed=0)
    print(report.render(max_rows=8))
    outcomes = infra.cluster_contention(report, iterations=3)
    print(f"\n  fabric contention across the "
          f"{len(outcomes)} peak co-resident tenants:")
    worst = min(outcomes.values(), key=lambda o: o.efficiency)
    for outcome in list(outcomes.values())[:5]:
        print(f"    {outcome.job:<10} efficiency "
              f"{outcome.efficiency:6.1%}")
    print(f"    ... worst tenant: {worst.job} "
          f"at {worst.efficiency:6.1%}")


if __name__ == "__main__":
    policy_shootout()
    failures_and_tides()
    full_facade_run()

#!/usr/bin/env python3
"""Break the fabric, survive the job: the closed recovery loop, live.

A four-host training job runs real ring collectives on the event-driven
fabric engine while a scheduled fault kills one of its block's ToR
switches mid-collective.  The walkthrough shows every arrow of
``inject → manifest → detect → localize → cordon → requeue → heal``:

1. in-flight flows reroute over the surviving dual-ToR path the moment
   the switch dies (at most one reroute per flow, even across a flap);
2. the pingmesh census detects the carrier loss at the next probe and
   the pipeline localizes the dead switch after the modeled Figure-10
   MTTLF delay;
3. the block's hosts are cordoned, the job rolls back to its last
   checkpoint, pays the restart charge and re-places itself on a
   healthy block;
4. the switch heals after a seeded time-to-repair draw and its hosts
   rejoin the pool;
5. the measured goodput penalty is priced against the analytic
   ``failure_penalty_s`` decomposition (lost half-interval +
   localization + restart).

Run:  python examples/failure_recovery.py
"""

from repro.monitoring import FaultSpec, Manifestation, RootCause
from repro.monitoring.mttlf import MttlfModel
from repro.network import Fabric, FabricEngine, make_flow
from repro.resilience import FailureInjector, ResilienceCampaign
from repro.topology import AstralParams, build_astral


def demo_failover():
    """Smallest possible look at the reroute machinery itself."""
    print("=" * 64)
    print("1. Routing failover: a ToR dies under an in-flight flow")
    print("=" * 64)
    topology = build_astral(AstralParams.small())
    engine = FabricEngine(Fabric(topology))
    flow = make_flow("p0.b0.h0", "p0.b0.h1", rail=0, size_bits=2e12)
    engine.submit(flow)
    tor = engine.fabric.router.path(flow).devices[1]
    FailureInjector(engine).kill_device(tor, at=2.0)
    run = engine.run()
    print(f"  victim path crossed {tor}; killed at t=2.0s")
    print(f"  reroutes: {dict(engine.reroutes)}")
    print(f"  flow finished at t={run.finish_times_s[flow.flow_id]:.2f}s"
          f" on {' -> '.join(run.paths[flow.flow_id].devices)}")
    print()


def demo_campaign():
    """The full loop, priced against the analytic goodput model."""
    print("=" * 64)
    print("2. Campaign: kill a ToR mid-collective, close the loop")
    print("=" * 64)
    fault = FaultSpec(RootCause.SWITCH_BUG, Manifestation.FAIL_STOP,
                      "p0.b0.r0.g0.tor", at_time_s=1826.7)
    campaign = ResilienceCampaign(
        faults=[fault], n_jobs=1, hosts_per_job=4, n_iterations=180,
        compute_s=20.0, collective_bits=2e11,
        checkpoint_interval_s=3600.0, seed=11)
    report = campaign.run()

    record = report.recoveries[0]
    mttlf = MttlfModel(n_hosts=32, jitter_frac=0.0)
    print(f"  fault log: {report.fault_log}")
    print(f"  detected at      {record['detected_s']:>9,.1f} s "
          f"(next 30 s pingmesh probe)")
    print(f"  localized at     {record['localized_s']:>9,.1f} s "
          f"(modeled MTTLF delay "
          f"{mttlf.localization_delay_s(Manifestation.FAIL_STOP):.0f} s)")
    print(f"  root cause:      {record['target']}")
    print(f"  cordoned hosts:  {len(record['cordoned_hosts'])} "
          f"({record['cordoned_hosts'][0]} ... "
          f"{record['cordoned_hosts'][-1]})")
    print(f"  interrupted:     {record['interrupted_jobs']}")
    print(f"  repaired at      {record['repaired_s']:>9,.1f} s "
          f"(seeded TTR draw)")
    print()
    job = report.jobs[0]
    print(f"  job restarts: {job.restarts}, rolled-back work: "
          f"{job.lost_s:,.1f} s, reroutes: {report.reroutes}, "
          f"stranded: {report.stranded}")
    print(f"  clean completion:   "
          f"{report.baseline_completion_s['job0']:>9,.1f} s")
    print(f"  faulted completion: "
          f"{report.faulted_completion_s['job0']:>9,.1f} s")
    print(f"  measured penalty:   {report.measured_penalty_s:>9,.1f} s")
    print(f"  analytic penalty:   {report.predicted_penalty_s:>9,.1f} s"
          f"  (interval/2 + localize + restart)")
    print(f"  goodput fraction:   {report.goodput_fraction:>9.3f}")
    print()


if __name__ == "__main__":
    demo_failover()
    demo_campaign()
